//! `mavfi-suite` is the workspace-root helper package of the MAVFI
//! reproduction.  It exists so that the repository-level `examples/` and
//! `tests/` directories can exercise the public APIs of every crate in the
//! workspace.  All functionality lives in the member crates; this crate only
//! re-exports them for convenience.
//!
//! # Examples
//!
//! ```
//! use mavfi_suite::prelude::*;
//!
//! let env = EnvironmentKind::Sparse.build(7);
//! assert!(env.obstacles().len() > 0);
//! ```

pub use mavfi;
pub use mavfi_detect;
pub use mavfi_fault;
pub use mavfi_middleware;
pub use mavfi_nn;
pub use mavfi_platform;
pub use mavfi_ppc;
pub use mavfi_sim;

/// Convenience re-exports used by the examples and integration tests.
pub mod prelude {
    pub use mavfi::prelude::*;
}
