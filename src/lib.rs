//! `mavfi-suite` is the workspace-root facade of the MAVFI reproduction:
//! it re-exports every member crate so the repository-level `examples/`
//! and `tests/` directories can exercise the whole workspace, and its
//! crate documentation below is the repository `README.md` (whose code
//! blocks compile as doctests).
//!
//! ---
#![doc = include_str!("../README.md")]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mavfi;
pub use mavfi_detect;
pub use mavfi_fault;
pub use mavfi_middleware;
pub use mavfi_nn;
pub use mavfi_platform;
pub use mavfi_ppc;
pub use mavfi_sim;

/// Convenience re-exports used by the examples and integration tests.
///
/// # Examples
///
/// ```
/// use mavfi_suite::prelude::*;
///
/// let env = EnvironmentKind::Sparse.build(7);
/// assert!(env.obstacles().len() > 0);
/// ```
pub mod prelude {
    pub use mavfi::prelude::*;
}
