//! `mavfi-suite` is the workspace-root facade of the MAVFI reproduction:
//! it re-exports every member crate so the repository-level `examples/`
//! and `tests/` directories can exercise the whole workspace, and its
//! crate documentation below is the repository `README.md` (whose code
//! blocks compile as doctests).
//!
//! ---
#![doc = include_str!("../README.md")]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Rendered copies of the repository's `docs/` pages.
///
/// Including them here puts every page through the rustdoc lint gate
/// (`scripts/check.sh` builds docs with `RUSTDOCFLAGS="-D warnings"`), so
/// broken intra-doc references, malformed markdown and untagged code fences
/// in `docs/` fail the build exactly like those in source comments; the
/// pages' Rust code blocks, if any, compile as doctests like the README's.
#[doc(hidden)]
pub mod docs {
    /// `docs/ARCHITECTURE.md`: closed-loop data flow and engine design.
    #[doc = include_str!("../docs/ARCHITECTURE.md")]
    pub mod architecture {}

    /// `docs/PLANNERS.md`: the four motion planners and the
    /// `plan`/`plan_into` contract.
    #[doc = include_str!("../docs/PLANNERS.md")]
    pub mod planners {}

    /// `docs/PERFORMANCE.md`: scratch-buffer conventions, the replan path
    /// and the revision-cache invariants.
    #[doc = include_str!("../docs/PERFORMANCE.md")]
    pub mod performance {}

    /// `docs/OBSERVABILITY.md`: telemetry design rules — histograms,
    /// the deterministic event timeline and campaign rollups.
    #[doc = include_str!("../docs/OBSERVABILITY.md")]
    pub mod observability {}

    /// `docs/REPLAY.md`: the mission trace format, the record/replay
    /// determinism contract and the golden-trace store workflow.
    #[doc = include_str!("../docs/REPLAY.md")]
    pub mod replay {}

    /// `docs/SERVING.md`: the campaign service — submit/stream protocol,
    /// checkpoint format, resume determinism contract, failure taxonomy.
    #[doc = include_str!("../docs/SERVING.md")]
    pub mod serving {}
}

pub mod golden;

pub use mavfi;
pub use mavfi_detect;
pub use mavfi_fault;
pub use mavfi_middleware;
pub use mavfi_nn;
pub use mavfi_platform;
pub use mavfi_ppc;
pub use mavfi_sim;
pub use mavfi_telemetry;

/// Convenience re-exports used by the examples and integration tests.
///
/// # Examples
///
/// ```
/// use mavfi_suite::prelude::*;
///
/// let env = EnvironmentKind::Sparse.build(7);
/// assert!(env.obstacles().len() > 0);
/// ```
pub mod prelude {
    pub use mavfi::prelude::*;
}
