//! The committed golden-trace store: which missions `tests/golden/` holds
//! and how to (re)record them.
//!
//! One manifest drives both sides — `examples/retrace.rs` regenerates (or
//! verifies) the store and `tests/replay_golden.rs` gates on it — so the
//! two can never disagree about what a golden trace contains.  See
//! `docs/REPLAY.md` for the workflow.

use mavfi::prelude::*;
use mavfi::replay::{ReplayHarness, ReplayReport};
use mavfi::trace::DetectorProvenance;

/// Repository-relative directory holding the committed traces.
pub const GOLDEN_DIR: &str = "tests/golden";

/// Mission time budget shared by every golden trace: long enough for the
/// chosen missions to finish, short enough that regeneration stays quick.
pub const GOLDEN_TIME_BUDGET: f64 = 150.0;

/// One entry of the golden-trace store.
#[derive(Debug, Clone, Copy)]
pub struct GoldenTraceSpec {
    /// File name inside [`GOLDEN_DIR`].
    pub file: &'static str,
    /// Environment the mission flies in.
    pub environment: EnvironmentKind,
    /// Mission seed.
    pub seed: u64,
    /// Injected fault, if any.
    pub fault: Option<FaultSpec>,
    /// Active protection scheme.
    pub protection: Protection,
}

impl GoldenTraceSpec {
    /// The mission specification this trace records.
    pub fn mission(&self) -> MissionSpec {
        MissionSpec::new(self.environment, self.seed).with_time_budget(GOLDEN_TIME_BUDGET)
    }

    /// Repository-relative path of the trace file.
    pub fn path(&self) -> String {
        format!("{GOLDEN_DIR}/{}", self.file)
    }

    /// Records this trace (training detectors through the process-wide
    /// cache when the scheme needs them).
    ///
    /// # Errors
    ///
    /// Propagates [`MavfiError`] from the recording runner.
    pub fn record(&self) -> Result<(MissionOutcome, MissionTrace), MavfiError> {
        let runner = MissionRunner::new(self.mission());
        match self.protection {
            Protection::None => runner.run_recorded(self.fault, self.protection, None, None),
            _ => {
                let provenance = detector_provenance();
                let detectors = TrainedDetectorCache::global()
                    .get_or_train(provenance.environment, &provenance.training);
                runner.run_recorded(self.fault, self.protection, Some(&detectors), Some(provenance))
            }
        }
    }

    /// Loads the committed trace and replays it without the sim in the
    /// loop (detectors retrain from the trace's provenance when needed).
    ///
    /// # Errors
    ///
    /// Propagates [`MavfiError`] from loading or replaying.
    pub fn replay_committed(&self) -> Result<ReplayReport, MavfiError> {
        let trace = MissionTrace::load(self.path())?;
        ReplayHarness::new(&trace).replay()
    }
}

/// The detector training convention golden protected traces embed as
/// [`DetectorProvenance`]: the quick-training setup the detection test
/// suite shares through the process-wide cache.
pub fn detector_provenance() -> DetectorProvenance {
    DetectorProvenance {
        environment: EnvironmentKind::Randomized,
        training: TrainingSpec {
            missions: 2,
            base_seed: 640,
            mission_time_budget: 30.0,
            epochs: 10,
        },
    }
}

/// The planning-stage fault every fault-injected golden trace uses.
fn planning_fault() -> FaultSpec {
    FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 25, 11)
}

/// The golden-trace store manifest: golden and fault-injected missions in
/// Sparse and Dense environments, unprotected and under both detection
/// schemes.
pub fn manifest() -> Vec<GoldenTraceSpec> {
    vec![
        GoldenTraceSpec {
            file: "sparse_s3_golden.mvt",
            environment: EnvironmentKind::Sparse,
            seed: 3,
            fault: None,
            protection: Protection::None,
        },
        GoldenTraceSpec {
            file: "sparse_s8_golden.mvt",
            environment: EnvironmentKind::Sparse,
            seed: 8,
            fault: None,
            protection: Protection::None,
        },
        GoldenTraceSpec {
            file: "dense_s8_golden.mvt",
            environment: EnvironmentKind::Dense,
            seed: 8,
            fault: None,
            protection: Protection::None,
        },
        GoldenTraceSpec {
            file: "sparse_s5_fault_planning.mvt",
            environment: EnvironmentKind::Sparse,
            seed: 5,
            fault: Some(planning_fault()),
            protection: Protection::None,
        },
        GoldenTraceSpec {
            file: "sparse_s5_fault_gaussian.mvt",
            environment: EnvironmentKind::Sparse,
            seed: 5,
            fault: Some(planning_fault()),
            protection: Protection::Gaussian,
        },
        GoldenTraceSpec {
            file: "sparse_s5_fault_autoencoder.mvt",
            environment: EnvironmentKind::Sparse,
            seed: 5,
            fault: Some(planning_fault()),
            protection: Protection::Autoencoder,
        },
    ]
}
