#!/usr/bin/env bash
# The full local lint gate: formatting, clippy (warnings are errors),
# rustdoc (warnings are errors, including broken intra-doc links — the
# `docs/` markdown pages are included into the `mavfi-suite` crate docs, so
# the same gate covers them), a smoke run of the instrumented-telemetry
# example, and a relative-link existence check over the repository's
# markdown documentation.
#
# Usage: ./scripts/check.sh
#
# This is the cheap half of CI (.github/workflows/ci.yml); it does not run
# the test suite, which takes ~30+ minutes on a small machine — use
# `cargo test -q` for that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps (includes docs/*.md)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "==> telemetry_report example smoke run"
cargo run --release --offline -q --example telemetry_report >/dev/null

echo "==> golden traces replay bit-identically (retrace --verify)"
cargo run --release --offline -q --example retrace -- --verify >/dev/null

echo "==> campaign server kill/resume smoke (campaign_server --smoke)"
cargo run --release --offline -q --example campaign_server -- --smoke >/dev/null

echo "==> bench log gate: BENCH_9.json -> BENCH_10.json (bench_compare)"
./scripts/bench.sh --compare BENCH_9.json BENCH_10.json >/dev/null

echo "==> markdown relative links resolve (README.md, docs/, CHANGES.md)"
broken=0
for file in README.md CHANGES.md docs/*.md; do
  dir=$(dirname "$file")
  # Extract relative markdown link targets: [text](target), skipping
  # absolute URLs and in-page anchors.
  while IFS= read -r target; do
    target="${target%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "  broken link in $file: $target"
      broken=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\(//; s/\)$//' \
             | grep -vE '^(https?|mailto):' || true)
done
if [ "$broken" -ne 0 ]; then
  echo "Broken documentation links found."
  exit 1
fi

echo "All checks passed."
