#!/usr/bin/env bash
# The full local lint gate: formatting, clippy (warnings are errors) and
# rustdoc (warnings are errors, including broken intra-doc links).
#
# Usage: ./scripts/check.sh
#
# This is the cheap half of CI (.github/workflows/ci.yml); it does not run
# the test suite, which takes ~30+ minutes on a small machine — use
# `cargo test -q` for that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "All checks passed."
