#!/usr/bin/env bash
# Runs the tick-path performance benches in a fixed, offline, single-core
# friendly configuration and appends timestamped entries to the bench log at
# the repository root.
#
# Usage: ./scripts/bench.sh [note] [outfile]
#        ./scripts/bench.sh --compare <old.json> [new.json]
#
#   note     free-form tag attached to every recorded entry (defaults to the
#            current git revision), e.g. ./scripts/bench.sh post-refactor
#   outfile  bench log to append to (defaults to $MAVFI_BENCH_LOG if set,
#            otherwise BENCH_10.json), e.g.
#            ./scripts/bench.sh post-refactor BENCH_10.json
#
#   --compare diffs two logs metric by metric without running any bench
#            (new.json defaults to the current log) and exits non-zero when
#            a headline metric regressed by more than 25% — see
#            crates/bench/src/bin/bench_compare.rs.
#
# The script runs the seven instrumented bench targets in quick mode:
#   - fig3_kernel_sensitivity  -> ticks/sec + ns/tick of the golden closed loop
#   - detector_micro           -> ns/score of the AAD reconstruction error
#   - replan_micro             -> ns/replan per planner + forced-replan ticks/sec
#   - replay_micro             -> record-overhead + ppc-only replay ticks/sec
#   - table2_overhead          -> ticks/sec of an AAD-protected mission
#   - batch_throughput         -> batched lockstep vs sequential ticks/sec,
#                                 worker-pool scaling curve
#   - serve_scaling            -> served-campaign jobs/sec per worker count,
#                                 service overhead vs the library call
# Full campaigns (paper tables/figures) are skipped; drop MAVFI_BENCH_QUICK
# below to include them.
set -euo pipefail
cd "$(dirname "$0")/.."

DEFAULT_LOG="${MAVFI_BENCH_LOG:-BENCH_10.json}"

if [ "${1:-}" = "--compare" ]; then
  OLD="${2:?usage: ./scripts/bench.sh --compare <old.json> [new.json]}"
  NEW="${3:-$DEFAULT_LOG}"
  exec cargo run -q --offline --release -p mavfi-bench --bin bench_compare -- "$OLD" "$NEW"
fi

NOTE="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo untagged)}"
LOG="${2:-$DEFAULT_LOG}"
# The bench harness resolves a relative MAVFI_BENCH_LOG against *its* working
# directory (crates/bench); anchor the log to the repository root instead.
case "$LOG" in
  /*) ;;
  *) LOG="$PWD/$LOG" ;;
esac

export MAVFI_BENCH_QUICK=1
export MAVFI_BENCH_NOTE="$NOTE"
export MAVFI_BENCH_LOG="$LOG"
# Fixed fan-out so numbers are comparable across machines and runs.
export MAVFI_WORKERS=1
export MAVFI_RUNS=1

echo "==> bench.sh note='$NOTE' log='$LOG' (quick mode, 1 worker)"
cargo bench -q --offline -p mavfi-bench --bench fig3_kernel_sensitivity
cargo bench -q --offline -p mavfi-bench --bench detector_micro
cargo bench -q --offline -p mavfi-bench --bench replan_micro
cargo bench -q --offline -p mavfi-bench --bench replay_micro
cargo bench -q --offline -p mavfi-bench --bench table2_overhead
cargo bench -q --offline -p mavfi-bench --bench batch_throughput
cargo bench -q --offline -p mavfi-bench --bench serve_scaling

echo "==> appended entries to $LOG:"
tail -n 40 "$LOG"
