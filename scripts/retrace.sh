#!/usr/bin/env bash
# Regenerate the committed golden-trace store (tests/golden/*.mvt) from the
# manifest in src/golden.rs, then verify that every freshly written trace
# replays bit-identically without the sim in the loop.
#
# Run this after an intentional behaviour change breaks the replay gate
# (tests/replay_golden.rs or `scripts/check.sh`), review the diff, and
# commit the regenerated traces together with the change that caused them.
#
# Usage: ./scripts/retrace.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -q --example retrace
cargo run --release --offline -q --example retrace -- --verify

echo "Golden-trace store regenerated; review 'git diff --stat tests/golden'."
