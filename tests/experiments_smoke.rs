//! Smoke tests of the experiment drivers that regenerate the paper's tables
//! and figures (the model-based ones run at full fidelity; the
//! simulation-based ones run in reduced "quick" configurations).

use mavfi_suite::mavfi::experiments::{fig3, fig8, fig9, table2};
use mavfi_suite::prelude::*;

#[test]
fn fig8_reproduces_the_redundancy_penalty_shape() {
    let result = fig8::run(&fig8::Fig8Config::default());
    let table = result.to_table();
    assert!(table.contains("DJI Spark"));
    assert!(table.contains("TMR"));
    let airsim = result.tmr_energy_ratio("AirSim UAV").unwrap();
    let spark = result.tmr_energy_ratio("DJI Spark").unwrap();
    // Paper: TMR costs 1.06x (AirSim) and 1.91x (Spark) relative to anomaly
    // detection; the shape to preserve is ">1 on both, larger on the Spark".
    assert!(airsim > 1.0 && spark > 1.0);
    assert!(spark > airsim);
}

#[test]
fn fig9_reproduces_the_platform_gap_shape() {
    let result = fig9::run(&fig9::Fig9Config::default(), None);
    assert!(result.embedded_slowdown() > 1.8);
    assert!(result.to_table().contains("i9-9940X"));
}

#[test]
fn fig3_quick_campaign_runs_end_to_end() {
    let mut config = fig3::Fig3Config::quick();
    config.runs_per_kernel = 1;
    config.golden_runs = 1;
    let result = fig3::run(&config).expect("quick fig3 campaign");
    assert_eq!(result.kernels.len(), KernelId::FIG3_KERNELS.len());
    assert!(result.golden.runs == 1);
    let table = result.to_table();
    assert!(table.contains("OctoMap"));
    assert!(table.contains("PID"));
}

#[test]
fn table2_overheads_follow_the_paper_ordering() {
    // Build a small campaign on the obstacle-free Farm environment and
    // derive Table II from it.
    let training =
        TrainingSpec { missions: 1, base_seed: 931, mission_time_budget: 25.0, epochs: 5 };
    let detectors = (*TrainedDetectorCache::global()
        .get_or_train(EnvironmentKind::Randomized, &training))
    .clone();
    let runner = CampaignRunner::new(detectors);
    let config = CampaignConfig {
        environment: EnvironmentKind::Farm,
        golden_runs: 1,
        injections_per_stage: 1,
        base_seed: 88,
        mission_time_budget: 150.0,
    };
    let campaign = runner.run_environment(&config).expect("quick campaign");
    let overheads = table2::from_campaigns(std::slice::from_ref(&campaign));
    assert_eq!(overheads.environments.len(), 1);
    let env = &overheads.environments[0];
    // The qualitative Table II findings: the autoencoder's total overhead is
    // far below the Gaussian scheme's, and both are small fractions.
    assert!(env.autoencoder_total <= env.gaussian_total);
    assert!(env.gaussian_total < 0.25, "overheads are small fractions of compute time");
    assert!(overheads.to_table().contains("Farm"));
}
