//! Tier-1 gate on the committed golden-trace store: every trace in
//! `tests/golden/` must load, carry the metadata the manifest promises,
//! and replay bit-identically without the sim in the loop; re-recording
//! the unprotected missions must reproduce the committed bytes exactly.
//!
//! Regenerate the store with `scripts/retrace.sh` after an intentional
//! behaviour change (see `docs/REPLAY.md`).

use mavfi_suite::golden::{manifest, GOLDEN_TIME_BUDGET};
use mavfi_suite::prelude::*;

#[test]
fn golden_store_is_complete_and_replays_bit_identically() {
    for spec in manifest() {
        let path = spec.path();
        assert!(
            std::path::Path::new(&path).exists(),
            "missing golden trace {path}; run scripts/retrace.sh to regenerate"
        );

        let trace = MissionTrace::load(&path)
            .unwrap_or_else(|err| panic!("golden trace {path} failed to load/verify: {err}"));
        let meta = trace.meta().unwrap();
        assert_eq!(meta.spec.environment, spec.environment, "{path}");
        assert_eq!(meta.spec.seed, spec.seed, "{path}");
        assert_eq!(meta.spec.mission.max_mission_time, GOLDEN_TIME_BUDGET, "{path}");
        assert_eq!(meta.protection, spec.protection, "{path}");
        assert_eq!(meta.fault, spec.fault, "{path}");
        assert_eq!(meta.detectors.is_some(), spec.protection != Protection::None, "{path}");

        let report = spec
            .replay_committed()
            .unwrap_or_else(|err| panic!("golden trace {path} failed to replay: {err}"));
        assert!(
            report.is_match(),
            "golden trace {path} diverged: {:?} (recorded digest {:016x}, replayed {:016x})",
            report.divergence,
            report.recorded_output_digest,
            report.replayed_output_digest
        );
        assert!(report.ticks > 0, "{path}");
        assert_eq!(report.status, Some(MissionStatus::Succeeded), "{path}");
        assert_eq!(report.stream_digest, trace.stream_digest().unwrap(), "{path}");
    }
}

#[test]
fn rerecording_unprotected_missions_reproduces_committed_bytes() {
    for spec in manifest().into_iter().filter(|spec| spec.protection == Protection::None) {
        let committed = std::fs::read(spec.path()).unwrap_or_else(|err| {
            panic!("missing golden trace {}: {err}; run scripts/retrace.sh", spec.path())
        });
        let (_, trace) = spec.record().unwrap();
        assert_eq!(
            trace.to_bytes(),
            committed,
            "re-recording {} produced different bytes; if the behaviour change is \
             intentional, regenerate the store with scripts/retrace.sh",
            spec.file
        );
    }
}
