//! The parallel campaign executor must be invisible in the results: the same
//! campaign run with 1, 2 and 8 workers produces identical
//! [`SettingResult`]s — QoF metrics, summaries, recomputation tallies and
//! fault plans.

use std::sync::{Arc, OnceLock};

use mavfi_suite::prelude::*;
use proptest::prelude::*;

fn quick_detectors() -> TrainedDetectors {
    // Shared across this binary's tests through the process-wide cache.
    let training =
        TrainingSpec { missions: 1, base_seed: 4_242, mission_time_budget: 25.0, epochs: 5 };
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training)).clone()
}

fn quick_config() -> CampaignConfig {
    let mut config = CampaignConfig::quick(EnvironmentKind::Sparse, 77);
    // Keep the suite fast on small machines: 2 golden + 3 injection runs
    // (one per stage) x 3 protection settings is still enough jobs for an
    // 8-worker fan-out to exercise out-of-order completion.  The short
    // budget truncates missions; determinism is about result equality, not
    // mission success, and truncated runs exercise the same merge paths.
    config.golden_runs = 2;
    config.injections_per_stage = 1;
    config.mission_time_budget = 45.0;
    config
}

fn assert_campaigns_identical(a: &EnvironmentCampaign, b: &EnvironmentCampaign, label: &str) {
    assert_eq!(a.environment, b.environment, "{label}: environment");
    for (left, right) in a.settings().into_iter().zip(b.settings()) {
        assert_eq!(left.label, right.label, "{label}: setting label");
        assert_eq!(left.runs, right.runs, "{label}: per-run QoF metrics ({})", left.label);
        assert_eq!(left.summary, right.summary, "{label}: summary ({})", left.label);
    }
    assert_eq!(a.gaussian_recomputations, b.gaussian_recomputations, "{label}: GAD recomputations");
    assert_eq!(
        a.autoencoder_recomputations, b.autoencoder_recomputations,
        "{label}: AAD recomputations"
    );
    assert_eq!(a.golden_mean_ticks, b.golden_mean_ticks, "{label}: mean ticks");
    assert_eq!(a.golden_mean_compute_ms, b.golden_mean_compute_ms, "{label}: mean compute ms");
}

#[test]
fn worker_count_does_not_change_campaign_results() {
    let detectors = quick_detectors();
    let config = quick_config();

    let serial = CampaignRunner::new(detectors.clone())
        .with_workers(1)
        .run_environment(&config)
        .expect("serial campaign");
    assert_eq!(serial.golden.runs.len(), config.golden_runs);
    assert_eq!(serial.injected.runs.len(), 3 * config.injections_per_stage);

    for workers in [2, 8] {
        let parallel = CampaignRunner::new(detectors.clone())
            .with_workers(workers)
            .run_environment(&config)
            .expect("parallel campaign");
        assert_campaigns_identical(&serial, &parallel, &format!("{workers} workers"));
    }

    // The env-configured default executor is a plain worker count, so the
    // equalities above cover it; just confirm it resolves sanely.
    assert!(CampaignRunner::new(detectors).executor().workers() >= 1);
}

#[test]
fn fault_plans_are_pure_functions_of_the_config() {
    let config = quick_config();
    let first = CampaignRunner::plan_faults(&config);
    let second = CampaignRunner::plan_faults(&config);
    assert_eq!(first, second, "fault planning must not depend on ambient state");
}

/// Shared fixture for the worker-count property: the detectors, the tiny
/// campaign configuration, and the sequential reference result — computed
/// once, reused by every generated case.
fn property_baseline() -> &'static (Arc<TrainedDetectors>, CampaignConfig, EnvironmentCampaign) {
    static BASELINE: OnceLock<(Arc<TrainedDetectors>, CampaignConfig, EnvironmentCampaign)> =
        OnceLock::new();
    BASELINE.get_or_init(|| {
        let detectors = Arc::new(quick_detectors());
        let mut config = CampaignConfig::quick(EnvironmentKind::Sparse, 2_029);
        // One golden + one injection per stage with a short budget keeps a
        // campaign cheap enough to re-run per generated case; truncated
        // missions exercise the same fan-out and merge paths.
        config.golden_runs = 1;
        config.injections_per_stage = 1;
        config.mission_time_budget = 12.0;
        let sequential = CampaignExecutor::new(1)
            .run_campaign(&config, &SchemeConfig::shared(Arc::clone(&detectors)))
            .expect("sequential baseline campaign");
        (detectors, config, sequential)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any worker count, [`CampaignExecutor`] yields the same
    /// [`QofSummary`] (and in fact the same full campaign) as the
    /// sequential path for the same `base_seed`.
    #[test]
    fn any_worker_count_matches_the_sequential_summaries(workers in 2usize..=12) {
        let (detectors, config, sequential) = property_baseline();
        let parallel = CampaignExecutor::new(workers)
            .run_campaign(config, &SchemeConfig::shared(Arc::clone(detectors)))
            .expect("parallel campaign");
        for (ours, reference) in parallel.settings().into_iter().zip(sequential.settings()) {
            prop_assert_eq!(&ours.summary, &reference.summary, "summary of {}", &ours.label);
        }
        prop_assert_eq!(&parallel, sequential);
    }
}

#[test]
fn executor_fan_out_preserves_order_under_contention() {
    let executor = WorkerPool::new(8);
    let jobs: Vec<u64> = (0..64).collect();
    let results = executor.run_ordered(&jobs, |index, &seed| {
        // Uneven job durations force out-of-order completion.
        let spin = (seed % 7) * 1_000;
        let mut acc = 0u64;
        for i in 0..spin {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        (index as u64, seed, acc.wrapping_mul(0).wrapping_add(seed * 2))
    });
    for (index, result) in results.iter().enumerate() {
        assert_eq!(result.0, index as u64);
        assert_eq!(result.2, result.1 * 2);
    }
}
