//! Integration tests of the reproduction's extensions beyond the paper's
//! core experiments: the ablation/calibration experiment driver, the
//! fault-model characterisation and the recurring-fault injector driving a
//! full closed-loop mission.

use mavfi::experiments::ablation::{self, AblationConfig};
use mavfi::experiments::fault_model::{self, FaultModelConfig};
use mavfi::prelude::*;

#[test]
fn ablation_quick_run_produces_consistent_detector_rankings() {
    let result = ablation::run(&AblationConfig::quick()).expect("ablation run");
    assert!(result.training_samples > 0);
    assert!(result.evaluation_samples > 0);
    assert_eq!(result.nsigma_sweep.len(), AblationConfig::quick().n_sigmas.len());
    assert_eq!(result.margin_sweep.len(), AblationConfig::quick().aad_margins.len());
    assert_eq!(result.detectors.len(), 5);
    assert_eq!(result.architectures.len(), 1);

    // Every AUC is a probability and every detector separates exponent-flip
    // corruption clearly better than chance.
    for detector in &result.detectors {
        assert!((0.0..=1.0).contains(&detector.auc_exponent), "{detector:?}");
        assert!((0.0..=1.0).contains(&detector.auc_correlation), "{detector:?}");
        assert!(
            detector.auc_exponent > 0.7,
            "{} separates exponent flips poorly: {}",
            detector.name,
            detector.auc_exponent
        );
    }
    // The table renders every family.
    let table = result.to_table();
    for name in ["Gaussian (GAD)", "EWMA", "Static range", "Mahalanobis", "Autoencoder (AAD)"] {
        assert!(table.contains(name), "missing {name} in\n{table}");
    }
}

#[test]
fn fault_model_survey_reproduces_the_bit_field_finding() {
    let result = fault_model::run(&FaultModelConfig::quick()).expect("fault-model run");
    assert!(result.values_surveyed > 10);
    assert!(
        result.sign_exponent_dominate(),
        "sign/exponent flips should be more harmful than mantissa flips:\n{}",
        result.to_table()
    );
    // Most random flips land in the mantissa (52 of 64 bits).
    assert!((result.survey.mantissa_share() - 52.0 / 64.0).abs() < 1e-9);
}

#[test]
fn permanent_command_fault_prevents_mission_completion_unlike_transient() {
    // Drive the closed loop by hand with the recurring injector: a permanent
    // stuck-at-zero fault on the forward velocity command keeps the vehicle
    // from ever reaching the goal, while the same fault as a one-shot
    // transient is absorbed.
    let spec = MissionSpec::new(EnvironmentKind::Farm, 9).with_time_budget(240.0);

    let fly = |recurrence: Option<Recurrence>| {
        let environment = spec.environment.build(spec.seed);
        let config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
        let mut pipeline = PpcPipeline::new(config, environment.start(), environment.goal());
        let camera = DepthCamera::default();
        let mut world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
        let base = FaultSpec {
            target: InjectionTarget::State(StateField::CommandVx),
            model: FaultModel::StuckAt { value: 0.0 },
            trigger_tick: 5,
            seed: 3,
        };
        let mut injector = recurrence
            .map(|recurrence| RecurringInjector::new(RecurringFaultSpec { base, recurrence }));
        while world.status() == MissionStatus::InProgress {
            let frame = camera.capture(world.environment(), &world.vehicle().pose());
            let command = match injector.as_mut() {
                Some(injector) => {
                    pipeline.tick(&frame, &world.vehicle().state(), 0.1, injector).command
                }
                None => pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap).command,
            };
            world.step(&command, 0.1);
        }
        (world.status(), injector.map(|i| i.occurrence_count()).unwrap_or(0))
    };

    let (golden_status, _) = fly(None);
    assert_eq!(golden_status, MissionStatus::Succeeded, "golden Farm mission should succeed");

    let (transient_status, transient_hits) = fly(Some(Recurrence::Transient));
    assert_eq!(transient_hits, 1);
    // A single zeroed velocity command for one control period is absorbed.
    assert_eq!(transient_status, MissionStatus::Succeeded);

    let (permanent_status, permanent_hits) = fly(Some(Recurrence::Permanent));
    assert!(permanent_hits > 100, "permanent fault should fire every tick");
    assert_ne!(
        permanent_status,
        MissionStatus::Succeeded,
        "a permanently zeroed forward velocity must not reach the goal"
    );
}
