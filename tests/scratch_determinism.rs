//! Golden-run determinism regression for the scratch-buffer tick path.
//!
//! The `_into` scratch APIs (depth capture, point cloud, smoothing,
//! trajectory resampling, AAD scoring) must be *bit-identical* to their
//! allocating counterparts: a mission driven through the allocating calls
//! produces exactly the same `MissionOutcome` (qof, trail, pipeline stats)
//! as `MissionRunner`'s scratch-buffer loop, across seeds and environments.

use mavfi::prelude::*;
use mavfi::qof::QofMetrics;
use mavfi_ppc::pipeline::PpcPipeline;
use mavfi_ppc::tap::NoopTap;

/// Flies `spec` with the *allocating* per-tick APIs (`DepthCamera::capture`
/// allocates a fresh frame every tick), mirroring `MissionRunner`'s loop.
fn fly_with_allocating_capture(spec: MissionSpec) -> (QofMetrics, Vec<Vec3>, u64) {
    let environment = spec.environment.build(spec.seed);
    let ppc_config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
    let mut pipeline = PpcPipeline::new(ppc_config, environment.start(), environment.goal());
    let camera = DepthCamera::default();
    let mut world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
    let dt = spec.control_period;
    while world.status() == MissionStatus::InProgress {
        let frame = camera.capture(world.environment(), &world.vehicle().pose());
        let tick = pipeline.tick(&frame, &world.vehicle().state(), dt, &mut NoopTap);
        world.step(&tick.command, dt);
    }
    let qof = QofMetrics {
        status: world.status(),
        flight_time_s: world.elapsed(),
        energy_j: world.energy_joules(),
        distance_m: world.distance_travelled(),
    };
    (qof, world.trail().to_vec(), pipeline.stats().ticks)
}

#[test]
fn scratch_path_outcomes_are_bit_identical_to_allocating_path() {
    // 3 seeds x 2 environments, as the refactor's acceptance demands.
    for environment in [EnvironmentKind::Sparse, EnvironmentKind::Farm] {
        for seed in [3_u64, 8, 21] {
            let spec = MissionSpec::new(environment, seed).with_time_budget(150.0);
            let (qof, trail, ticks) = fly_with_allocating_capture(spec);
            let outcome = MissionRunner::new(spec).run_golden();
            assert_eq!(
                qof, outcome.qof,
                "qof diverged for {environment:?} seed {seed} (scratch vs allocating)"
            );
            assert_eq!(
                trail, outcome.trail,
                "trail diverged for {environment:?} seed {seed} (scratch vs allocating)"
            );
            assert_eq!(ticks, outcome.pipeline.ticks, "tick count diverged for seed {seed}");
        }
    }
}

#[test]
fn capture_into_matches_capture_including_cull() {
    // Frames must be identical pose by pose, including poses that look away
    // from (behind-cull) and beyond (range-cull) the obstacles.
    for environment in [EnvironmentKind::Sparse, EnvironmentKind::Dense] {
        let env = environment.build(5);
        let camera = DepthCamera::default();
        let mut scratch = CaptureScratch::new();
        let mut reused = DepthFrame::default();
        for step in 0..48 {
            let angle = step as f64 * (std::f64::consts::TAU / 12.0);
            let offset = Vec3::new((step % 7) as f64 * 3.0, (step % 5) as f64 * 4.0, 2.0);
            let pose = Pose::new(env.start() + offset, angle);
            let allocating = camera.capture(&env, &pose);
            camera.capture_into(&env, &pose, &mut scratch, &mut reused);
            assert_eq!(
                allocating, reused,
                "{environment:?} frame diverged at step {step} (pose {pose:?})"
            );
        }
    }
}

#[test]
fn detector_supervised_outcome_is_deterministic_across_runs() {
    // The scratch buffers inside the detector tap must not leak state
    // between runs: two identical protected missions give identical
    // outcomes (detector stats included).
    let training =
        TrainingSpec { missions: 1, base_seed: 42, mission_time_budget: 20.0, epochs: 5 };
    let detectors = mavfi::exec::TrainedDetectorCache::global()
        .get_or_train(EnvironmentKind::Randomized, &training);
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 9).with_time_budget(120.0);
    let first = MissionRunner::new(spec)
        .run(None, Protection::Autoencoder, Some(&detectors))
        .expect("protected run");
    let second = MissionRunner::new(spec)
        .run(None, Protection::Autoencoder, Some(&detectors))
        .expect("protected run");
    assert_eq!(first.qof, second.qof);
    assert_eq!(first.trail, second.trail);
    assert_eq!(first.detector, second.detector);
}
