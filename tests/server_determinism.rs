//! The campaign service must be invisible in the results: a served campaign
//! is bit-identical to the library [`run_campaign`] call across the full
//! matrix of worker counts {1, 2, 8} x batch sizes {1, 8, 32} x concurrent
//! client counts {1, 3}.  Worker count, chunking and submission concurrency
//! may change wall-clock behaviour, never bytes.

use std::sync::OnceLock;

use mavfi_suite::mavfi_middleware::prelude::*;
use mavfi_suite::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const BATCH_SIZES: [usize; 3] = [1, 8, 32];

/// A five-job campaign: 2 golden + 3 injections, shared by every cell.
fn quick_request(seed: u64, batch_size: usize) -> CampaignRequest {
    let mut request = CampaignRequest::quick(EnvironmentKind::Farm, seed);
    request.config.golden_runs = 2;
    request.config.injections_per_stage = 1;
    request.config.mission_time_budget = 45.0;
    request.batch_size = batch_size;
    request
}

/// The library reference for `seed`, serialized once: batch size and worker
/// count are already proven result-neutral for the library path
/// (`tests/batch_equivalence.rs`, `tests/parallel_determinism.rs`), so one
/// reference per seed covers the whole matrix.
fn reference_json(seed: u64) -> &'static str {
    static REFERENCES: OnceLock<[(u64, String); 3]> = OnceLock::new();
    let references = REFERENCES.get_or_init(|| {
        [700, 701, 702].map(|seed| {
            let request = quick_request(seed, 1);
            let scheme = SchemeConfig::cached(request.training_environment, request.training);
            let campaign = CampaignExecutor::new(2)
                .run_campaign(&request.config, &scheme)
                .expect("library campaign");
            (seed, serde_json::to_string(&campaign).expect("serialize reference"))
        })
    });
    &references.iter().find(|(s, _)| *s == seed).expect("seed has a reference").1
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mavfi_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Steps `server` until it has no unfinished jobs.
fn drive_until_idle(server: &CampaignServer, bus: &Bus) {
    for _ in 0..256 {
        if server.idle() {
            return;
        }
        server.step_once(bus).expect("server step");
    }
    panic!("server did not finish its jobs");
}

#[test]
fn served_campaigns_are_bit_identical_across_the_worker_batch_client_matrix() {
    for workers in WORKER_COUNTS {
        for batch_size in BATCH_SIZES {
            for clients in [1usize, 3] {
                let label = format!("workers {workers}, batch {batch_size}, clients {clients}");
                let dir = fresh_dir(&format!("w{workers}_b{batch_size}_c{clients}"));
                let bus = Bus::new();
                let server = CampaignServer::new(CampaignExecutor::new(workers), dir)
                    .expect("create server");
                server.attach(&bus);
                let request = quick_request(700, batch_size);

                // All clients race their submissions from real threads;
                // exactly one wins admission, the rest get duplicate
                // tickets for the same job.
                let tickets: Vec<JobTicket> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..clients)
                        .map(|_| {
                            let client = CampaignClient::new(&bus);
                            scope.spawn(move || client.submit(&request).expect("submit"))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("client thread"))
                        .collect()
                });
                assert_eq!(
                    tickets.iter().filter(|ticket| !ticket.duplicate).count(),
                    1,
                    "{label}: exactly one submission is admitted"
                );
                assert!(
                    tickets.iter().all(|ticket| ticket.job_id == tickets[0].job_id),
                    "{label}: all clients land on the same job"
                );
                assert_eq!(server.job_count(), 1, "{label}: no duplicate work enqueued");

                drive_until_idle(&server, &bus);
                let result = CampaignClient::new(&bus)
                    .result(tickets[0].job_id)
                    .expect("status")
                    .expect("complete");
                let served = serde_json::to_string(&*result).expect("serialize served");
                assert_eq!(served, reference_json(700), "{label}: served bytes vs library");
            }
        }
    }
}

/// Three clients submitting three *different* campaigns concurrently: the
/// server executes them as independent jobs and each result matches its own
/// library reference bit-for-bit.
#[test]
fn concurrent_distinct_submissions_each_match_their_library_reference() {
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(2), fresh_dir("distinct"))
        .expect("create server");
    server.attach(&bus);

    let seeds = [700u64, 701, 702];
    let tickets: Vec<(u64, JobTicket)> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .map(|seed| {
                let client = CampaignClient::new(&bus);
                scope.spawn(move || (seed, client.submit(&quick_request(seed, 8)).expect("submit")))
            })
            .into_iter()
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("client thread")).collect()
    });
    assert_eq!(server.job_count(), 3, "three distinct jobs admitted");

    drive_until_idle(&server, &bus);
    let client = CampaignClient::new(&bus);
    for (seed, ticket) in tickets {
        let result = client.result(ticket.job_id).expect("status").expect("complete");
        let served = serde_json::to_string(&*result).expect("serialize served");
        assert_eq!(served, reference_json(seed), "seed {seed}: served bytes vs library");
    }
    assert_eq!(server.counters().jobs_completed, 3);
}
