//! Integration tests of the anomaly detection and recovery schemes running
//! inside full missions.

use mavfi_suite::prelude::*;

fn quick_detectors() -> TrainedDetectors {
    // Every test in this binary shares one trained bank via the process-wide
    // cache: training flies real missions and is by far the slowest part of
    // the suite, so retraining per test would multiply the wall time.
    let training =
        TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 };
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training)).clone()
}

/// A way-point exponent flip is the clearest failure mode of the paper's
/// Fig. 7: the vehicle chases a wildly wrong way-point until it replans.
fn waypoint_exponent_fault(trigger_tick: u64, seed: u64) -> FaultSpec {
    FaultSpec {
        target: InjectionTarget::State(StateField::WaypointX),
        model: FaultModel::single_bit_in(BitField::Exponent),
        trigger_tick,
        seed,
    }
}

#[test]
fn detectors_stay_quiet_on_error_free_missions() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 33).with_time_budget(240.0);
    let runner = MissionRunner::new(spec);
    for protection in [Protection::Gaussian, Protection::Autoencoder] {
        let outcome = runner.run(None, protection, Some(&detectors)).unwrap();
        assert!(outcome.is_success(), "{protection:?} run failed: {:?}", outcome.qof.status);
        let stats = outcome.detector.expect("detector stats recorded");
        let false_alarm_rate = stats.total_alarms() as f64 / stats.ticks.max(1) as f64;
        assert!(
            false_alarm_rate < 0.05,
            "{protection:?} raised too many false alarms: {} in {} ticks",
            stats.total_alarms(),
            stats.ticks
        );
    }
}

#[test]
fn detectors_flag_injected_waypoint_corruption() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 52).with_time_budget(300.0);
    let runner = MissionRunner::new(spec);
    let fault = waypoint_exponent_fault(40, 9_001);

    for protection in [Protection::Gaussian, Protection::Autoencoder] {
        let outcome = runner.run(Some(fault), protection, Some(&detectors)).unwrap();
        assert!(outcome.fault.is_some(), "fault must fire under {protection:?}");
        let stats = outcome.detector.expect("detector stats recorded");
        assert!(
            stats.total_alarms() >= 1,
            "{protection:?} missed an exponent-flip way-point corruption"
        );
    }
}

#[test]
fn recovery_restores_flight_time_relative_to_unprotected_run() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 52).with_time_budget(300.0);
    let runner = MissionRunner::new(spec);
    let fault = waypoint_exponent_fault(40, 9_001);

    let golden = runner.run_golden();
    let faulty = runner.run(Some(fault), Protection::None, None).unwrap();
    let recovered = runner.run(Some(fault), Protection::Autoencoder, Some(&detectors)).unwrap();

    assert!(golden.is_success());
    // The protected run must not be materially worse than the unprotected
    // faulty run, and should land close to the golden flight time.
    if faulty.is_success() {
        assert!(
            recovered.qof.flight_time_s <= faulty.qof.flight_time_s * 1.10 + 5.0,
            "recovered flight ({:.1} s) worse than unprotected faulty flight ({:.1} s)",
            recovered.qof.flight_time_s,
            faulty.qof.flight_time_s
        );
    } else {
        assert!(recovered.is_success(), "recovery should rescue a failed mission");
    }
}

#[test]
fn gaussian_recovery_triggers_stage_recomputation() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 52).with_time_budget(300.0);
    let runner = MissionRunner::new(spec);
    let fault = waypoint_exponent_fault(40, 9_001);
    let outcome = runner.run(Some(fault), Protection::Gaussian, Some(&detectors)).unwrap();
    let stats = outcome.detector.unwrap();
    assert!(
        stats.total_recomputations() >= 1,
        "the Gaussian scheme recovers by recomputing the offending stage"
    );
    // The pipeline recorded those recomputations too.
    let pipeline_recomputes: u64 = outcome.pipeline.total_recomputations();
    assert!(pipeline_recomputes >= 1);
}
