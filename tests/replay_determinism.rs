//! Replay determinism: record→replay bit-equality across seeds,
//! environments and fault settings; identical trace digests regardless of
//! worker count; and typed-error (never panic) handling of damaged or
//! foreign trace files.

use mavfi_suite::mavfi_middleware::trace::{compress_container, TraceError};
use mavfi_suite::prelude::*;

fn quick_detectors() -> TrainedDetectors {
    // The same quick-training convention the detection suite uses; the
    // process-wide cache shares the trained bank across tests.
    let training =
        TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 };
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training)).clone()
}

fn quick_spec(kind: EnvironmentKind, seed: u64) -> MissionSpec {
    MissionSpec::new(kind, seed).with_time_budget(60.0)
}

fn planning_fault(seed: u64) -> FaultSpec {
    FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 25, seed)
}

#[test]
fn record_replay_is_bit_identical_across_seeds_environments_and_faults() {
    for environment in [EnvironmentKind::Sparse, EnvironmentKind::Farm] {
        for seed in [3u64, 8, 21] {
            let runner = MissionRunner::new(quick_spec(environment, seed));

            let (golden, golden_trace) = runner.run_golden_recorded().unwrap();
            let report = ReplayHarness::new(&golden_trace).replay().unwrap();
            assert!(
                report.is_match(),
                "{environment:?} seed {seed} golden diverged: {:?}",
                report.divergence
            );
            assert_eq!(report.ticks, golden.pipeline.ticks);
            assert_eq!(report.status, Some(golden.qof.status));

            let fault = planning_fault(seed);
            let (faulty, fault_trace) =
                runner.run_recorded(Some(fault), Protection::None, None, None).unwrap();
            let report = ReplayHarness::new(&fault_trace).replay().unwrap();
            assert!(
                report.is_match(),
                "{environment:?} seed {seed} faulty diverged: {:?}",
                report.divergence
            );
            assert_eq!(report.ticks, faulty.pipeline.ticks);
            // The fault trace really differs from the golden one.
            assert_ne!(golden_trace.stream_digest().unwrap(), fault_trace.stream_digest().unwrap());
        }
    }
}

#[test]
fn protected_recording_replays_via_detector_provenance() {
    let detectors = quick_detectors();
    let provenance = DetectorProvenance {
        environment: EnvironmentKind::Randomized,
        training: TrainingSpec {
            missions: 2,
            base_seed: 640,
            mission_time_budget: 30.0,
            epochs: 10,
        },
    };
    let runner = MissionRunner::new(quick_spec(EnvironmentKind::Sparse, 5));
    let (outcome, trace) = runner
        .run_recorded(
            Some(planning_fault(11)),
            Protection::Gaussian,
            Some(&detectors),
            Some(provenance),
        )
        .unwrap();
    assert!(outcome.detector.is_some());

    // Self-contained path: the harness retrains from the provenance.
    let report = ReplayHarness::new(&trace).replay().unwrap();
    assert!(report.is_match(), "provenance replay diverged: {:?}", report.divergence);

    // Explicit-detector path matches too.
    let report = ReplayHarness::new(&trace).with_detectors(&detectors).replay().unwrap();
    assert!(report.is_match(), "explicit-detector replay diverged: {:?}", report.divergence);
}

#[test]
fn trace_digests_are_identical_across_worker_counts() {
    let seeds: Vec<u64> = vec![3, 8, 21, 34];
    let record = |_, seed: &u64| {
        let runner = MissionRunner::new(quick_spec(EnvironmentKind::Sparse, *seed));
        let (_, trace) = runner.run_golden_recorded().unwrap();
        trace.stream_digest().unwrap()
    };
    let serial = WorkerPool::new(1).run_ordered(&seeds, record);
    let dual = WorkerPool::new(2).run_ordered(&seeds, record);
    let wide = WorkerPool::new(8).run_ordered(&seeds, record);
    assert_eq!(serial, dual);
    assert_eq!(serial, wide);
}

#[test]
fn trace_io_round_trips_and_rejects_damage_with_typed_errors() {
    let runner = MissionRunner::new(quick_spec(EnvironmentKind::Sparse, 3));
    let (_, trace) = runner.run_golden_recorded().unwrap();

    // Save/load round trip through a temp file.
    let path = std::env::temp_dir().join(format!("mavfi_replay_rt_{}.mvt", std::process::id()));
    trace.save(&path).unwrap();
    let loaded = MissionTrace::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded, trace);
    assert_eq!(loaded.stream_digest().unwrap(), trace.stream_digest().unwrap());
    let report = ReplayHarness::new(&loaded).replay().unwrap();
    assert!(report.is_match());

    // A foreign file is a typed error, not a panic.
    let err = MissionTrace::from_bytes(b"\x89PNG\r\n\x1a\nnot a trace").unwrap_err();
    assert!(matches!(err, MavfiError::Trace(TraceError::BadMagic { .. })), "{err}");

    // A future format version is rejected by the header check.
    let mut stream = trace.stream().to_vec();
    stream[4] = 0x7F; // bump the version word past TRACE_VERSION
    let err = MissionTrace::from_bytes(&compress_container(&stream)).unwrap_err();
    assert!(matches!(err, MavfiError::Trace(TraceError::UnsupportedVersion { .. })), "{err}");

    // Truncation and payload corruption fail verification, typed.
    let container = trace.to_bytes();
    let err = MissionTrace::from_bytes(&container[..container.len() / 2]).unwrap_err();
    assert!(matches!(err, MavfiError::Trace(_)), "{err}");
    let mut stream = trace.stream().to_vec();
    let index = stream.len() / 2;
    stream[index] ^= 0x10;
    let err = MissionTrace::from_bytes(&compress_container(&stream)).unwrap_err();
    assert!(matches!(err, MavfiError::Trace(_)), "{err}");
}
