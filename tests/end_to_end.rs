//! Cross-crate integration tests: golden missions through the full stack
//! (simulator + PPC pipeline + runner).

use mavfi_suite::prelude::*;

#[test]
fn golden_mission_succeeds_in_farm() {
    let spec = MissionSpec::new(EnvironmentKind::Farm, 11).with_time_budget(240.0);
    let outcome = MissionRunner::new(spec).run_golden();
    assert!(outcome.is_success(), "farm golden run failed: {:?}", outcome.qof.status);
    assert!(outcome.qof.flight_time_s > 5.0);
    assert!(outcome.qof.energy_j > 0.0);
    assert!(outcome.qof.distance_m > 50.0, "the farm mission is a long diagonal");
}

#[test]
fn golden_mission_succeeds_in_sparse() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 4).with_time_budget(240.0);
    let outcome = MissionRunner::new(spec).run_golden();
    assert!(outcome.is_success(), "sparse golden run failed: {:?}", outcome.qof.status);
    // The trajectory starts at the environment start point.
    let env = EnvironmentKind::Sparse.build(4);
    assert_eq!(outcome.trail[0], env.start());
    // The vehicle ends near the goal.
    let last = *outcome.trail.last().unwrap();
    assert!(last.distance(env.goal()) < 3.0);
}

#[test]
fn missions_are_deterministic_across_runs() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 21).with_time_budget(200.0);
    let a = MissionRunner::new(spec).run_golden();
    let b = MissionRunner::new(spec).run_golden();
    assert_eq!(a.qof, b.qof);
    assert_eq!(a.trail, b.trail);
    assert_eq!(a.pipeline.ticks, b.pipeline.ticks);
}

#[test]
fn different_seeds_produce_different_flights() {
    let a =
        MissionRunner::new(MissionSpec::new(EnvironmentKind::Sparse, 1).with_time_budget(200.0))
            .run_golden();
    let b =
        MissionRunner::new(MissionSpec::new(EnvironmentKind::Sparse, 2).with_time_budget(200.0))
            .run_golden();
    assert_ne!(a.trail, b.trail, "different seeds should generate different environments");
}

#[test]
fn pipeline_statistics_are_populated() {
    let spec = MissionSpec::new(EnvironmentKind::Farm, 3).with_time_budget(120.0);
    let outcome = MissionRunner::new(spec).run_golden();
    let stats = &outcome.pipeline;
    assert!(stats.ticks > 10);
    assert!(stats.invocations(KernelId::PointCloudGeneration) >= stats.ticks);
    assert!(stats.invocations(KernelId::OctoMap) >= stats.ticks);
    assert!(stats.replans >= 1, "at least the initial plan must have happened");
    assert!(stats.total_compute_ms() > 0.0);
}
