//! Golden-run equivalence regression for the revision-tracked collision
//! cache and the `plan_into` replan path.
//!
//! `PpcPipeline` now replans through `MotionPlanner::plan_into` and screens
//! collisions through `CollisionChecker::run_cached`.  Both must be
//! *bit-identical* to the allocating/uncached kernels: a mission flown with
//! the cache disabled (every tick re-marches the velocity ray and the
//! future-way-point list, exactly like the pre-refactor code) produces
//! exactly the same outcome as `MissionRunner`'s default loop, across seeds
//! and environments — and under fault injection with recovery, which is
//! where replans and recomputations concentrate.

use mavfi::prelude::*;
use mavfi::qof::QofMetrics;
use mavfi_fault::injector::FaultInjector;
use mavfi_ppc::pipeline::PpcPipeline;
use mavfi_ppc::states::Stage;
use mavfi_ppc::tap::NoopTap;

/// Flies `spec` with the collision-check revision cache disabled, mirroring
/// `MissionRunner`'s loop (same capture scratch discipline, so the *only*
/// difference to the default path is uncached collision checking).
fn fly_uncached(spec: MissionSpec, mut injector: Option<FaultInjector>) -> (QofMetrics, Vec<Vec3>) {
    let environment = spec.environment.build(spec.seed);
    let ppc_config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
    let mut pipeline = PpcPipeline::new(ppc_config, environment.start(), environment.goal());
    pipeline.set_collision_cache_enabled(false);
    let camera = DepthCamera::default();
    let mut world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
    let dt = spec.control_period;
    let mut frame = DepthFrame::default();
    let mut scratch = CaptureScratch::new();
    while world.status() == MissionStatus::InProgress {
        camera.capture_into(world.environment(), &world.vehicle().pose(), &mut scratch, &mut frame);
        let tick = match injector.as_mut() {
            Some(injector) => pipeline.tick(&frame, &world.vehicle().state(), dt, injector),
            None => pipeline.tick(&frame, &world.vehicle().state(), dt, &mut NoopTap),
        };
        world.step(&tick.command, dt);
    }
    let qof = QofMetrics {
        status: world.status(),
        flight_time_s: world.elapsed(),
        energy_j: world.energy_joules(),
        distance_m: world.distance_travelled(),
    };
    (qof, world.trail().to_vec())
}

#[test]
fn cached_golden_runs_are_bit_identical_to_uncached_runs() {
    // 3 seeds × 2 environments, as the acceptance criteria demand.
    for environment in [EnvironmentKind::Sparse, EnvironmentKind::Farm] {
        for seed in [3_u64, 8, 21] {
            let spec = MissionSpec::new(environment, seed).with_time_budget(150.0);
            let (qof, trail) = fly_uncached(spec, None);
            let outcome = MissionRunner::new(spec).run_golden();
            assert_eq!(
                qof, outcome.qof,
                "qof diverged for {environment:?} seed {seed} (uncached vs revision-cached)"
            );
            assert_eq!(
                trail, outcome.trail,
                "trail diverged for {environment:?} seed {seed} (uncached vs revision-cached)"
            );
        }
    }
}

#[test]
fn cached_fault_injected_runs_are_bit_identical_to_uncached_runs() {
    // Fault-injected missions exercise the paths where the cache matters
    // most: tap-corrupted estimates, occupancy flips (grid revision bumps)
    // and trajectory corruption (shadow-compare revision bumps).
    for stage in Stage::ALL {
        let spec = MissionSpec::new(EnvironmentKind::Sparse, 5).with_time_budget(150.0);
        let fault = FaultSpec::new(InjectionTarget::Stage(stage), 25, 11);
        let (qof, trail) = fly_uncached(spec, Some(FaultInjector::new(fault)));
        let outcome =
            MissionRunner::new(spec).run(Some(fault), Protection::None, None).expect("unprotected");
        assert_eq!(qof, outcome.qof, "qof diverged for fault in {stage:?}");
        assert_eq!(trail, outcome.trail, "trail diverged for fault in {stage:?}");
    }
}
