//! Batched lockstep execution equivalence: the tentpole property of
//! `MissionBatch` is that stepping N missions tick-by-tick together — with
//! one matrix-matrix detector pass per stage and shared depth-capture
//! culling per environment — is **bit-identical** to flying each mission
//! alone through `MissionRunner`.
//!
//! Three angles:
//!
//! * a mixed batch (seeds × environments × fault stages × protections in
//!   one `MissionBatch`) versus per-mission sequential runs;
//! * full campaigns through the batched `CampaignExecutor::run_campaign`
//!   versus `run_campaign_sequential`, across batch sizes and worker
//!   counts;
//! * a recorded sequential trace standing as the digest of the batched
//!   flight: the batched outcome equals the recorded one and the trace
//!   replays to a tick-for-tick match.

use mavfi_suite::prelude::*;

fn quick_detectors() -> TrainedDetectors {
    // The same quick-training convention the detection suite uses; the
    // process-wide cache shares the trained bank across tests.
    let training =
        TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 };
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training)).clone()
}

/// One mixed batch covering 3 seeds × {Sparse, Dense} × all fault stages ×
/// all protection schemes (plus a golden run per environment/seed), compared
/// mission-for-mission against the sequential runner.
#[test]
fn mixed_batch_is_bit_identical_to_sequential_runs() {
    let detectors = quick_detectors();
    let mut missions = Vec::new();
    for environment in [EnvironmentKind::Sparse, EnvironmentKind::Dense] {
        for seed in [3_u64, 8, 21] {
            let spec = MissionSpec::new(environment, seed).with_time_budget(40.0);
            missions.push(BatchMission::golden(spec));
            for (offset, stage) in Stage::ALL.into_iter().enumerate() {
                let fault =
                    FaultSpec::new(InjectionTarget::Stage(stage), 25, seed + 7 * offset as u64);
                for protection in Protection::ALL {
                    missions.push(BatchMission { spec, fault: Some(fault), protection });
                }
            }
        }
    }

    let outcomes = MissionBatch::new(&missions, Some(&detectors)).unwrap().run_to_completion();
    assert_eq!(outcomes.len(), missions.len());
    for (mission, outcome) in missions.iter().zip(&outcomes) {
        let expected = MissionRunner::new(mission.spec)
            .run(mission.fault, mission.protection, Some(&detectors))
            .expect("sequential reference run");
        assert_eq!(
            *outcome, expected,
            "batched outcome diverged from sequential: {:?} seed {} fault {:?} under {:?}",
            mission.spec.environment, mission.spec.seed, mission.fault, mission.protection
        );
    }
}

/// The batched campaign engine assembles the exact same campaign as the
/// per-mission sequential baseline for every batch size and worker count
/// the acceptance criteria name.
#[test]
fn batched_campaigns_match_sequential_for_every_batch_size_and_worker_count() {
    let detectors = quick_detectors();
    let config = CampaignConfig {
        environment: EnvironmentKind::Sparse,
        golden_runs: 2,
        injections_per_stage: 2,
        base_seed: 17,
        mission_time_budget: 40.0,
    };
    let scheme = SchemeConfig::trained(detectors);
    let sequential = CampaignExecutor::new(1).run_campaign_sequential(&config, &scheme).unwrap();
    for workers in [1_usize, 2, 8] {
        for batch in [1_usize, 8, 32, 128] {
            let batched = CampaignExecutor::new(workers)
                .with_batch_size(batch)
                .run_campaign(&config, &scheme)
                .unwrap();
            assert_eq!(batched, sequential, "campaign diverged at workers {workers} batch {batch}");
        }
    }
}

/// A trace recorded from the sequential runner is a valid digest of the
/// batched flight: the same mission flown inside a mixed batch produces a
/// bit-identical outcome, and the recording replays to a match.
#[test]
fn recorded_batched_mission_matches_sequential_trace_replay() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 5).with_time_budget(60.0);
    let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 25, 11);
    let (sequential, trace) = MissionRunner::new(spec)
        .run_recorded(Some(fault), Protection::Autoencoder, Some(&detectors), None)
        .unwrap();

    // The recorded mission flown inside a batch (a golden batch-mate keeps
    // the lockstep driver honest about divergence) is bit-identical...
    let missions = [
        BatchMission { spec, fault: Some(fault), protection: Protection::Autoencoder },
        BatchMission::golden(spec),
    ];
    let outcomes = MissionBatch::new(&missions, Some(&detectors)).unwrap().run_to_completion();
    assert_eq!(outcomes[0], sequential, "batched flight diverged from the recorded sequential one");

    // ...so the sequential recording stands as the batched run's digest:
    // it replays to a tick-for-tick match.
    let report = ReplayHarness::new(&trace).with_detectors(&detectors).replay().unwrap();
    assert!(report.is_match(), "trace replay diverged: {:?}", report.divergence);
    assert_eq!(report.ticks, outcomes[0].pipeline.ticks);
}
