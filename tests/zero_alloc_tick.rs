//! Asserts the tentpole property of the scratch-buffer tick path: once warm,
//! one `PpcPipeline::tick` — depth capture included — and one AAD
//! detector-score iteration perform **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! that grows every scratch buffer to capacity, the allocation counter must
//! not move across hundreds of ticks.  The vehicle is held stationary so
//! the steady state is exact: no new voxels, no replans, no buffer growth.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use mavfi::{
    BatchMission, MissionBatch, MissionSpec, Protection, TrainedDetectorCache, TrainedDetectors,
    TrainingSpec,
};
use mavfi_detect::detector_node::{DetectionScheme, DetectorTap};
use mavfi_detect::prelude::*;
use mavfi_fault::injector::{FaultInjector, FaultSpec};
use mavfi_fault::target::InjectionTarget;
use mavfi_nn::train::TrainConfig;
use mavfi_ppc::kernel::KernelId;
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline};
use mavfi_ppc::planning::PlannerAlgorithm;
use mavfi_ppc::states::{
    CollisionEstimate, MonitoredStates, PointCloud, Stage, StateField, Trajectory,
};
use mavfi_ppc::tap::{NoopTap, StageTap, TapAction};
use mavfi_sim::energy::PowerModel;
use mavfi_sim::env::{Environment, EnvironmentKind, Obstacle};
use mavfi_sim::geometry::{Aabb, Pose, Vec3};
use mavfi_sim::sensors::{CaptureScratch, DepthCamera, DepthFrame};
use mavfi_sim::vehicle::{FlightCommand, QuadrotorState};
use mavfi_sim::world::{MissionStatus, World};
use mavfi_telemetry::MissionTelemetry;

/// System allocator wrapper counting allocations and reallocations — but
/// only those made by the thread currently registered as *measuring*.  The
/// tests in this binary run on parallel libtest threads on multi-core
/// machines, so an unfiltered process-global counter would pick up another
/// test's allocations inside this test's steady-state window.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Thread token of the measuring thread; 0 = nobody measuring.
static MEASURED_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Const-initialised, destructor-free thread-local whose address serves
    /// as an allocation-free per-thread token (safe to read inside the
    /// allocator).
    static THREAD_TOKEN: Cell<u8> = const { Cell::new(0) };
}

fn thread_token() -> usize {
    THREAD_TOKEN.with(|cell| cell as *const Cell<u8> as usize)
}

fn count_if_measured() {
    let measured = MEASURED_THREAD.load(Ordering::Relaxed);
    if measured != 0 && measured == thread_token() {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measured();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measured();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Registers the calling thread as the measuring thread for the guard's
/// lifetime (one measurer at a time; serialises the counting tests).
struct MeasureGuard {
    _lock: MutexGuard<'static, ()>,
}

fn start_measuring() -> MeasureGuard {
    let lock = MEASURE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    MEASURED_THREAD.store(thread_token(), Ordering::Relaxed);
    MeasureGuard { _lock: lock }
}

impl Drop for MeasureGuard {
    fn drop(&mut self) {
        MEASURED_THREAD.store(0, Ordering::Relaxed);
    }
}

/// A small world with an obstacle ahead of the camera (so capture, point
/// cloud and occupancy all carry real data) and a clear corridor to a goal.
fn test_environment() -> Environment {
    Environment::new(
        "zero-alloc",
        Aabb::new(Vec3::new(-10.0, -20.0, 0.0), Vec3::new(40.0, 20.0, 10.0)),
        vec![Obstacle::from_center(Vec3::new(15.0, 8.0, 2.0), Vec3::splat(3.0))],
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::new(30.0, 0.0, 2.0),
    )
}

fn synthetic_states(step: usize) -> MonitoredStates {
    let t = step as f64 * 0.1;
    let mut states = MonitoredStates::default();
    states.set_field(StateField::TimeToCollision, 4.0 + (t * 0.1).sin());
    states.set_field(StateField::WaypointX, 5.0 + 2.0 * t);
    states.set_field(StateField::WaypointY, -3.0 + 1.5 * t);
    states.set_field(StateField::CommandVx, 2.0 + 0.3 * (t * 0.5).sin());
    states.set_field(StateField::CommandVy, 1.5 + 0.3 * (t * 0.5).cos());
    states
}

fn trained_aad() -> AadDetector {
    let mut telemetry = TelemetrySet::new();
    for step in 0..300 {
        telemetry.record(&synthetic_states(step));
    }
    telemetry
        .train_aad(AadConfig::default(), &TrainConfig { epochs: 5, ..TrainConfig::default() })
        .0
}

/// Trains an AAD detector that never alarms (astronomical threshold
/// margin).  The steady-state test measures the *allocation* behaviour of
/// the per-stage scoring path; keeping the tap alarm-free keeps the
/// pipeline out of its (legitimately allocating) replan path — a detector
/// trained on unrelated telemetry alarm-locks on a hovering vehicle, and
/// planning abandonment then consumes the trajectory until a replan.
fn never_alarming_aad() -> AadDetector {
    let mut telemetry = TelemetrySet::new();
    for step in 0..300 {
        telemetry.record(&synthetic_states(step));
    }
    telemetry
        .train_aad(
            AadConfig { threshold_margin: 1.0e12, ..AadConfig::default() },
            &TrainConfig { epochs: 5, ..TrainConfig::default() },
        )
        .0
}

/// Runs `ticks` capture+tick iterations from a stationary pose and returns
/// the number of heap allocations they performed.  The frame and capture
/// scratch persist in the caller: they are part of the steady state.
fn allocations_over_ticks(
    camera: &DepthCamera,
    env: &Environment,
    pipeline: &mut PpcPipeline,
    tap: &mut dyn mavfi_ppc::tap::StageTap,
    scratch: &mut CaptureScratch,
    frame: &mut DepthFrame,
    ticks: usize,
) -> u64 {
    let pose = Pose::new(env.start(), 0.0);
    let vehicle = QuadrotorState { position: env.start(), ..QuadrotorState::default() };
    let before = allocation_count();
    for _ in 0..ticks {
        camera.capture_into(env, &pose, scratch, frame);
        let tick = pipeline.tick(frame, &vehicle, 0.1, tap);
        std::hint::black_box(&tick);
    }
    allocation_count() - before
}

/// Like [`allocations_over_ticks`], but with the full telemetry sink
/// attached: pipeline wall-clock timing on and every tick observed — the
/// exact per-tick work the instrumented runner does.
#[allow(clippy::too_many_arguments)]
fn allocations_over_instrumented_ticks(
    camera: &DepthCamera,
    env: &Environment,
    pipeline: &mut PpcPipeline,
    tap: &mut dyn mavfi_ppc::tap::StageTap,
    scratch: &mut CaptureScratch,
    frame: &mut DepthFrame,
    sink: &mut MissionTelemetry,
    ticks: usize,
) -> u64 {
    let pose = Pose::new(env.start(), 0.0);
    let vehicle = QuadrotorState { position: env.start(), ..QuadrotorState::default() };
    pipeline.set_timing_enabled(true);
    let before = allocation_count();
    for index in 0..ticks {
        camera.capture_into(env, &pose, scratch, frame);
        let tick = pipeline.tick(frame, &vehicle, 0.1, tap);
        sink.observe_tick(index as u64, index as f64 * 0.1, &tick, pipeline, None, None);
        std::hint::black_box(&tick);
    }
    allocation_count() - before
}

#[test]
fn steady_state_tick_with_noop_tap_allocates_nothing() {
    let env = test_environment();
    let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 7);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();

    // Warm-up: first ticks plan, grow voxel storage, scratch buffers and
    // stats maps to capacity.
    let _measuring = start_measuring();
    let mut scratch = CaptureScratch::new();
    let mut frame = DepthFrame::default();
    let warmup = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut NoopTap,
        &mut scratch,
        &mut frame,
        20,
    );
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let steady = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut NoopTap,
        &mut scratch,
        &mut frame,
        200,
    );
    assert_eq!(
        steady, 0,
        "steady-state capture+tick must not allocate (200 ticks allocated {steady} times)"
    );
}

/// A tap that requests a planning-stage recomputation on every tick — the
/// recovery feedback the detector issues after a detected planning fault
/// (the paper's 83 ms re-plan path), distilled to its deterministic core.
struct ReplanEveryTick;

impl StageTap for ReplanEveryTick {
    fn after_planning(&mut self, _trajectory: &mut Trajectory, _active_index: usize) -> TapAction {
        TapAction::Recompute
    }
}

/// A world whose start → goal line is blocked by a wall, so every replan is
/// a real search (not the two-way-point line-of-sight shortcut).
fn walled_environment() -> Environment {
    Environment::new(
        "zero-alloc-replan",
        Aabb::new(Vec3::new(-10.0, -20.0, 0.0), Vec3::new(40.0, 20.0, 10.0)),
        vec![Obstacle::from_center(Vec3::new(12.0, 0.0, 2.0), Vec3::new(4.0, 12.0, 6.0))],
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::new(30.0, 0.0, 2.0),
    )
}

/// The tentpole property of the `plan_into` refactor: a fault-triggered
/// replan — planner search, path smoothing, trajectory resampling, tracker
/// and PID resets — performs **zero heap allocations** once warm.
///
/// The pipeline uses the deterministic A* planner so every replan from the
/// stationary pose repeats the identical search: the warm-up provably grows
/// the pooled open list, bookkeeping maps and path buffers to the high-water
/// mark of the measured window (a sampling-based planner's tree size varies
/// per replan, which would make a strict zero assertion racy).
#[test]
fn fault_triggered_replan_allocates_nothing() {
    let env = walled_environment();
    let config = PpcConfig::new(PlannerAlgorithm::AStar, env.bounds(), 3);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();

    let _measuring = start_measuring();
    let mut scratch = CaptureScratch::new();
    let mut frame = DepthFrame::default();
    let warmup = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut ReplanEveryTick,
        &mut scratch,
        &mut frame,
        20,
    );
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let replans_before = pipeline.stats().replans;
    let steady = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut ReplanEveryTick,
        &mut scratch,
        &mut frame,
        200,
    );
    let replans = pipeline.stats().replans - replans_before;
    assert!(replans >= 200, "every tick must have replanned (got {replans})");
    assert_eq!(
        steady, 0,
        "{replans} fault-triggered replans must not allocate (allocated {steady} times)"
    );
    // The searches were real detours, not line-of-sight shortcuts.
    assert!(
        pipeline.trajectory().path_length() > env.start().distance(env.goal()),
        "the wall must force a detour"
    );
}

/// The telemetry tentpole property: attaching the full observability stack —
/// wall-clock kernel timing, histograms, counters and the event timeline —
/// adds **zero heap allocations** to the steady-state tick.  Everything the
/// sink touches was preallocated when it was constructed.
#[test]
fn steady_state_tick_with_telemetry_allocates_nothing() {
    let env = test_environment();
    let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 7);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();
    let mut sink = MissionTelemetry::new();

    let _measuring = start_measuring();
    let mut scratch = CaptureScratch::new();
    let mut frame = DepthFrame::default();
    let warmup = allocations_over_instrumented_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut NoopTap,
        &mut scratch,
        &mut frame,
        &mut sink,
        20,
    );
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let steady = allocations_over_instrumented_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut NoopTap,
        &mut scratch,
        &mut frame,
        &mut sink,
        200,
    );
    assert_eq!(
        steady, 0,
        "steady-state tick with telemetry must not allocate (200 ticks allocated {steady} times)"
    );
    // The sink really observed the window: ticks counted, kernel latencies
    // recorded.
    assert_eq!(sink.counters().ticks, 220);
    assert!(sink.kernel_latency(KernelId::OctoMap).count() > 0, "timing must have been recorded");
}

/// Telemetry stays allocation-free through the *eventful* path too: a
/// replan on every tick emits Replan (and cache-activity) timeline events,
/// and the timeline keeps absorbing them without allocating — including
/// after it fills and switches to counting dropped events.
#[test]
fn fault_triggered_replan_with_telemetry_allocates_nothing() {
    let env = walled_environment();
    let config = PpcConfig::new(PlannerAlgorithm::AStar, env.bounds(), 3);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();
    // A tiny timeline so the measured window provably crosses the
    // capacity boundary into the drop-counting regime.
    let mut sink = MissionTelemetry::with_timeline_capacity(64);

    let _measuring = start_measuring();
    let mut scratch = CaptureScratch::new();
    let mut frame = DepthFrame::default();
    let warmup = allocations_over_instrumented_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut ReplanEveryTick,
        &mut scratch,
        &mut frame,
        &mut sink,
        20,
    );
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let steady = allocations_over_instrumented_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut ReplanEveryTick,
        &mut scratch,
        &mut frame,
        &mut sink,
        200,
    );
    assert_eq!(
        steady, 0,
        "replanning ticks with telemetry must not allocate (allocated {steady} times)"
    );
    // Tap-requested replans are recorded as planning-stage recoveries.
    assert!(
        sink.counters().recomputations[mavfi_ppc::states::Stage::Planning.index()] >= 200,
        "every tick must have recomputed the planning stage"
    );
    let timeline = sink.timeline();
    assert_eq!(timeline.events().len(), 64, "the timeline must have filled");
    assert!(timeline.dropped() > 0, "overflow must have been counted, not stored");
}

#[test]
fn steady_state_tick_with_aad_detector_allocates_nothing() {
    let env = test_environment();
    let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 11);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();
    let mut tap = DetectorTap::new(DetectionScheme::Autoencoder(never_alarming_aad()));

    let _measuring = start_measuring();
    let mut scratch = CaptureScratch::new();
    let mut frame = DepthFrame::default();
    let warmup = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut tap,
        &mut scratch,
        &mut frame,
        20,
    );
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let steady = allocations_over_ticks(
        &camera,
        &env,
        &mut pipeline,
        &mut tap,
        &mut scratch,
        &mut frame,
        200,
    );
    assert_eq!(
        steady, 0,
        "steady-state tick + AAD score must not allocate (200 ticks allocated {steady} times)"
    );
}

/// The spatial-index pooling property: once one reset → insert → query
/// cycle has grown the bucket map, chain table and position store to
/// capacity, an identical cycle on the same [`NnIndex`] instance performs
/// **zero heap allocations** — the lifecycle every warm `plan_into` call
/// runs.
#[test]
fn warm_nn_index_cycle_allocates_nothing() {
    use mavfi_ppc::planning::NnIndex;

    // Deterministic point cloud, no RNG: a coarse lattice walk that spreads
    // across many cells while revisiting some (multi-entry bucket chains).
    fn point(step: usize) -> Vec3 {
        let t = step as f64;
        Vec3::new((t * 0.713).sin() * 20.0, (t * 0.292).cos() * 20.0, (t * 0.177).sin() * 6.0)
    }

    fn run_cycle(index: &mut NnIndex, out: &mut Vec<usize>) -> usize {
        index.reset(1.5);
        let mut sink = 0;
        for step in 0..400 {
            index.insert(point(step));
            let query = point(step) + Vec3::new(0.4, -0.2, 0.1);
            sink += index.nearest(query);
            index.within_radius(query, 3.0, out);
            sink += out.len();
        }
        sink
    }

    let mut index = NnIndex::new();
    let mut out = Vec::new();

    let _measuring = start_measuring();
    let warm_sink = run_cycle(&mut index, &mut out);

    let before = allocation_count();
    let steady_sink = run_cycle(&mut index, &mut out);
    let allocated = allocation_count() - before;
    assert_eq!(allocated, 0, "warm reset+insert+query cycle allocated {allocated} times");
    assert_eq!(steady_sink, warm_sink, "the warm cycle must repeat the cold one exactly");
}

/// The planner-level pooling property the spatial index must preserve: warm
/// RRT* replans — tree growth, indexed nearest/radius queries, rewiring cost
/// propagation, goal selection — perform **zero heap allocations**.  The
/// vendored RNG makes the whole replan sequence deterministic per seed, so
/// the warm-up provably grows every pooled buffer (including the index's
/// bucket map and chain table) past the measured window's high-water mark.
#[test]
fn warm_rrt_star_replans_allocate_nothing() {
    use mavfi_ppc::planning::{PlannedPath, PlannerAlgorithm, PlannerConfig};

    let env = walled_environment();
    let mut planner =
        PlannerAlgorithm::RrtStar.instantiate(PlannerConfig::for_bounds(env.bounds()).with_seed(5));
    let mut out = PlannedPath::default();

    let _measuring = start_measuring();
    let before_warmup = allocation_count();
    for _ in 0..60 {
        std::hint::black_box(planner.plan_into(&env, env.start(), env.goal(), &mut out));
    }
    let warmup = allocation_count() - before_warmup;
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let before = allocation_count();
    for _ in 0..120 {
        let path = planner.plan_into(&env, env.start(), env.goal(), &mut out);
        assert!(path, "the walled world is always solvable");
    }
    let allocated = allocation_count() - before;
    assert_eq!(allocated, 0, "120 warm RRT* replans allocated {allocated} times");
}

#[test]
fn aad_score_iteration_with_scratch_allocates_nothing() {
    let detector = trained_aad();
    let mut scratch = AadScratch::new();
    let mut preprocessor = Preprocessor::new();
    let deltas = preprocessor.process(&synthetic_states(0));

    // Warm the scratch to capacity, then score repeatedly.
    let _measuring = start_measuring();
    let warm_score = detector.score_with(&deltas, &mut scratch);
    let before = allocation_count();
    let mut sink = 0.0;
    for _ in 0..1_000 {
        sink += detector.score_with(&deltas, &mut scratch);
    }
    let allocated = allocation_count() - before;
    std::hint::black_box(sink);
    assert_eq!(allocated, 0, "scored 1000 vectors with {allocated} allocations");
    assert_eq!(detector.score(&deltas), warm_score, "scratch path must match allocating path");
}

// ---------------------------------------------------------------------------
// Batched lockstep execution
// ---------------------------------------------------------------------------

fn quick_detectors() -> TrainedDetectors {
    // The same quick-training convention the integration suites use; the
    // process-wide cache shares the trained bank across tests.
    let training =
        TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 };
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training)).clone()
}

/// Mirror of the runner's composite injector→detector tap (`MissionTap` is
/// crate-private to `mavfi`), so the sequential twins below run the exact
/// per-tick loop `MissionRunner` executes.
struct SequentialTap {
    injector: Option<FaultInjector>,
    detector: Option<DetectorTap>,
}

impl StageTap for SequentialTap {
    fn after_point_cloud(&mut self, cloud: &mut PointCloud) {
        if let Some(injector) = &mut self.injector {
            injector.after_point_cloud(cloud);
        }
        if let Some(detector) = &mut self.detector {
            detector.after_point_cloud(cloud);
        }
    }

    fn after_occupancy(&mut self, grid: &mut OccupancyGrid) {
        if let Some(injector) = &mut self.injector {
            injector.after_occupancy(grid);
        }
        if let Some(detector) = &mut self.detector {
            detector.after_occupancy(grid);
        }
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_perception(estimate));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_perception(estimate));
        }
        action
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_planning(trajectory, active_index));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_planning(trajectory, active_index));
        }
        action
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_control(command));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_control(command));
        }
        action
    }
}

/// One mission flown the sequential way — the capture + tick + step loop of
/// `MissionRunner`, owned by the test so its per-tick allocations can be
/// measured against the lockstep driver's.
struct SequentialMission {
    world: World,
    pipeline: PpcPipeline,
    tap: SequentialTap,
    scratch: CaptureScratch,
    frame: DepthFrame,
}

impl SequentialMission {
    fn new(spec: MissionSpec, fault: Option<FaultSpec>, detector: Option<DetectorTap>) -> Self {
        let environment = spec.environment.build(spec.seed);
        let config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
        let pipeline = PpcPipeline::new(config, environment.start(), environment.goal());
        let world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
        Self {
            world,
            pipeline,
            tap: SequentialTap { injector: fault.map(FaultInjector::new), detector },
            scratch: CaptureScratch::new(),
            frame: DepthFrame::default(),
        }
    }

    fn tick(&mut self, camera: &DepthCamera, dt: f64) {
        if self.world.status() != MissionStatus::InProgress {
            return;
        }
        let pose = self.world.vehicle().pose();
        let state = self.world.vehicle().state();
        camera.capture_into(self.world.environment(), &pose, &mut self.scratch, &mut self.frame);
        let tick = self.pipeline.tick(&self.frame, &state, dt, &mut self.tap);
        self.world.step(&tick.command, dt);
    }
}

/// The batched-execution property at the allocator level: once warm, a
/// lockstep `tick_batch` allocates **exactly as much as its missions do when
/// flown alone** — the structure-of-arrays driver, the one-pass matrix-matrix
/// detector scoring and the shared-cull depth capture add zero steady-state
/// allocations of their own — and the overwhelming majority of steady-state
/// batch ticks allocate nothing at all.  (The rare nonzero ticks are the
/// missions' own amortised growth — trail samples, newly observed voxels,
/// planner pools crossing a high-water mark — which the sequential twins pay
/// identically, tick for tick; flying missions are never *strictly*
/// allocation-free, which is why the stationary-pose tests above exist.)
#[test]
fn warm_batched_lockstep_tick_allocates_like_its_missions() {
    let detectors = quick_detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 3).with_time_budget(200.0);
    let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 25, 11);
    let missions = [
        BatchMission::golden(spec),
        BatchMission { spec, fault: Some(fault), protection: Protection::Gaussian },
        BatchMission { spec, fault: Some(fault), protection: Protection::Autoencoder },
    ];
    let mut batch = MissionBatch::new(&missions, Some(&detectors)).unwrap();
    let mut twins = vec![
        SequentialMission::new(spec, None, None),
        SequentialMission::new(
            spec,
            Some(fault),
            Some(DetectorTap::new(DetectionScheme::Gaussian(detectors.gad.clone()))),
        ),
        SequentialMission::new(
            spec,
            Some(fault),
            Some(DetectorTap::new(DetectionScheme::Autoencoder(detectors.aad.clone()))),
        ),
    ];
    let camera = DepthCamera::default();
    let dt = spec.control_period;

    let _measuring = start_measuring();
    // Warm-up: both sides grow capture scratches, voxel stores, planner
    // pools and the batched detector scratch to capacity.
    let before = allocation_count();
    for _ in 0..40 {
        batch.tick_batch();
        for twin in &mut twins {
            twin.tick(&camera, dt);
        }
    }
    let warmup = allocation_count() - before;
    assert!(warmup > 0, "warm-up is expected to allocate while buffers grow");

    let mut measured = 0_u64;
    let mut zero_ticks = 0_u64;
    for tick_index in 40..240 {
        let before = allocation_count();
        batch.tick_batch();
        let batched = allocation_count() - before;
        let before = allocation_count();
        for twin in &mut twins {
            twin.tick(&camera, dt);
        }
        let sequential = allocation_count() - before;
        if batch.alive() < twins.len() {
            // The tick that retires a mission assembles its outcome (trail
            // copy, stats clones) — allocations the twins' loop doesn't
            // perform.  The steady-state window ends here.
            break;
        }
        assert_eq!(
            batched, sequential,
            "tick {tick_index}: the lockstep driver allocated {batched} times, \
             the sequential twins {sequential}"
        );
        measured += 1;
        if batched == 0 {
            zero_ticks += 1;
        }
    }
    assert!(measured >= 120, "missions ended too early for a steady state ({measured} ticks)");
    assert!(
        zero_ticks * 10 >= measured * 9,
        "steady-state lockstep ticks must be allocation-free almost everywhere \
         ({zero_ticks} of {measured} ticks were)"
    );
}

#[test]
fn mahalanobis_distance_allocates_nothing() {
    let samples: Vec<[f64; 13]> = (0..100)
        .map(|i| {
            let v = i as f64 * 0.1;
            std::array::from_fn(|d| v * (0.5 + d as f64 * 0.1) + (v * 0.7).sin())
        })
        .collect();
    let detector = MahalanobisDetector::fit(&samples, MahalanobisConfig::default());
    let probe = samples[50];
    let _measuring = start_measuring();
    let before = allocation_count();
    let mut sink = 0.0;
    for _ in 0..1_000 {
        sink += detector.distance(&probe);
    }
    let allocated = allocation_count() - before;
    std::hint::black_box(sink);
    assert_eq!(allocated, 0, "computed 1000 distances with {allocated} allocations");
}
