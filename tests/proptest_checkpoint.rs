//! Property tests for the campaign checkpoint format: arbitrary
//! interleavings of fold progress, checkpointing and restore must be
//! invisible against an uninterrupted reference fold, the binary codec
//! must round-trip bit-exactly (including non-finite floats), and damaged
//! bytes must always produce typed errors — never panics, never silent
//! acceptance.
//!
//! Modeled on `crates/middleware/tests/proptest_recorder.rs`, which plays
//! the same game against the trace ring buffer.

use mavfi_suite::mavfi::serve::checkpoint::{request_job_id, CampaignCheckpoint};
use mavfi_suite::mavfi_middleware::trace::TraceError;
use mavfi_suite::prelude::*;
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = MissionStatus> {
    (0usize..4).prop_map(|index| {
        [
            MissionStatus::InProgress,
            MissionStatus::Succeeded,
            MissionStatus::Collided,
            MissionStatus::TimedOut,
        ][index]
    })
}

/// Floats as they actually occur in fold state — plus the adversarial ones
/// (NaN, infinities, signed zero) the bit-exact codec must preserve.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..12, -1.0e6..1.0e6f64).prop_map(|(kind, finite)| match kind {
        8 => f64::NAN,
        9 => f64::INFINITY,
        10 => f64::NEG_INFINITY,
        11 => -0.0,
        _ => finite,
    })
}

fn arb_metrics() -> impl Strategy<Value = QofMetrics> {
    (arb_status(), arb_f64(), arb_f64(), arb_f64()).prop_map(
        |(status, flight_time_s, energy_j, distance_m)| QofMetrics {
            status,
            flight_time_s,
            energy_j,
            distance_m,
        },
    )
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    (0usize..3).prop_map(|index| Stage::ALL[index])
}

fn arb_environment() -> impl Strategy<Value = EnvironmentKind> {
    (0usize..5).prop_map(|index| {
        [
            EnvironmentKind::Factory,
            EnvironmentKind::Farm,
            EnvironmentKind::Sparse,
            EnvironmentKind::Dense,
            EnvironmentKind::Randomized,
        ][index]
    })
}

fn arb_request() -> impl Strategy<Value = CampaignRequest> {
    (
        (arb_environment(), 0usize..40, 0usize..40, any::<u64>(), arb_f64()),
        (arb_environment(), 0usize..5, any::<u64>(), arb_f64(), 0usize..9),
        1usize..64,
    )
        .prop_map(
            |(
                (environment, golden_runs, injections_per_stage, base_seed, mission_time_budget),
                (training_environment, missions, training_seed, training_budget, epochs),
                batch_size,
            )| CampaignRequest {
                config: CampaignConfig {
                    environment,
                    golden_runs,
                    injections_per_stage,
                    base_seed,
                    mission_time_budget,
                },
                training_environment,
                training: TrainingSpec {
                    missions,
                    base_seed: training_seed,
                    mission_time_budget: training_budget,
                    epochs,
                },
                batch_size,
            },
        )
}

/// One unit of fold progress, applied to [`CampaignFoldState`] exactly the
/// way the campaign engine's chunk fold mutates it.
#[derive(Debug, Clone)]
enum FoldEvent {
    Golden { metrics: QofMetrics, ticks: u64, compute_ms: f64 },
    Fault { injected: QofMetrics, gaussian: QofMetrics, autoencoder: QofMetrics },
    Recompute { stage: Stage, gaussian: u64, autoencoder: u64 },
}

fn arb_event() -> impl Strategy<Value = FoldEvent> {
    (
        0usize..3,
        (arb_metrics(), 0u64..5_000, arb_f64()),
        (arb_metrics(), arb_metrics()),
        (arb_stage(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(kind, (metrics, ticks, compute_ms), (gaussian, autoencoder), recompute)| match kind {
                0 => FoldEvent::Golden { metrics, ticks, compute_ms },
                1 => FoldEvent::Fault { injected: metrics, gaussian, autoencoder },
                _ => FoldEvent::Recompute {
                    stage: recompute.0,
                    gaussian: recompute.1,
                    autoencoder: recompute.2,
                },
            },
        )
}

fn apply(state: &mut CampaignFoldState, event: &FoldEvent) {
    match event {
        FoldEvent::Golden { metrics, ticks, compute_ms } => {
            state.golden_runs.push(*metrics);
            state.golden_ticks += ticks;
            state.golden_compute_ms += compute_ms;
        }
        FoldEvent::Fault { injected, gaussian, autoencoder } => {
            state.injected_runs.push(*injected);
            state.gaussian_runs.push(*gaussian);
            state.autoencoder_runs.push(*autoencoder);
        }
        FoldEvent::Recompute { stage, gaussian, autoencoder } => {
            state.gaussian_recomputations.push((*stage, *gaussian));
            state.autoencoder_recomputations.push((*stage, *autoencoder));
        }
    }
}

/// Bit-level state equality: serialized bytes, so NaN == NaN holds the way
/// the resume path needs it to.
fn state_bytes(request: &CampaignRequest, chunks_done: u64, state: &CampaignFoldState) -> Vec<u8> {
    CampaignCheckpoint { request: *request, chunks_done, state: state.clone() }.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode -> decode -> encode is the identity on bytes, and the decoded
    /// checkpoint preserves the request's content-derived job id.
    #[test]
    fn round_trip_is_bit_exact(
        request in arb_request(),
        chunks_done in 0u64..1_000,
        events in proptest::collection::vec(arb_event(), 0..24),
    ) {
        let mut state = CampaignFoldState::new(&request.config);
        for event in &events {
            apply(&mut state, event);
        }
        let checkpoint = CampaignCheckpoint { request, chunks_done, state };
        let encoded = checkpoint.encode();
        let decoded = CampaignCheckpoint::decode(&encoded).expect("decode");
        prop_assert_eq!(decoded.chunks_done, chunks_done);
        prop_assert_eq!(decoded.job_id(), request_job_id(&request));
        prop_assert_eq!(decoded.encode(), encoded, "re-encode must reproduce the bytes");
    }

    /// Arbitrary interleavings of fold progress, checkpoint and restore end
    /// in exactly the state of an uninterrupted fold: before each event the
    /// fold may be serialized and replaced by its decoded self (a simulated
    /// kill/resume), any number of times, without perturbing a single bit.
    #[test]
    fn checkpoint_restore_interleavings_match_the_uninterrupted_fold(
        request in arb_request(),
        events in proptest::collection::vec((arb_event(), any::<bool>()), 1..32),
    ) {
        let mut uninterrupted = CampaignFoldState::new(&request.config);
        let mut resumed = CampaignFoldState::new(&request.config);
        for (index, (event, checkpoint_here)) in events.iter().enumerate() {
            if *checkpoint_here {
                let encoded =
                    state_bytes(&request, index as u64, &resumed);
                let restored = CampaignCheckpoint::decode(&encoded).expect("restore");
                prop_assert_eq!(restored.chunks_done, index as u64);
                resumed = restored.state;
            }
            apply(&mut uninterrupted, event);
            apply(&mut resumed, event);
        }
        prop_assert_eq!(
            state_bytes(&request, events.len() as u64, &resumed),
            state_bytes(&request, events.len() as u64, &uninterrupted),
            "restored fold diverged from the uninterrupted reference"
        );
    }

    /// Any single corrupted byte is detected: decode returns a typed error,
    /// it never panics and never silently accepts damaged state.
    #[test]
    fn corrupted_bytes_are_always_rejected(
        request in arb_request(),
        events in proptest::collection::vec(arb_event(), 0..12),
        position in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut state = CampaignFoldState::new(&request.config);
        for event in &events {
            apply(&mut state, event);
        }
        let mut bytes = CampaignCheckpoint { request, chunks_done: 3, state }.encode();
        let index = position % bytes.len();
        bytes[index] ^= mask;
        prop_assert!(
            CampaignCheckpoint::decode(&bytes).is_err(),
            "flipping byte {} escaped the digest", index
        );
    }

    /// Every strict prefix of a valid checkpoint is rejected as truncated
    /// (or otherwise malformed) — no prefix length panics.
    #[test]
    fn truncations_are_always_rejected(
        request in arb_request(),
        events in proptest::collection::vec(arb_event(), 0..12),
        cut in any::<usize>(),
    ) {
        let mut state = CampaignFoldState::new(&request.config);
        for event in &events {
            apply(&mut state, event);
        }
        let bytes = CampaignCheckpoint { request, chunks_done: 1, state }.encode();
        let len = cut % bytes.len();
        prop_assert!(CampaignCheckpoint::decode(&bytes[..len]).is_err());
    }

    /// Arbitrary garbage never panics the decoder; whatever it returns is a
    /// typed [`TraceError`].
    #[test]
    fn garbage_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        match CampaignCheckpoint::decode(&bytes) {
            Ok(_) => prop_assert!(false, "garbage must not verify"),
            Err(
                TraceError::BadMagic { .. }
                | TraceError::UnsupportedVersion { .. }
                | TraceError::Truncated
                | TraceError::DigestMismatch { .. }
                | TraceError::Malformed { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
        }
    }
}
