//! Proves the telemetry layer's inertness contract: attaching the full
//! observability stack changes **nothing** about mission or campaign
//! results, and the deterministic half of the campaign rollup is
//! bit-identical across worker counts.

use mavfi_suite::prelude::*;

fn quick_detectors() -> SchemeConfig {
    // Shared through the process-wide cache so the campaign tests in this
    // binary train once, not per test.
    let training =
        TrainingSpec { missions: 1, base_seed: 77, mission_time_budget: 25.0, epochs: 5 };
    SchemeConfig::cached(EnvironmentKind::Randomized, training)
}

fn quick_campaign() -> CampaignConfig {
    CampaignConfig {
        environment: EnvironmentKind::Farm,
        golden_runs: 1,
        injections_per_stage: 1,
        base_seed: 5,
        mission_time_budget: 60.0,
    }
}

#[test]
fn instrumented_mission_is_bit_identical_to_uninstrumented() {
    let detectors = quick_detectors().detectors();
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 33).with_time_budget(120.0);
    let runner = MissionRunner::new(spec);
    let fault = FaultSpec {
        target: InjectionTarget::State(StateField::WaypointX),
        model: FaultModel::single_bit_in(BitField::Exponent),
        trigger_tick: 50,
        seed: 9,
    };

    let plain = runner.run(Some(fault), Protection::Autoencoder, Some(&detectors)).unwrap();
    let mut sink = MissionTelemetry::new();
    let observed = runner
        .run_instrumented(Some(fault), Protection::Autoencoder, Some(&detectors), &mut sink)
        .unwrap();

    // The whole outcome — qof, trail, fault record, detector stats,
    // pipeline stats — must be unchanged by observation.
    assert_eq!(plain, observed);

    // And the sink must actually have watched the mission.
    assert_eq!(sink.counters().ticks, observed.pipeline.ticks);
    let events = sink.timeline().events();
    assert!(
        events.iter().any(|e| matches!(e.event, TelemetryEvent::FaultInjected { .. })),
        "the injected fault must appear on the timeline"
    );
    // Timeline stamps are simulation state only: ticks and sim seconds.
    for event in events {
        assert!(event.sim_time_s <= 120.0 + 1.0, "timeline stamped with sim time, not wall time");
    }
}

#[test]
fn golden_mission_is_bit_identical_to_uninstrumented() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 7).with_time_budget(120.0);
    let runner = MissionRunner::new(spec);
    let plain = runner.run_golden();
    let mut sink = MissionTelemetry::new();
    let observed = runner.run_golden_instrumented(&mut sink);
    assert_eq!(plain, observed);
    assert_eq!(sink.counters().ticks, observed.pipeline.ticks);
}

#[test]
fn campaign_rollup_is_deterministic_and_inert_across_worker_counts() {
    let scheme = quick_detectors();
    let config = quick_campaign();

    // The reference: no telemetry at all.
    let plain = run_campaign(&config, &scheme, 4).unwrap();

    let mut views = Vec::new();
    for workers in [1usize, 2, 8] {
        let (campaign, report) = run_campaign_instrumented(&config, &scheme, workers).unwrap();
        // Inert: campaign results identical to the uninstrumented run.
        assert_eq!(campaign, plain, "telemetry must not change results ({workers} workers)");
        // 1 golden + 3 faults x 3 protection settings.
        assert_eq!(report.missions, 10);
        assert!(report.counters.ticks > 0);
        assert_ne!(report.timeline_digest, 0);
        // Worker accounting covers every job without inventing any.
        assert_eq!(report.wall_clock.worker_jobs.iter().sum::<u64>(), 4);
        views.push(report.deterministic_view());
    }
    // The deterministic half of the rollup is identical for every worker
    // count (the wall-clock half is machine- and scheduling-dependent).
    assert_eq!(views[0], views[1]);
    assert_eq!(views[0], views[2]);

    // The rollup serialises and round-trips.
    let json = serde_json::to_string(&views[0]).unwrap();
    let back: TelemetryReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, views[0]);
}
