//! Integration test of the ROS-like middleware substrate carrying simulator
//! data between nodes, the way MAVFI attaches to a ROS graph.

use std::time::Duration;

use mavfi_suite::mavfi_middleware::prelude::*;
use mavfi_suite::mavfi_sim::prelude::*;

/// Publishes depth frames from the simulated camera at 10 Hz.
struct SensorNode {
    env: Environment,
    camera: DepthCamera,
    pose: Pose,
}

impl Node for SensorNode {
    fn name(&self) -> &str {
        "depth_camera"
    }
    fn period(&self) -> Duration {
        Duration::from_millis(100)
    }
    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
        let frame = self.camera.capture(&self.env, &self.pose);
        ctx.bus.advertise::<usize>("perception/point_count").publish(frame.points.len());
        Ok(())
    }
}

/// Counts the frames it receives and crashes once (to exercise the restart
/// path) before continuing.
struct MonitorNode {
    received: usize,
    crashed_once: bool,
}

impl Node for MonitorNode {
    fn name(&self) -> &str {
        "monitor"
    }
    fn period(&self) -> Duration {
        Duration::from_millis(100)
    }
    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
        let subscriber = ctx.bus.subscribe::<usize>("perception/point_count");
        self.received += subscriber.drain().len();
        if !self.crashed_once && ctx.step_index == 3 {
            self.crashed_once = true;
            return Err(NodeError::new("synthetic crash for restart testing"));
        }
        Ok(())
    }
}

#[test]
fn sensor_and_monitor_nodes_exchange_messages_on_the_bus() {
    let env = EnvironmentKind::Dense.build(3);
    let pose = Pose::new(env.start(), 0.0);
    let bus = Bus::new();
    let recorder = Recorder::new();
    bus.set_recorder(recorder.clone());
    // Subscribe before the executor runs so that no message is dropped.
    let observer = bus.subscribe::<usize>("perception/point_count");

    let mut executor = Executor::new(bus);
    executor.add_node(Box::new(SensorNode { env, camera: DepthCamera::default(), pose }));
    executor.add_node(Box::new(MonitorNode { received: 0, crashed_once: false }));

    let report = executor.run_for(Duration::from_secs(2)).expect("executor has nodes");
    // 0.0, 0.1, ..., 2.0 -> 21 steps per node.
    assert_eq!(report.steps, 42);
    assert_eq!(report.crashes, 1, "the monitor node crashes exactly once");
    assert_eq!(report.end_time, Duration::from_secs(2));

    // The registry recorded the crash and the restart.
    let monitor_info = executor.registry().info("monitor").expect("monitor registered");
    assert_eq!(monitor_info.crashes, 1);
    assert_eq!(monitor_info.restarts, 1);
    assert_eq!(monitor_info.steps, 21);

    // Messages flowed: one per sensor step, all recorded.
    assert_eq!(observer.len(), 21);
    assert_eq!(recorder.count_for_topic("perception/point_count"), 21);
    assert!(observer.latest().is_some());
}

#[test]
fn services_resolve_between_components() {
    let bus = Bus::new();
    // A "mission planner" service returning the remaining goal count.
    bus.advertise_service::<u32, u32, _>("mission/remaining", |flown| 3_u32.saturating_sub(flown));
    let client = bus.service_client::<u32, u32>("mission/remaining");
    assert_eq!(client.call(1).unwrap(), 2);
    assert_eq!(client.call(5).unwrap(), 0);
    assert!(bus.has_service("mission/remaining"));
}
