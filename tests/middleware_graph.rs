//! Integration test of the ROS-like middleware substrate carrying simulator
//! data between nodes, the way MAVFI attaches to a ROS graph.

use std::time::Duration;

use mavfi_suite::mavfi_middleware::prelude::*;
use mavfi_suite::mavfi_sim::prelude::*;

/// Publishes depth frames from the simulated camera at 10 Hz.
struct SensorNode {
    env: Environment,
    camera: DepthCamera,
    pose: Pose,
}

impl Node for SensorNode {
    fn name(&self) -> &str {
        "depth_camera"
    }
    fn period(&self) -> Duration {
        Duration::from_millis(100)
    }
    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
        let frame = self.camera.capture(&self.env, &self.pose);
        ctx.bus.advertise::<usize>("perception/point_count").publish(frame.points.len());
        Ok(())
    }
}

/// Counts the frames it receives and crashes once (to exercise the restart
/// path) before continuing.
struct MonitorNode {
    received: usize,
    crashed_once: bool,
}

impl Node for MonitorNode {
    fn name(&self) -> &str {
        "monitor"
    }
    fn period(&self) -> Duration {
        Duration::from_millis(100)
    }
    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
        let subscriber = ctx.bus.subscribe::<usize>("perception/point_count");
        self.received += subscriber.drain().len();
        if !self.crashed_once && ctx.step_index == 3 {
            self.crashed_once = true;
            return Err(NodeError::new("synthetic crash for restart testing"));
        }
        Ok(())
    }
}

#[test]
fn sensor_and_monitor_nodes_exchange_messages_on_the_bus() {
    let env = EnvironmentKind::Dense.build(3);
    let pose = Pose::new(env.start(), 0.0);
    let bus = Bus::new();
    let recorder = Recorder::new();
    bus.set_recorder(recorder.clone());
    // Subscribe before the executor runs so that no message is dropped.
    let observer = bus.subscribe::<usize>("perception/point_count");

    let mut executor = Executor::new(bus);
    executor.add_node(Box::new(SensorNode { env, camera: DepthCamera::default(), pose }));
    executor.add_node(Box::new(MonitorNode { received: 0, crashed_once: false }));

    let report = executor.run_for(Duration::from_secs(2)).expect("executor has nodes");
    // 0.0, 0.1, ..., 2.0 -> 21 steps per node.
    assert_eq!(report.steps, 42);
    assert_eq!(report.crashes, 1, "the monitor node crashes exactly once");
    assert_eq!(report.end_time, Duration::from_secs(2));

    // The registry recorded the crash and the restart.
    let monitor_info = executor.registry().info("monitor").expect("monitor registered");
    assert_eq!(monitor_info.crashes, 1);
    assert_eq!(monitor_info.restarts, 1);
    assert_eq!(monitor_info.steps, 21);

    // Messages flowed: one per sensor step, all recorded.
    assert_eq!(observer.len(), 21);
    assert_eq!(recorder.count_for_topic("perception/point_count"), 21);
    assert!(observer.latest().is_some());
}

#[test]
fn services_resolve_between_components() {
    let bus = Bus::new();
    // A "mission planner" service returning the remaining goal count.
    bus.advertise_service::<u32, u32, _>("mission/remaining", |flown| 3_u32.saturating_sub(flown));
    let client = bus.service_client::<u32, u32>("mission/remaining");
    assert_eq!(client.call(1).unwrap(), 2);
    assert_eq!(client.call(5).unwrap(), 0);
    assert!(bus.has_service("mission/remaining"));
}

/// A streaming topic (shaped like the campaign server's per-job progress
/// stream) with a slow consumer: the bounded queue drops oldest-first,
/// counts its drops, and the latest-value cache stays current — while an
/// unbounded subscriber on the same topic still sees everything.
#[test]
fn bounded_subscribers_shed_oldest_messages_under_streaming_load() {
    let bus = Bus::new();
    let topic = "campaign/000000000000002a/progress";
    let slow = bus.try_subscribe_with_capacity::<u64>(topic, 4).expect("fresh topic");
    let firehose = bus.subscribe::<u64>(topic);
    // Same topic, wrong type: the capacity-bounded path reports the
    // mismatch as a typed error instead of panicking.
    assert!(bus.try_subscribe_with_capacity::<f64>(topic, 4).is_err());

    let publisher = bus.advertise::<u64>(topic);
    for chunk in 0..32u64 {
        publisher.publish(chunk);
    }

    assert_eq!(slow.len(), 4, "queue is capped at its capacity");
    assert_eq!(slow.dropped(), 28, "every shed message is counted");
    assert_eq!(slow.drain(), vec![28, 29, 30, 31], "oldest messages go first");
    assert_eq!(slow.latest(), Some(31), "latest-value cache survives the shedding");
    assert_eq!(slow.dropped(), 28, "draining does not change the dropped count");
    assert_eq!(firehose.len(), 32, "an unbounded subscriber loses nothing");
}

/// Interceptors — the hook MAVFI's fault injector attaches to the ROS
/// communication layer — mutate streamed messages between publication and
/// delivery: every subscriber sees the corrupted value, interceptors stack
/// in registration order, and the publisher's own value is untouched.
#[test]
fn interceptors_corrupt_streamed_messages_in_flight() {
    let bus = Bus::new();
    let topic = "campaign/0000000000000007/progress";
    let subscriber = bus.try_subscribe_with_capacity::<u64>(topic, 8).expect("fresh topic");

    bus.add_interceptor::<u64, _>(topic, |value| *value |= 0x100).expect("first interceptor");
    bus.add_interceptor::<u64, _>(topic, |value| *value += 1).expect("second interceptor");
    assert!(
        bus.add_interceptor::<f64, _>(topic, |_| {}).is_err(),
        "type-mismatched interceptors are rejected, not panicked on"
    );

    let publisher = bus.advertise::<u64>(topic);
    for chunk in 0..3u64 {
        publisher.publish(chunk);
    }
    assert_eq!(
        subscriber.drain(),
        vec![0x101, 0x102, 0x103],
        "interceptors apply to every message, in registration order"
    );
}
