//! Integration tests of the fault-injection campaign machinery.

use mavfi_suite::prelude::*;

#[test]
fn stage_faults_fire_and_are_attributed_to_the_right_stage() {
    for stage in Stage::ALL {
        let spec = MissionSpec::new(EnvironmentKind::Sparse, 9).with_time_budget(200.0);
        let fault = FaultSpec::new(InjectionTarget::Stage(stage), 30, 1000 + stage as u64);
        let outcome = MissionRunner::new(spec)
            .run(Some(fault), Protection::None, None)
            .expect("unprotected runs cannot fail to configure");
        let record = outcome.fault.unwrap_or_else(|| panic!("{stage:?} fault never fired"));
        assert_eq!(record.field.expect("stage faults corrupt a scalar").stage(), stage);
        assert!(record.tick >= 30);
    }
}

#[test]
fn faulty_runs_with_same_spec_are_reproducible() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 14).with_time_budget(200.0);
    let fault = FaultSpec::new(InjectionTarget::State(StateField::WaypointY), 40, 77);
    let a = MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap();
    let b = MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap();
    assert_eq!(a.qof, b.qof);
    assert_eq!(a.fault, b.fault);
}

#[test]
fn campaign_plans_have_paper_shape() {
    // Fig. 3: 100 runs per kernel over 7 kernels.
    assert_eq!(CampaignPlan::per_kernel(100, 0).len(), 700);
    // Fig. 4: 100 runs per monitored inter-kernel state (13 states).
    assert_eq!(CampaignPlan::per_state(100, 0).len(), 1300);
    // Table I / Fig. 6: 100 runs per PPC stage -> 300 injection runs.
    assert_eq!(CampaignPlan::per_stage(100, 0).len(), 300);
}

#[test]
fn quick_campaign_produces_consistent_summaries() {
    let training =
        TrainingSpec { missions: 1, base_seed: 321, mission_time_budget: 25.0, epochs: 5 };
    let detectors = (*TrainedDetectorCache::global()
        .get_or_train(EnvironmentKind::Randomized, &training))
    .clone();
    let runner = CampaignRunner::new(detectors);
    let config = CampaignConfig {
        environment: EnvironmentKind::Farm,
        golden_runs: 2,
        injections_per_stage: 1,
        base_seed: 17,
        mission_time_budget: 150.0,
    };
    let campaign = runner.run_environment(&config).expect("campaign should run");

    assert_eq!(campaign.golden.runs.len(), 2);
    assert_eq!(campaign.injected.runs.len(), 3);
    assert_eq!(campaign.gaussian.runs.len(), 3);
    assert_eq!(campaign.autoencoder.runs.len(), 3);
    for setting in campaign.settings() {
        assert!((0.0..=1.0).contains(&setting.summary.success_rate), "{}", setting.label);
        assert_eq!(setting.summary.runs, setting.runs.len());
    }
    assert!(campaign.golden_mean_ticks > 0.0);
    assert!(campaign.golden_mean_compute_ms > 0.0);
    // Farm is obstacle-free: golden runs must succeed.
    assert_eq!(campaign.golden.summary.success_rate, 1.0);
}
