//! Fault-injection harness for the campaign service *itself*: kill the
//! server at every checkpoint boundary, corrupt and truncate checkpoint
//! files, drop and duplicate client submissions — and assert that resume
//! equals an uninterrupted serve bit-for-bit and that every failure
//! surfaces as a typed [`ServerError`], never a panic.
//!
//! This is the service-level counterpart of `tests/replay_determinism.rs`:
//! there the artifact under attack is a mission trace, here it is the
//! campaign server's own persistence and protocol layer.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mavfi_suite::mavfi_middleware::prelude::*;
use mavfi_suite::prelude::*;

/// A tiny five-job campaign (2 golden + 3 injections) with a pinned batch
/// size of 2, i.e. exactly 3 checkpointable chunks.
fn quick_request(seed: u64) -> CampaignRequest {
    let mut request = CampaignRequest::quick(EnvironmentKind::Farm, seed);
    request.config.golden_runs = 2;
    request.config.injections_per_stage = 1;
    request.config.mission_time_budget = 60.0;
    request.batch_size = 2;
    request
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mavfi_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// The library-call reference the served results must be byte-identical to.
fn library_reference(request: &CampaignRequest, workers: usize) -> EnvironmentCampaign {
    let scheme = SchemeConfig::cached(request.training_environment, request.training);
    CampaignExecutor::new(workers)
        .with_batch_size(request.batch_size)
        .run_campaign(&request.config, &scheme)
        .expect("library campaign")
}

/// Serves `request` on a fresh server over `dir` until completion.
fn serve_to_completion(
    request: &CampaignRequest,
    workers: usize,
    dir: &Path,
) -> Arc<EnvironmentCampaign> {
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(workers), dir).expect("create server");
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let ticket = client.submit(request).expect("submit");
    drive_to_completion(&server, &bus, &client, ticket.job_id)
}

/// Steps `server` until `job_id` reports a final campaign.
fn drive_to_completion(
    server: &CampaignServer,
    bus: &Bus,
    client: &CampaignClient,
    job_id: u64,
) -> Arc<EnvironmentCampaign> {
    for _ in 0..64 {
        if let Some(result) = client.result(job_id).expect("status") {
            return result;
        }
        server.step_once(bus).expect("server step");
    }
    panic!("job {job_id:016x} did not complete");
}

fn as_json(campaign: &EnvironmentCampaign) -> String {
    serde_json::to_string(campaign).expect("serialize campaign")
}

#[test]
fn served_results_match_the_library_for_multiple_worker_counts() {
    let request = quick_request(901);
    let reference = library_reference(&request, 1);
    for workers in [1, 2] {
        let library = library_reference(&request, workers);
        let served =
            serve_to_completion(&request, workers, &fresh_dir(&format!("match_w{workers}")));
        assert_eq!(*served, library, "{workers} workers: served vs library");
        assert_eq!(as_json(&served), as_json(&reference), "{workers} workers: serialized bytes");
    }
}

/// The acceptance criterion: kill the server after every possible number of
/// completed checkpoint strides (including before the first and after the
/// last), restart on the same checkpoint directory without resubmitting,
/// and require the final campaign to be byte-identical to the
/// uninterrupted library result — for more than one worker count.
#[test]
fn kill_at_every_checkpoint_boundary_then_resume_is_bit_identical() {
    let request = quick_request(902);
    for workers in [1, 2] {
        let reference = library_reference(&request, workers);
        let reference_json = as_json(&reference);
        for kill_after in 0..=3u64 {
            let label = format!("workers {workers}, killed after {kill_after} strides");
            let dir = fresh_dir(&format!("kill_w{workers}_k{kill_after}"));

            // Phase A: serve until the boundary, then "kill" the process by
            // dropping the server, its bus and every client.
            let job_id = {
                let bus = Bus::new();
                let server = CampaignServer::new(CampaignExecutor::new(workers), dir.clone())
                    .expect("create server");
                server.attach(&bus);
                let client = CampaignClient::new(&bus);
                let ticket = client.submit(&request).expect("submit");
                assert_eq!(ticket.chunks_total, 3, "{label}: chunk count");
                for _ in 0..kill_after {
                    assert!(server.step_once(&bus).expect("server step"), "{label}: had work");
                }
                if kill_after < ticket.chunks_total {
                    let status = client.status(ticket.job_id).expect("status");
                    assert_eq!(
                        status,
                        JobStatus::Pending { chunks_done: kill_after, chunks_total: 3 },
                        "{label}: pre-kill status"
                    );
                }
                ticket.job_id
            };

            // Phase B: a fresh server on the same directory resumes the job
            // from its checkpoint — no resubmission.
            let bus = Bus::new();
            let server = CampaignServer::new(CampaignExecutor::new(workers), dir.clone())
                .expect("restarted server");
            assert_eq!(server.resumed_job_ids(), vec![job_id], "{label}: resumed job");
            let counters = server.counters();
            assert_eq!(counters.jobs_resumed, 1, "{label}: resume counter");
            assert_eq!(counters.checkpoints_loaded, 1, "{label}: load counter");
            server.attach(&bus);
            let client = CampaignClient::new(&bus);
            let resumed = drive_to_completion(&server, &bus, &client, job_id);

            assert_eq!(*resumed, reference, "{label}: resumed vs library");
            assert_eq!(as_json(&resumed), reference_json, "{label}: serialized bytes");
        }
    }
}

#[test]
fn duplicate_submissions_are_idempotent() {
    let request = quick_request(903);
    let reference = library_reference(&request, 2);
    let dir = fresh_dir("dup");
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(2), dir).expect("create server");
    server.attach(&bus);
    let client = CampaignClient::new(&bus);

    let first = client.submit(&request).expect("submit");
    assert!(!first.duplicate);
    let second = client.submit(&request).expect("resubmit");
    assert!(second.duplicate, "identical request lands on the existing job");
    assert_eq!(second.job_id, first.job_id);
    assert_eq!(server.job_count(), 1, "no second job was enqueued");

    // A duplicate arriving mid-run reports the job's live progress.
    server.step_once(&bus).expect("server step");
    let mid = client.submit(&request).expect("mid-run resubmit");
    assert!(mid.duplicate);
    assert_eq!(mid.chunks_done, 1);

    let result = drive_to_completion(&server, &bus, &client, first.job_id);
    // Even a duplicate arriving after completion is answered with a ticket.
    let late = client.submit(&request).expect("post-completion resubmit");
    assert!(late.duplicate);
    assert_eq!(late.chunks_done, late.chunks_total);

    let counters = server.counters();
    assert_eq!(counters.jobs_submitted, 1);
    assert_eq!(counters.duplicate_submissions, 3);
    assert_eq!(*result, reference, "duplicates did not perturb the result");
}

#[test]
fn corrupt_checkpoints_surface_as_typed_errors_and_resubmission_recovers() {
    let request = quick_request(904);
    let reference = library_reference(&request, 2);
    let dir = fresh_dir("corrupt");

    // Serve one stride, then kill and corrupt the checkpoint on disk.
    let (job_id, checkpoint_path) = {
        let bus = Bus::new();
        let server =
            CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("create server");
        server.attach(&bus);
        let ticket = CampaignClient::new(&bus).submit(&request).expect("submit");
        server.step_once(&bus).expect("server step");
        (ticket.job_id, server.checkpoint_path(ticket.job_id))
    };
    let mut bytes = std::fs::read(&checkpoint_path).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&checkpoint_path, &bytes).expect("write corrupted checkpoint");

    // Plant additional damaged stores: a truncated copy and pure garbage.
    std::fs::write(dir.join("00000000000000aa.mvcp"), &bytes[..8]).expect("truncated");
    std::fs::write(dir.join("00000000000000bb.mvcp"), b"not a checkpoint at all").expect("garbage");

    // Restart: every damaged file becomes a typed recovery error; nothing
    // panics, nothing is silently resumed.
    let bus = Bus::new();
    let server =
        CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("restarted server");
    assert_eq!(server.job_count(), 0, "corrupt checkpoints must not be resumed");
    let errors = server.recovery_errors();
    assert_eq!(errors.len(), 3, "one typed error per damaged file: {errors:?}");
    assert!(
        errors.iter().all(|error| matches!(error, ServerError::CheckpointCorrupt { .. })),
        "all damage is detected at the trace layer: {errors:?}"
    );
    assert!(
        errors.iter().any(|error| error.to_string().contains(&format!("{job_id:016x}.mvcp"))),
        "the flipped-byte file is named: {errors:?}"
    );
    assert_eq!(server.counters().checkpoints_corrupt, 3);
    assert_eq!(server.telemetry_report().server.checkpoints_corrupt, 3);
    assert_eq!(
        server.telemetry_report().deterministic_view().server,
        ServerCounters::default(),
        "kill/resume history never leaks into deterministic views"
    );

    // The lost job is typed-unknown, and resubmitting the same request
    // starts it afresh on the same id, overwriting the damaged file.
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    assert!(matches!(client.status(job_id), Err(ServerError::UnknownJob { .. })));
    let ticket = client.submit(&request).expect("resubmit");
    assert_eq!(ticket.job_id, job_id, "content-derived ids survive the restart");
    assert!(!ticket.duplicate, "the job restarts from scratch");
    let result = drive_to_completion(&server, &bus, &client, job_id);
    assert_eq!(*result, reference, "recovery reproduces the reference bit-for-bit");
}

#[test]
fn dropped_and_invalid_submissions_fail_typed_never_panic() {
    let request = quick_request(905);
    let bus = Bus::new();
    let client = CampaignClient::new(&bus);

    // No server at all: the middleware error is folded into the taxonomy.
    assert!(matches!(client.submit(&request), Err(ServerError::Unavailable { .. })));

    let dir = fresh_dir("detach");
    let server = CampaignServer::new(CampaignExecutor::new(1), dir).expect("create server");
    server.attach(&bus);
    let ticket = client.submit(&request).expect("submit while attached");

    // A detached (shutting-down) server drops subsequent submissions and
    // polls with typed errors; reattaching restores service.
    CampaignServer::detach(&bus);
    assert!(matches!(client.submit(&request), Err(ServerError::Unavailable { .. })));
    assert!(matches!(client.status(ticket.job_id), Err(ServerError::Unavailable { .. })));
    server.attach(&bus);
    assert!(client.status(ticket.job_id).is_ok());

    // Malformed campaigns are rejected at admission, with reasons.
    let mut empty = request;
    empty.config.golden_runs = 0;
    empty.config.injections_per_stage = 0;
    assert!(matches!(client.submit(&empty), Err(ServerError::InvalidRequest { .. })));
    let mut bad_budget = request;
    bad_budget.config.mission_time_budget = f64::NAN;
    assert!(matches!(client.submit(&bad_budget), Err(ServerError::InvalidRequest { .. })));
    assert_eq!(server.job_count(), 1, "rejected requests are not admitted");
}

/// An unwritable checkpoint store must not lose work or panic: each stride
/// still executes and streams progress, the write failure crashes the node
/// with a diagnosable reason (surfaced through the executor's registry),
/// and the final result is still bit-identical to the library call.
#[test]
fn checkpoint_write_failures_crash_the_node_with_a_reason_but_preserve_results() {
    let request = quick_request(906);
    let reference = library_reference(&request, 2);
    let dir = fresh_dir("unwritable");
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("create server");
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let ticket = client.submit(&request).expect("submit");
    let progress = client.subscribe_progress(ticket.job_id);

    // Sabotage the job's checkpoint path: a non-empty directory squatting
    // on the file name makes the atomic rename fail on every stride.
    let path = server.checkpoint_path(ticket.job_id);
    std::fs::remove_file(&path).expect("remove admission checkpoint");
    std::fs::create_dir(&path).expect("squat a directory on the checkpoint path");
    std::fs::write(path.join("occupied"), b"x").expect("make it non-empty");

    let mut executor = Executor::new(bus.clone());
    executor.add_node(Box::new(server));
    let report = executor.run_for(Duration::from_secs(1)).expect("executor has the server");
    assert!(report.crashes >= 3, "every stride's failed write crashes the node");

    // Satellite tie-in: the registry carries the typed reason string.
    let info = executor.registry().info("campaign_server").expect("server registered");
    assert_eq!(info.crashes, info.restarts, "the server is restarted after every crash");
    let reason = info.last_error.clone().expect("crash reason recorded");
    assert!(reason.contains("checkpoint write failed"), "reason names the failure: {reason}");
    assert!(reason.contains(&format!("{:016x}", ticket.job_id)), "reason names the job");

    // The work itself was never lost: progress streamed for every stride
    // and the final campaign matches the library bit-for-bit.
    let updates = progress.drain();
    assert_eq!(updates.len(), 3, "one progress update per stride");
    assert!(updates.last().is_some_and(|update| update.complete));
    let result = client.result(ticket.job_id).expect("status").expect("complete");
    assert_eq!(*result, reference);
    assert_eq!(as_json(&result), as_json(&reference));
}
