//! `mavfi-platform` models the hardware side of the paper's evaluation: the
//! i9 and Cortex-A57 (TX2) companion computers, the AirSim UAV and DJI Spark
//! airframes, DMR/TMR hardware redundancy, and the cyber-physical visual
//! performance model linking compute latency/power/mass to flight time and
//! mission energy (Figs. 8 and 9).
//!
//! # Examples
//!
//! ```
//! use mavfi_platform::prelude::*;
//!
//! let model = VisualPerformanceModel::default();
//! let estimate = model.evaluate(
//!     &UavSpec::dji_spark(),
//!     &ComputePlatform::cortex_a57(),
//!     ProtectionScheme::Tmr,
//! );
//! assert!(estimate.flight_time_s > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod battery;
pub mod perf_model;
pub mod redundancy;
pub mod spec;
pub mod thermal;
pub mod uav;

pub use battery::{BatteryModel, MissionFeasibility};
pub use perf_model::{FlightEstimate, ScenarioParams, VisualPerformanceModel};
pub use redundancy::ProtectionScheme;
pub use spec::ComputePlatform;
pub use thermal::ThermalEnvelope;
pub use uav::UavSpec;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::battery::{BatteryModel, MissionFeasibility};
    pub use crate::perf_model::{FlightEstimate, ScenarioParams, VisualPerformanceModel};
    pub use crate::redundancy::ProtectionScheme;
    pub use crate::spec::ComputePlatform;
    pub use crate::thermal::ThermalEnvelope;
    pub use crate::uav::UavSpec;
}
