//! Airframe specifications for the two UAVs of the paper's Fig. 8 (the
//! AirSim default quadrotor and the DJI Spark), following the cyber-physical
//! parameterisation of the visual performance model.

use serde::{Deserialize, Serialize};

/// A UAV airframe description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UavSpec {
    /// Airframe name.
    pub name: String,
    /// Take-off mass without the companion computer (kg).
    pub base_mass_kg: f64,
    /// Mass of one companion-computer board (kg); redundancy multiplies it.
    pub compute_board_mass_kg: f64,
    /// Electrical hover power at base mass (W).
    pub hover_power_w: f64,
    /// Additional power per (m/s)² of forward flight (W·s²/m²).
    pub drag_power_coeff: f64,
    /// Maximum acceleration the airframe can command (m/s²).
    pub max_acceleration: f64,
    /// Hard ceiling on velocity from the airframe itself (m/s).
    pub max_velocity: f64,
    /// Battery capacity (J).
    pub battery_capacity_j: f64,
}

impl UavSpec {
    /// The AirSim default quadrotor used in the simulator experiments.
    pub fn airsim_uav() -> Self {
        Self {
            name: "AirSim UAV".to_owned(),
            base_mass_kg: 1.0,
            compute_board_mass_kg: 0.25,
            hover_power_w: 150.0,
            drag_power_coeff: 2.5,
            max_acceleration: 5.0,
            max_velocity: 12.0,
            battery_capacity_j: 120_000.0,
        }
    }

    /// The DJI Spark, the small consumer airframe of Fig. 8c.
    pub fn dji_spark() -> Self {
        Self {
            name: "DJI Spark".to_owned(),
            base_mass_kg: 0.3,
            compute_board_mass_kg: 0.09,
            hover_power_w: 55.0,
            drag_power_coeff: 1.2,
            max_acceleration: 4.0,
            max_velocity: 13.9,
            battery_capacity_j: 58_000.0,
        }
    }

    /// Both airframes of the paper's Fig. 8, in paper order.
    pub fn paper_uavs() -> Vec<Self> {
        vec![Self::airsim_uav(), Self::dji_spark()]
    }

    /// Hover power at a given total mass, scaling with mass^1.5 as for an
    /// ideal rotor in hover.
    pub fn hover_power_at_mass(&self, total_mass_kg: f64) -> f64 {
        assert!(total_mass_kg > 0.0, "mass must be positive");
        self.hover_power_w * (total_mass_kg / self.base_mass_kg).powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_is_smaller_than_airsim_uav() {
        let spark = UavSpec::dji_spark();
        let airsim = UavSpec::airsim_uav();
        assert!(spark.base_mass_kg < airsim.base_mass_kg);
        assert!(spark.hover_power_w < airsim.hover_power_w);
        assert_eq!(UavSpec::paper_uavs().len(), 2);
    }

    #[test]
    fn extra_mass_increases_hover_power_superlinearly() {
        let uav = UavSpec::airsim_uav();
        let base = uav.hover_power_at_mass(uav.base_mass_kg);
        let heavy = uav.hover_power_at_mass(uav.base_mass_kg * 1.5);
        assert!((base - uav.hover_power_w).abs() < 1e-9);
        assert!(heavy > base * 1.5, "hover power should grow faster than mass");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mass_panics() {
        let _ = UavSpec::dji_spark().hover_power_at_mass(0.0);
    }
}
