//! Hardware redundancy schemes (DMR / TMR) compared against MAVFI's
//! software anomaly detection in the paper's Fig. 8.

use serde::{Deserialize, Serialize};

/// Protection scheme applied to the companion computer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProtectionScheme {
    /// No protection at all (baseline).
    Unprotected,
    /// MAVFI's software anomaly detection and recovery (negligible compute
    /// overhead, no extra hardware).
    AnomalyDetection,
    /// Dual modular redundancy: two lock-stepped companion computers.
    Dmr,
    /// Triple modular redundancy: three companion computers with voting.
    Tmr,
}

impl ProtectionScheme {
    /// The schemes compared in Fig. 8, in plot order.
    pub const FIG8_SCHEMES: [Self; 3] = [Self::AnomalyDetection, Self::Dmr, Self::Tmr];

    /// Number of companion-computer boards carried.
    pub fn board_count(self) -> u32 {
        match self {
            Self::Unprotected | Self::AnomalyDetection => 1,
            Self::Dmr => 2,
            Self::Tmr => 3,
        }
    }

    /// Multiplier on compute power draw.
    pub fn compute_power_multiplier(self) -> f64 {
        f64::from(self.board_count())
    }

    /// Fractional compute-time overhead added on top of the baseline
    /// pipeline (the anomaly-detection figure is the worst case of the
    /// paper's Table II; the redundancy voting overhead is small but
    /// non-zero).
    pub fn compute_time_overhead(self) -> f64 {
        match self {
            Self::Unprotected => 0.0,
            Self::AnomalyDetection => 0.000_062,
            Self::Dmr => 0.02,
            Self::Tmr => 0.03,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Unprotected => "Unprotected",
            Self::AnomalyDetection => "Anomaly D&R",
            Self::Dmr => "DMR",
            Self::Tmr => "TMR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_counts_and_power_multipliers() {
        assert_eq!(ProtectionScheme::AnomalyDetection.board_count(), 1);
        assert_eq!(ProtectionScheme::Dmr.board_count(), 2);
        assert_eq!(ProtectionScheme::Tmr.board_count(), 3);
        assert_eq!(ProtectionScheme::Tmr.compute_power_multiplier(), 3.0);
    }

    #[test]
    fn anomaly_detection_overhead_is_negligible() {
        assert!(ProtectionScheme::AnomalyDetection.compute_time_overhead() < 1e-4);
        assert!(
            ProtectionScheme::Tmr.compute_time_overhead()
                > ProtectionScheme::AnomalyDetection.compute_time_overhead()
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> = [
            ProtectionScheme::Unprotected,
            ProtectionScheme::AnomalyDetection,
            ProtectionScheme::Dmr,
            ProtectionScheme::Tmr,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
