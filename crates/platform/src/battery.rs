//! Battery endurance model.
//!
//! The paper motivates software-level protection by the SWaP limits of micro
//! aerial vehicles: "UAVs have a strict limit on total flight time due to the
//! limited onboard battery capacity".  This module turns the
//! [`FlightEstimate`] of the visual
//! performance model into a battery feasibility verdict — whether a mission
//! flown under a given protection scheme still fits inside the airframe's
//! usable battery energy, and how much margin remains.

use serde::{Deserialize, Serialize};

use crate::perf_model::FlightEstimate;
use crate::uav::UavSpec;

/// A battery pack model.
///
/// Capacity is expressed in joules of stored electrical energy; the usable
/// fraction accounts for the depth-of-discharge limit that lithium-polymer
/// packs are flown with, and the discharge efficiency accounts for losses
/// between the pack terminals and the motors/ESCs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryModel {
    /// Total stored energy at full charge (J).
    pub capacity_j: f64,
    /// Fraction of the capacity that may be used before the pack must be
    /// considered empty (depth-of-discharge limit), in `(0, 1]`.
    pub usable_fraction: f64,
    /// Electrical efficiency between pack and rotors, in `(0, 1]`.
    pub discharge_efficiency: f64,
}

impl BatteryModel {
    /// Builds a battery model for an airframe using its rated capacity and
    /// conservative LiPo operating assumptions (80 % depth of discharge,
    /// 92 % discharge efficiency).
    pub fn for_uav(uav: &UavSpec) -> Self {
        Self {
            capacity_j: uav.battery_capacity_j,
            usable_fraction: 0.8,
            discharge_efficiency: 0.92,
        }
    }

    /// Energy actually available for flight (J).
    pub fn usable_energy_j(&self) -> f64 {
        self.capacity_j * self.usable_fraction * self.discharge_efficiency
    }

    /// Endurance in seconds at a constant electrical draw.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is not strictly positive.
    pub fn endurance_s(&self, power_w: f64) -> f64 {
        assert!(power_w > 0.0, "power draw must be positive");
        self.usable_energy_j() / power_w
    }

    /// Assesses whether a mission described by a [`FlightEstimate`] fits in
    /// the battery, and with what margin.
    pub fn assess(&self, estimate: &FlightEstimate) -> MissionFeasibility {
        let usable = self.usable_energy_j();
        let required = estimate.energy_j;
        let endurance_s = self.endurance_s(estimate.cruise_power_w.max(1e-9));
        MissionFeasibility {
            required_energy_j: required,
            usable_energy_j: usable,
            endurance_s,
            flight_time_s: estimate.flight_time_s,
            feasible: required <= usable,
        }
    }
}

/// Verdict of checking one mission against one battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionFeasibility {
    /// Energy the mission needs (J).
    pub required_energy_j: f64,
    /// Energy the battery can deliver (J).
    pub usable_energy_j: f64,
    /// Hover-to-empty endurance at the mission's cruise power (s).
    pub endurance_s: f64,
    /// Predicted mission flight time (s).
    pub flight_time_s: f64,
    /// Whether the mission completes before the battery is exhausted.
    pub feasible: bool,
}

impl MissionFeasibility {
    /// Remaining energy after the mission, as a fraction of the usable
    /// energy.  Negative when the mission is infeasible.
    pub fn energy_margin(&self) -> f64 {
        if self.usable_energy_j <= 0.0 {
            return -1.0;
        }
        (self.usable_energy_j - self.required_energy_j) / self.usable_energy_j
    }

    /// Remaining flight time after the mission at cruise power (s).
    /// Negative when the mission is infeasible.
    pub fn time_margin_s(&self) -> f64 {
        self.endurance_s - self.flight_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_model::VisualPerformanceModel;
    use crate::redundancy::ProtectionScheme;
    use crate::spec::ComputePlatform;

    #[test]
    fn usable_energy_is_below_rated_capacity() {
        let battery = BatteryModel::for_uav(&UavSpec::dji_spark());
        assert!(battery.usable_energy_j() < battery.capacity_j);
        assert!(battery.usable_energy_j() > 0.0);
    }

    #[test]
    fn endurance_scales_inversely_with_power() {
        let battery = BatteryModel::for_uav(&UavSpec::airsim_uav());
        let low = battery.endurance_s(100.0);
        let high = battery.endurance_s(200.0);
        assert!((low / high - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_power_endurance_panics() {
        let battery = BatteryModel::for_uav(&UavSpec::airsim_uav());
        let _ = battery.endurance_s(0.0);
    }

    #[test]
    fn margins_are_consistent_with_feasibility() {
        let model = VisualPerformanceModel::default();
        let uav = UavSpec::airsim_uav();
        let battery = BatteryModel::for_uav(&uav);
        let estimate =
            model.evaluate(&uav, &ComputePlatform::i9_9940x(), ProtectionScheme::AnomalyDetection);
        let verdict = battery.assess(&estimate);
        assert_eq!(verdict.feasible, verdict.energy_margin() >= 0.0);
        assert_eq!(verdict.feasible, verdict.time_margin_s() >= 0.0);
    }

    #[test]
    fn redundancy_erodes_the_battery_margin() {
        // The SWaP argument of the paper in battery terms: carrying redundant
        // companion computers costs mass and power, so the same mission
        // leaves less energy in the pack than the software scheme does.
        let model = VisualPerformanceModel::default();
        let platform = ComputePlatform::cortex_a57();
        for uav in UavSpec::paper_uavs() {
            let battery = BatteryModel::for_uav(&uav);
            let anomaly = battery.assess(&model.evaluate(
                &uav,
                &platform,
                ProtectionScheme::AnomalyDetection,
            ));
            let tmr = battery.assess(&model.evaluate(&uav, &platform, ProtectionScheme::Tmr));
            assert!(
                tmr.energy_margin() < anomaly.energy_margin(),
                "{}: TMR should leave less margin than anomaly detection",
                uav.name
            );
        }
    }
}
