//! The cyber-physical visual performance model (after Krishnan et al., "The
//! Sky Is Not the Limit") used by the paper's Fig. 8 to compare DMR/TMR
//! against software anomaly detection.
//!
//! The chain of effects: more compute (redundant boards) means more power
//! and more mass, which lowers the safe maximum velocity reachable within
//! the sensing horizon and raises hover power — so flight time and mission
//! energy both inflate.

use serde::{Deserialize, Serialize};

use crate::redundancy::ProtectionScheme;
use crate::spec::ComputePlatform;
use crate::uav::UavSpec;

/// Scenario-level parameters of the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Mission length (m).
    pub mission_distance_m: f64,
    /// Sensing range of the depth sensor (m).
    pub sensing_range_m: f64,
    /// Fraction of the theoretical maximum velocity actually sustained over
    /// a mission (accounts for turns, accelerations, re-planning pauses).
    pub velocity_utilisation: f64,
    /// Nominal end-to-end pipeline latency on the i9 baseline (ms).
    pub baseline_response_ms: f64,
    /// Maximum distance the vehicle may travel per pipeline response before
    /// it would outrun its own decision rate (m).  This throughput cap is
    /// what makes slow embedded platforms fly much slower end-to-end, as in
    /// the paper's Fig. 9.
    pub max_travel_per_response_m: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            mission_distance_m: 600.0,
            sensing_range_m: 20.0,
            velocity_utilisation: 0.7,
            baseline_response_ms: 400.0,
            max_travel_per_response_m: 4.0,
        }
    }
}

/// Output of the performance model for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightEstimate {
    /// Safe maximum velocity (m/s).
    pub max_velocity: f64,
    /// Expected mission flight time (s).
    pub flight_time_s: f64,
    /// Expected mission energy (J).
    pub energy_j: f64,
    /// Total electrical power during cruise (W).
    pub cruise_power_w: f64,
    /// Total take-off mass (kg).
    pub total_mass_kg: f64,
}

/// The visual performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VisualPerformanceModel {
    /// Scenario parameters shared by every evaluated configuration.
    pub scenario: ScenarioParams,
}

impl VisualPerformanceModel {
    /// Creates a model for a scenario.
    pub fn new(scenario: ScenarioParams) -> Self {
        Self { scenario }
    }

    /// Safe maximum velocity given the airframe and the end-to-end response
    /// time: the vehicle must be able to come to a stop within the part of
    /// the sensing range that remains after it has travelled blindly for one
    /// response time — `v·t_r + v²/(2a) <= d_sense`.
    pub fn max_safe_velocity(&self, uav: &UavSpec, response_time_s: f64) -> f64 {
        let a = uav.max_acceleration;
        let d = self.scenario.sensing_range_m;
        let t = response_time_s;
        // Solve v²/(2a) + v t = d for the positive root.
        let discriminant = (a * t) * (a * t) + 2.0 * a * d;
        let v = -a * t + discriminant.sqrt();
        // Throughput cap: the vehicle must not travel further than one
        // planning "step" per end-to-end response, or it outruns its own
        // decisions.
        let throughput_cap = self.scenario.max_travel_per_response_m / t.max(1e-3);
        v.min(uav.max_velocity).min(throughput_cap).max(0.1)
    }

    /// Evaluates one (airframe, platform, protection) configuration.
    pub fn evaluate(
        &self,
        uav: &UavSpec,
        platform: &ComputePlatform,
        scheme: ProtectionScheme,
    ) -> FlightEstimate {
        let response_time_s = platform.response_time_ms(self.scenario.baseline_response_ms)
            / 1000.0
            * (1.0 + scheme.compute_time_overhead());
        let max_velocity = self.max_safe_velocity(uav, response_time_s);
        let cruise_velocity = max_velocity * self.scenario.velocity_utilisation;
        let flight_time_s = self.scenario.mission_distance_m / cruise_velocity;

        let total_mass_kg =
            uav.base_mass_kg + uav.compute_board_mass_kg * f64::from(scheme.board_count() - 1);
        let hover_power = uav.hover_power_at_mass(total_mass_kg);
        let drag_power = uav.drag_power_coeff * cruise_velocity * cruise_velocity;
        let compute_power = platform.power_watts * scheme.compute_power_multiplier();
        let cruise_power_w = hover_power + drag_power + compute_power;
        let energy_j = cruise_power_w * flight_time_s;

        FlightEstimate { max_velocity, flight_time_s, energy_j, cruise_power_w, total_mass_kg }
    }

    /// Evaluates every Fig. 8 protection scheme for one airframe/platform
    /// pair, in plot order.
    pub fn fig8_series(
        &self,
        uav: &UavSpec,
        platform: &ComputePlatform,
    ) -> Vec<(ProtectionScheme, FlightEstimate)> {
        ProtectionScheme::FIG8_SCHEMES
            .into_iter()
            .map(|scheme| (scheme, self.evaluate(uav, platform, scheme)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VisualPerformanceModel {
        VisualPerformanceModel::default()
    }

    #[test]
    fn slower_response_lowers_safe_velocity() {
        let uav = UavSpec::airsim_uav();
        let fast = model().max_safe_velocity(&uav, 0.1);
        let slow = model().max_safe_velocity(&uav, 1.5);
        assert!(fast > slow);
        assert!(fast <= uav.max_velocity);
        assert!(slow > 0.0);
    }

    #[test]
    fn redundancy_increases_flight_time_and_energy() {
        let m = model();
        for uav in UavSpec::paper_uavs() {
            let platform = ComputePlatform::cortex_a57();
            let anomaly = m.evaluate(&uav, &platform, ProtectionScheme::AnomalyDetection);
            let dmr = m.evaluate(&uav, &platform, ProtectionScheme::Dmr);
            let tmr = m.evaluate(&uav, &platform, ProtectionScheme::Tmr);
            assert!(dmr.flight_time_s > anomaly.flight_time_s, "{}", uav.name);
            assert!(tmr.flight_time_s > dmr.flight_time_s, "{}", uav.name);
            assert!(tmr.energy_j > anomaly.energy_j, "{}", uav.name);
            assert!(tmr.total_mass_kg > anomaly.total_mass_kg);
        }
    }

    #[test]
    fn redundancy_penalty_is_larger_for_the_smaller_airframe() {
        // Fig. 8: the flight-time inflation of TMR vs anomaly detection is
        // much larger on the DJI Spark (1.91x) than on the AirSim UAV
        // (1.06x), because the redundant boards are a larger fraction of the
        // small airframe's mass and power budget.
        let m = model();
        let platform = ComputePlatform::cortex_a57();
        let ratio = |uav: &UavSpec| {
            let anomaly = m.evaluate(uav, &platform, ProtectionScheme::AnomalyDetection);
            let tmr = m.evaluate(uav, &platform, ProtectionScheme::Tmr);
            tmr.energy_j / anomaly.energy_j
        };
        let airsim_ratio = ratio(&UavSpec::airsim_uav());
        let spark_ratio = ratio(&UavSpec::dji_spark());
        assert!(
            spark_ratio > airsim_ratio,
            "Spark penalty ({spark_ratio:.2}x) should exceed AirSim penalty ({airsim_ratio:.2}x)"
        );
    }

    #[test]
    fn fig8_series_covers_all_schemes() {
        let series = model().fig8_series(&UavSpec::dji_spark(), &ComputePlatform::cortex_a57());
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, ProtectionScheme::AnomalyDetection);
    }

    #[test]
    fn embedded_platform_flies_longer_than_desktop_platform() {
        // Fig. 9: the TX2-class platform responds more slowly, so the same
        // mission takes substantially longer than with the i9.
        let m = model();
        let uav = UavSpec::airsim_uav();
        let i9 = m.evaluate(&uav, &ComputePlatform::i9_9940x(), ProtectionScheme::AnomalyDetection);
        let a57 =
            m.evaluate(&uav, &ComputePlatform::cortex_a57(), ProtectionScheme::AnomalyDetection);
        assert!(a57.flight_time_s > i9.flight_time_s * 1.5);
    }
}
