//! Compute-platform specifications (the paper's Intel i9 companion computer
//! and the NVIDIA TX2's ARM Cortex-A57 cluster).

use serde::{Deserialize, Serialize};

/// A companion-computer platform.
///
/// `latency_scale` expresses how much slower the platform executes the PPC
/// kernels relative to the i9 baseline; it is calibrated so that the
/// end-to-end flight times reproduce the ratio reported in the paper's
/// Fig. 9 table (115 s on the i9 versus 322 s on the Cortex-A57).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputePlatform {
    /// Platform name.
    pub name: String,
    /// Number of CPU cores used by the pipeline.
    pub core_count: u32,
    /// Core frequency in GHz.
    pub core_frequency_ghz: f64,
    /// Compute power draw in watts.
    pub power_watts: f64,
    /// Kernel latency multiplier relative to the i9 baseline.
    pub latency_scale: f64,
}

impl ComputePlatform {
    /// The paper's desktop-class companion computer (Intel i9-9940X).
    pub fn i9_9940x() -> Self {
        Self {
            name: "i9-9940X".to_owned(),
            core_count: 14,
            core_frequency_ghz: 3.3,
            power_watts: 165.0,
            latency_scale: 1.0,
        }
    }

    /// The embedded ARM Cortex-A57 cluster of the NVIDIA TX2.
    pub fn cortex_a57() -> Self {
        Self {
            name: "Cortex-A57".to_owned(),
            core_count: 4,
            core_frequency_ghz: 2.0,
            power_watts: 15.0,
            latency_scale: 2.8,
        }
    }

    /// Both platforms compared in the paper's Fig. 9, in paper order.
    pub fn paper_platforms() -> Vec<Self> {
        vec![Self::i9_9940x(), Self::cortex_a57()]
    }

    /// Latency of one kernel invocation on this platform, in milliseconds,
    /// given its nominal i9 latency.
    pub fn kernel_latency_ms(&self, nominal_i9_ms: f64) -> f64 {
        nominal_i9_ms * self.latency_scale
    }

    /// End-to-end latency of one pipeline response (perception + planning +
    /// control) on this platform, in milliseconds, given the nominal i9
    /// total.
    pub fn response_time_ms(&self, nominal_total_i9_ms: f64) -> f64 {
        self.kernel_latency_ms(nominal_total_i9_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_numbers_match_fig9_table() {
        let i9 = ComputePlatform::i9_9940x();
        assert_eq!(i9.core_count, 14);
        assert_eq!(i9.core_frequency_ghz, 3.3);
        assert_eq!(i9.power_watts, 165.0);
        let a57 = ComputePlatform::cortex_a57();
        assert_eq!(a57.core_count, 4);
        assert_eq!(a57.core_frequency_ghz, 2.0);
        assert!(a57.power_watts < 15.0 + 1e-9);
    }

    #[test]
    fn embedded_platform_is_slower_but_lower_power() {
        let i9 = ComputePlatform::i9_9940x();
        let a57 = ComputePlatform::cortex_a57();
        assert!(a57.kernel_latency_ms(100.0) > i9.kernel_latency_ms(100.0));
        assert!(a57.power_watts < i9.power_watts);
        assert_eq!(ComputePlatform::paper_platforms().len(), 2);
    }

    #[test]
    fn latency_scaling_is_linear() {
        let a57 = ComputePlatform::cortex_a57();
        assert_eq!(a57.kernel_latency_ms(10.0) * 2.0, a57.kernel_latency_ms(20.0));
    }
}
