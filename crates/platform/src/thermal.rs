//! Thermal design-power model.
//!
//! The paper's Fig. 8 argument is that "hardware redundancy brings higher
//! compute power with higher thermal design power and weight".  This module
//! models the thermal side of that argument: a companion-computer enclosure
//! can continuously dissipate only a limited power, and configurations that
//! exceed it must throttle — lengthening the pipeline's response time on top
//! of the mass and power penalties the visual performance model already
//! charges.

use serde::{Deserialize, Serialize};

use crate::redundancy::ProtectionScheme;
use crate::spec::ComputePlatform;

/// A thermal envelope for the companion-computer stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalEnvelope {
    /// Maximum power the enclosure can dissipate continuously (W).
    pub sustained_dissipation_w: f64,
    /// Exponent relating the over-budget power ratio to the latency
    /// multiplier under throttling.  With exponent `1.0`, running at twice
    /// the dissipation budget doubles kernel latency (DVFS halves the
    /// clock); larger exponents model super-linear slowdowns.
    pub throttle_exponent: f64,
}

impl ThermalEnvelope {
    /// An envelope representative of a passively cooled embedded carrier
    /// board (the TX2-class companion computer of the paper).
    pub fn embedded_carrier() -> Self {
        Self { sustained_dissipation_w: 20.0, throttle_exponent: 1.0 }
    }

    /// An envelope representative of an actively cooled desktop-class
    /// companion computer (the i9 host of the paper's testbed).
    pub fn actively_cooled() -> Self {
        Self { sustained_dissipation_w: 220.0, throttle_exponent: 1.0 }
    }

    /// Total compute power a configuration dissipates (W).
    pub fn config_power_w(platform: &ComputePlatform, scheme: ProtectionScheme) -> f64 {
        platform.power_watts * scheme.compute_power_multiplier()
    }

    /// Whether a configuration stays within the sustained budget.
    pub fn within_budget(&self, platform: &ComputePlatform, scheme: ProtectionScheme) -> bool {
        Self::config_power_w(platform, scheme) <= self.sustained_dissipation_w + 1e-9
    }

    /// Latency multiplier imposed by thermal throttling.
    ///
    /// Returns `1.0` when the configuration fits the budget; otherwise the
    /// multiplier grows with the over-budget ratio raised to
    /// [`throttle_exponent`](Self::throttle_exponent).
    pub fn throttle_factor(&self, platform: &ComputePlatform, scheme: ProtectionScheme) -> f64 {
        let power = Self::config_power_w(platform, scheme);
        if power <= self.sustained_dissipation_w {
            1.0
        } else {
            (power / self.sustained_dissipation_w).powf(self.throttle_exponent)
        }
    }

    /// Effective end-to-end response time (ms) of the pipeline under this
    /// envelope, given the nominal i9 response time.
    pub fn effective_response_ms(
        &self,
        platform: &ComputePlatform,
        scheme: ProtectionScheme,
        nominal_i9_ms: f64,
    ) -> f64 {
        platform.response_time_ms(nominal_i9_ms)
            * (1.0 + scheme.compute_time_overhead())
            * self.throttle_factor(platform, scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_board_embedded_stack_fits_its_envelope() {
        let envelope = ThermalEnvelope::embedded_carrier();
        let a57 = ComputePlatform::cortex_a57();
        assert!(envelope.within_budget(&a57, ProtectionScheme::AnomalyDetection));
        assert_eq!(envelope.throttle_factor(&a57, ProtectionScheme::AnomalyDetection), 1.0);
    }

    #[test]
    fn redundant_boards_blow_the_embedded_envelope_and_throttle() {
        let envelope = ThermalEnvelope::embedded_carrier();
        let a57 = ComputePlatform::cortex_a57();
        assert!(!envelope.within_budget(&a57, ProtectionScheme::Tmr));
        let dmr = envelope.throttle_factor(&a57, ProtectionScheme::Dmr);
        let tmr = envelope.throttle_factor(&a57, ProtectionScheme::Tmr);
        assert!(dmr > 1.0);
        assert!(tmr > dmr, "TMR dissipates more, so it must throttle harder");
    }

    #[test]
    fn active_cooling_absorbs_the_desktop_platform() {
        let envelope = ThermalEnvelope::actively_cooled();
        let i9 = ComputePlatform::i9_9940x();
        assert!(envelope.within_budget(&i9, ProtectionScheme::AnomalyDetection));
        assert!(!envelope.within_budget(&i9, ProtectionScheme::Tmr));
    }

    #[test]
    fn throttling_compounds_with_the_platform_latency_scale() {
        let envelope = ThermalEnvelope::embedded_carrier();
        let a57 = ComputePlatform::cortex_a57();
        let unthrottled =
            envelope.effective_response_ms(&a57, ProtectionScheme::AnomalyDetection, 400.0);
        let throttled = envelope.effective_response_ms(&a57, ProtectionScheme::Tmr, 400.0);
        assert!(unthrottled >= a57.response_time_ms(400.0));
        assert!(throttled > unthrottled * 2.0, "three throttled boards should be far slower");
    }

    #[test]
    fn throttle_exponent_controls_the_penalty() {
        let a57 = ComputePlatform::cortex_a57();
        let linear = ThermalEnvelope { sustained_dissipation_w: 20.0, throttle_exponent: 1.0 };
        let steep = ThermalEnvelope { sustained_dissipation_w: 20.0, throttle_exponent: 2.0 };
        assert!(
            steep.throttle_factor(&a57, ProtectionScheme::Tmr)
                > linear.throttle_factor(&a57, ProtectionScheme::Tmr)
        );
    }
}
