//! Property-based tests for the platform models: the visual performance
//! model, the redundancy schemes, and the battery / thermal extensions.

use mavfi_platform::prelude::*;
use proptest::prelude::*;

fn arbitrary_uav() -> impl Strategy<Value = UavSpec> {
    (0.2f64..3.0, 0.05f64..0.5, 30.0f64..300.0, 0.5f64..5.0, 2.0f64..8.0, 5.0f64..20.0).prop_map(
        |(mass, board, hover, drag, accel, vmax)| UavSpec {
            name: "prop UAV".to_owned(),
            base_mass_kg: mass,
            compute_board_mass_kg: board,
            hover_power_w: hover,
            drag_power_coeff: drag,
            max_acceleration: accel,
            max_velocity: vmax,
            battery_capacity_j: 60_000.0,
        },
    )
}

fn arbitrary_platform() -> impl Strategy<Value = ComputePlatform> {
    (1u32..32, 0.5f64..4.0, 5.0f64..200.0, 1.0f64..6.0).prop_map(|(cores, freq, power, scale)| {
        ComputePlatform {
            name: "prop platform".to_owned(),
            core_count: cores,
            core_frequency_ghz: freq,
            power_watts: power,
            latency_scale: scale,
        }
    })
}

proptest! {
    /// A longer end-to-end response time can never raise the safe velocity,
    /// and the velocity always respects the airframe ceiling.
    #[test]
    fn safe_velocity_is_monotone_in_response_time(
        uav in arbitrary_uav(),
        t_fast in 0.05f64..1.0,
        extra in 0.0f64..3.0,
    ) {
        let model = VisualPerformanceModel::default();
        let fast = model.max_safe_velocity(&uav, t_fast);
        let slow = model.max_safe_velocity(&uav, t_fast + extra);
        prop_assert!(slow <= fast + 1e-9);
        prop_assert!(fast <= uav.max_velocity + 1e-9);
        prop_assert!(slow > 0.0);
    }

    /// Carrying more redundant boards never shortens the mission and never
    /// saves energy, for any airframe/platform combination.
    #[test]
    fn redundancy_never_improves_flight_time_or_energy(
        uav in arbitrary_uav(),
        platform in arbitrary_platform(),
    ) {
        let model = VisualPerformanceModel::default();
        let anomaly = model.evaluate(&uav, &platform, ProtectionScheme::AnomalyDetection);
        let dmr = model.evaluate(&uav, &platform, ProtectionScheme::Dmr);
        let tmr = model.evaluate(&uav, &platform, ProtectionScheme::Tmr);
        prop_assert!(dmr.flight_time_s + 1e-9 >= anomaly.flight_time_s);
        prop_assert!(tmr.flight_time_s + 1e-9 >= dmr.flight_time_s);
        prop_assert!(dmr.energy_j + 1e-9 >= anomaly.energy_j);
        prop_assert!(tmr.energy_j + 1e-9 >= dmr.energy_j);
        prop_assert!(tmr.total_mass_kg > anomaly.total_mass_kg);
    }

    /// All flight estimates are finite and positive regardless of the
    /// configuration.
    #[test]
    fn flight_estimates_are_finite_and_positive(
        uav in arbitrary_uav(),
        platform in arbitrary_platform(),
    ) {
        let model = VisualPerformanceModel::default();
        for scheme in ProtectionScheme::FIG8_SCHEMES {
            let est = model.evaluate(&uav, &platform, scheme);
            prop_assert!(est.flight_time_s.is_finite() && est.flight_time_s > 0.0);
            prop_assert!(est.energy_j.is_finite() && est.energy_j > 0.0);
            prop_assert!(est.cruise_power_w.is_finite() && est.cruise_power_w > 0.0);
            prop_assert!(est.max_velocity.is_finite() && est.max_velocity > 0.0);
        }
    }

    /// Battery endurance decreases when the power draw increases, and the
    /// feasibility verdict always agrees with the sign of both margins.
    #[test]
    fn battery_endurance_and_margins_are_consistent(
        uav in arbitrary_uav(),
        platform in arbitrary_platform(),
        p_low in 20.0f64..200.0,
        extra in 1.0f64..300.0,
    ) {
        let battery = BatteryModel::for_uav(&uav);
        prop_assert!(battery.endurance_s(p_low) > battery.endurance_s(p_low + extra));

        let model = VisualPerformanceModel::default();
        let est = model.evaluate(&uav, &platform, ProtectionScheme::Tmr);
        let verdict = battery.assess(&est);
        prop_assert_eq!(verdict.feasible, verdict.energy_margin() >= 0.0);
        prop_assert_eq!(verdict.feasible, verdict.time_margin_s() >= 0.0);
    }

    /// The thermal throttle factor is never below one, never throttles a
    /// configuration inside the budget, and never decreases when boards are
    /// added.
    #[test]
    fn thermal_throttle_is_monotone_in_board_count(
        platform in arbitrary_platform(),
        budget in 5.0f64..300.0,
    ) {
        let envelope = ThermalEnvelope { sustained_dissipation_w: budget, throttle_exponent: 1.0 };
        let single = envelope.throttle_factor(&platform, ProtectionScheme::AnomalyDetection);
        let dmr = envelope.throttle_factor(&platform, ProtectionScheme::Dmr);
        let tmr = envelope.throttle_factor(&platform, ProtectionScheme::Tmr);
        prop_assert!(single >= 1.0);
        prop_assert!(dmr >= single);
        prop_assert!(tmr >= dmr);
        if envelope.within_budget(&platform, ProtectionScheme::Tmr) {
            prop_assert_eq!(tmr, 1.0);
        }
    }
}
