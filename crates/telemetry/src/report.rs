//! Serialisable telemetry reports: one per mission, merged deterministically
//! into a campaign-wide rollup.
//!
//! The rollup splits **deterministic** data (counters, invocation counts,
//! detection/recovery latency in ticks, the timeline digest) from
//! **wall-clock** data (latency histograms, worker utilisation).  The
//! deterministic half is bit-identical across runs and worker counts; the
//! wall-clock half is machine- and scheduling-dependent by nature and must
//! never feed back into results.

use mavfi_ppc::states::Stage;
use mavfi_ppc::KernelId;
use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::sink::TelemetryCounters;
use crate::timeline::TimelineEvent;

/// The telemetry of one finished mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionReport {
    /// Deterministic activity counters.
    pub counters: TelemetryCounters,
    /// Kernel invocation counts, indexed by [`KernelId::index`].
    pub kernel_invocations: [u64; KernelId::COUNT],
    /// Stage of the injected fault's corrupted state, when attributable.
    pub fault_stage: Option<Stage>,
    /// Ticks from fault injection to the first detector alarm.
    pub detection_latency_ticks: Option<u64>,
    /// Ticks from fault injection to the first recovery action.
    pub recovery_latency_ticks: Option<u64>,
    /// The event timeline (earliest events first; see `EventTimeline`).
    pub events: Vec<TimelineEvent>,
    /// Events beyond the timeline capacity, counted instead of stored.
    pub events_dropped: u64,
    /// Wall-clock kernel latency histograms (ns), indexed by
    /// [`KernelId::index`].  Empty unless pipeline timing was enabled.
    pub kernel_latency_ns: [LatencyHistogram; KernelId::COUNT],
}

/// Sample/total/max accumulator for latencies measured in ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTicks {
    /// Number of missions contributing a sample.
    pub samples: u64,
    /// Sum of the samples (ticks).
    pub total_ticks: u64,
    /// Largest sample (ticks).
    pub max_ticks: u64,
}

impl LatencyTicks {
    /// Records one latency sample.
    pub fn record(&mut self, ticks: u64) {
        self.samples += 1;
        self.total_ticks += ticks;
        self.max_ticks = self.max_ticks.max(ticks);
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.samples += other.samples;
        self.total_ticks += other.total_ticks;
        self.max_ticks = self.max_ticks.max(other.max_ticks);
    }

    /// Mean latency in ticks (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ticks as f64 / self.samples as f64
        }
    }
}

/// Wall-clock (nondeterministic) half of a campaign rollup: histograms and
/// worker utilisation vary with machine speed and scheduling, which is why
/// they live apart from the deterministic fields — determinism tests
/// compare everything *except* this.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallClockRollup {
    /// Merged kernel latency histograms (ns), indexed by
    /// [`KernelId::index`].
    pub kernel_latency_ns: [LatencyHistogram; KernelId::COUNT],
    /// Jobs executed per worker (empty for serial runs; see
    /// `PoolStats`).
    pub worker_jobs: Vec<u64>,
    /// Order-restoration stalls observed while folding job results.
    pub fold_stalls: u64,
}

/// Per-job campaign-server activity counters: submissions, executed
/// chunks, checkpoint traffic and resume events.
///
/// Like [`WallClockRollup`], these describe *how* results were produced —
/// how often the serving process was killed, resumed or fed duplicates —
/// not the results themselves, so [`TelemetryReport::deterministic_view`]
/// strips them: an interrupted serve and an uninterrupted one must agree
/// on everything the view keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCounters {
    /// Campaign submissions admitted as new jobs.
    pub jobs_submitted: u64,
    /// Submissions recognised as duplicates of an existing job.
    pub duplicate_submissions: u64,
    /// Jobs resumed from an on-disk checkpoint after a restart.
    pub jobs_resumed: u64,
    /// Jobs whose final campaign was assembled.
    pub jobs_completed: u64,
    /// Campaign chunks (lockstep batches) executed.
    pub chunks_executed: u64,
    /// Checkpoints written successfully.
    pub checkpoints_written: u64,
    /// Checkpoints loaded and verified at startup.
    pub checkpoints_loaded: u64,
    /// Checkpoint files that failed verification at startup.
    pub checkpoints_corrupt: u64,
    /// Checkpoint writes that failed at the I/O layer.
    pub checkpoint_failures: u64,
    /// Incremental progress aggregates published.
    pub progress_updates: u64,
}

impl ServerCounters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.jobs_submitted += other.jobs_submitted;
        self.duplicate_submissions += other.duplicate_submissions;
        self.jobs_resumed += other.jobs_resumed;
        self.jobs_completed += other.jobs_completed;
        self.chunks_executed += other.chunks_executed;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoints_loaded += other.checkpoints_loaded;
        self.checkpoints_corrupt += other.checkpoints_corrupt;
        self.checkpoint_failures += other.checkpoint_failures;
        self.progress_updates += other.progress_updates;
    }
}

/// The campaign-wide telemetry rollup: every mission's report merged in
/// deterministic (run-index) order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Missions merged into this rollup.
    pub missions: u64,
    /// Summed deterministic counters.
    pub counters: TelemetryCounters,
    /// Summed kernel invocation counts, indexed by [`KernelId::index`].
    pub kernel_invocations: [u64; KernelId::COUNT],
    /// Fault → first-alarm latency per fault stage, in ticks, indexed by
    /// [`Stage::index`].
    pub detection_latency: [LatencyTicks; Stage::COUNT],
    /// Fault → first-recovery latency per fault stage, in ticks, indexed by
    /// [`Stage::index`].
    pub recovery_latency: [LatencyTicks; Stage::COUNT],
    /// Total timeline events across missions (recorded plus dropped).
    pub timeline_events: u64,
    /// Digest of every recorded timeline event, folded in merge order:
    /// two rollups with equal digests saw identical event streams.
    pub timeline_digest: u64,
    /// The machine-dependent half (histograms, worker utilisation).
    pub wall_clock: WallClockRollup,
    /// Campaign-server activity (submissions, checkpoints, resumes);
    /// all-zero for library runs that never touch the server.
    pub server: ServerCounters,
}

impl TelemetryReport {
    /// An empty rollup.
    pub fn new() -> Self {
        Self { timeline_digest: TimelineEvent::DIGEST_SEED, ..Self::default() }
    }

    /// Merges one mission's report into the rollup.  Call in a fixed
    /// mission order (the campaign's run-index order) — counters and
    /// histograms are order-insensitive, but the timeline digest is
    /// deliberately order-sensitive so rollups certify the full event
    /// stream.
    pub fn merge_mission(&mut self, report: &MissionReport) {
        self.missions += 1;
        self.counters.merge(&report.counters);
        for kernel in KernelId::ALL {
            self.kernel_invocations[kernel.index()] += report.kernel_invocations[kernel.index()];
            self.wall_clock.kernel_latency_ns[kernel.index()]
                .merge(&report.kernel_latency_ns[kernel.index()]);
        }
        if let Some(stage) = report.fault_stage {
            if let Some(ticks) = report.detection_latency_ticks {
                self.detection_latency[stage.index()].record(ticks);
            }
            if let Some(ticks) = report.recovery_latency_ticks {
                self.recovery_latency[stage.index()].record(ticks);
            }
        }
        self.timeline_events += report.events.len() as u64 + report.events_dropped;
        for event in &report.events {
            self.timeline_digest = event.fold_digest(self.timeline_digest);
        }
    }

    /// Merges another rollup produced by a *later* contiguous range of
    /// missions (campaign folds merge job rollups in run order).  The
    /// digest chains `other`'s events after `self`'s, which matches
    /// re-merging the missions one by one only when `other` was itself
    /// seeded with [`TimelineEvent::DIGEST_SEED`] — it is combined here as
    /// an order-sensitive continuation hash.
    pub fn merge(&mut self, other: &Self) {
        self.missions += other.missions;
        self.counters.merge(&other.counters);
        for kernel in KernelId::ALL {
            self.kernel_invocations[kernel.index()] += other.kernel_invocations[kernel.index()];
            self.wall_clock.kernel_latency_ns[kernel.index()]
                .merge(&other.wall_clock.kernel_latency_ns[kernel.index()]);
        }
        for index in 0..Stage::COUNT {
            self.detection_latency[index].merge(&other.detection_latency[index]);
            self.recovery_latency[index].merge(&other.recovery_latency[index]);
        }
        self.timeline_events += other.timeline_events;
        // Chain the digests deterministically (order-sensitive, like the
        // event fold itself).
        self.timeline_digest ^= other
            .timeline_digest
            .wrapping_mul(0x0000_0100_0000_01b3)
            .rotate_left((self.missions % 63) as u32 + 1);
        self.wall_clock.fold_stalls += other.wall_clock.fold_stalls;
        self.server.merge(&other.server);
    }

    /// The rollup with everything machine-dependent stripped: the part that
    /// must be bit-identical across runs and worker counts (and, for served
    /// campaigns, across kill/resume histories).  Determinism tests compare
    /// this.
    pub fn deterministic_view(&self) -> Self {
        Self {
            wall_clock: WallClockRollup::default(),
            server: ServerCounters::default(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TelemetryEvent;

    fn mission(fault_stage: Option<Stage>, detection: Option<u64>) -> MissionReport {
        let mut counters = TelemetryCounters { ticks: 100, replans: 2, ..Default::default() };
        counters.ray_hits = 40;
        counters.ray_misses = 60;
        let mut kernel_invocations = [0u64; KernelId::COUNT];
        kernel_invocations[KernelId::OctoMap.index()] = 100;
        MissionReport {
            counters,
            kernel_invocations,
            fault_stage,
            detection_latency_ticks: detection,
            recovery_latency_ticks: detection.map(|t| t + 1),
            events: vec![TimelineEvent {
                tick: 41,
                sim_time_s: 4.1,
                event: TelemetryEvent::Replan,
            }],
            events_dropped: 0,
            kernel_latency_ns: [LatencyHistogram::default(); KernelId::COUNT],
        }
    }

    #[test]
    fn merge_mission_accumulates_deterministic_fields() {
        let mut rollup = TelemetryReport::new();
        rollup.merge_mission(&mission(Some(Stage::Planning), Some(3)));
        rollup.merge_mission(&mission(Some(Stage::Planning), Some(5)));
        rollup.merge_mission(&mission(None, None));
        assert_eq!(rollup.missions, 3);
        assert_eq!(rollup.counters.ticks, 300);
        assert_eq!(rollup.kernel_invocations[KernelId::OctoMap.index()], 300);
        let planning = rollup.detection_latency[Stage::Planning.index()];
        assert_eq!(planning.samples, 2);
        assert_eq!(planning.total_ticks, 8);
        assert_eq!(planning.max_ticks, 5);
        assert_eq!(planning.mean(), 4.0);
        assert_eq!(rollup.timeline_events, 3);
    }

    #[test]
    fn identical_merge_orders_yield_identical_rollups() {
        let missions = [mission(Some(Stage::Perception), Some(1)), mission(None, None)];
        let mut a = TelemetryReport::new();
        let mut b = TelemetryReport::new();
        for m in &missions {
            a.merge_mission(m);
            b.merge_mission(m);
        }
        assert_eq!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn deterministic_view_strips_wall_clock_data() {
        let mut rollup = TelemetryReport::new();
        let mut report = mission(None, None);
        report.kernel_latency_ns[0].record(1_000);
        rollup.merge_mission(&report);
        rollup.wall_clock.worker_jobs = vec![3, 4];
        rollup.server.jobs_submitted = 2;
        rollup.server.checkpoints_written = 5;
        let view = rollup.deterministic_view();
        assert_eq!(view.wall_clock, WallClockRollup::default());
        assert_eq!(view.server, ServerCounters::default());
        assert_eq!(view.counters, rollup.counters);
    }

    #[test]
    fn server_counters_merge_fieldwise() {
        let mut a = TelemetryReport::new();
        a.server.jobs_submitted = 1;
        a.server.chunks_executed = 4;
        let mut b = TelemetryReport::new();
        b.server.jobs_submitted = 2;
        b.server.jobs_resumed = 1;
        b.server.checkpoints_loaded = 3;
        a.merge(&b);
        assert_eq!(a.server.jobs_submitted, 3);
        assert_eq!(a.server.chunks_executed, 4);
        assert_eq!(a.server.jobs_resumed, 1);
        assert_eq!(a.server.checkpoints_loaded, 3);
    }

    #[test]
    fn rollup_round_trips_through_serde() {
        let mut rollup = TelemetryReport::new();
        rollup.merge_mission(&mission(Some(Stage::Control), Some(2)));
        let json = serde_json::to_string(&rollup).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rollup);
    }
}
