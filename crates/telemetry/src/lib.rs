//! `mavfi-telemetry` is the observability layer of the MAVFI reproduction:
//! always compiled, runtime-toggleable, **allocation-free after setup** and
//! **provably inert w.r.t. results**.
//!
//! Three pieces (see `docs/OBSERVABILITY.md` for the design rules):
//!
//! * [`LatencyHistogram`] — fixed-bucket log2 wall-clock histograms
//!   (p50/p90/p99/max) per [`KernelId`](mavfi_ppc::KernelId), recorded via
//!   array-indexed buckets so the counting-allocator tests pass with
//!   telemetry on.  Per-planner latency falls out of per-kernel bucketing:
//!   each planner is its own kernel.
//! * [`EventTimeline`] — the deterministic fault → detect → recover record,
//!   stamped with tick index + sim time (never wall clock), bit-identical
//!   across runs and worker counts; detection/recovery latency is reported
//!   in ticks exactly as the paper frames it.
//! * [`MissionTelemetry`] / [`TelemetryReport`] — the per-mission sink the
//!   runner feeds each tick, and the serde-serialised campaign rollup
//!   `run_campaign` merges in deterministic run order (fixed order,
//!   histogram bucket-wise addition).
//!
//! The one rule everything here obeys: **wall clock never feeds results**.
//! Wall-clock data exists only inside histograms and the rollup's
//! `wall_clock` section; all control flow, all counters and the whole
//! timeline derive from deterministic simulation state.

pub mod histogram;
pub mod report;
pub mod sink;
pub mod timeline;

pub use histogram::LatencyHistogram;
pub use report::{LatencyTicks, MissionReport, ServerCounters, TelemetryReport, WallClockRollup};
pub use sink::{MissionTelemetry, TelemetryCounters};
pub use timeline::{EventTimeline, TelemetryEvent, TimelineEvent};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::histogram::LatencyHistogram;
    pub use crate::report::{
        LatencyTicks, MissionReport, ServerCounters, TelemetryReport, WallClockRollup,
    };
    pub use crate::sink::{MissionTelemetry, TelemetryCounters};
    pub use crate::timeline::{EventTimeline, TelemetryEvent, TimelineEvent};
}
