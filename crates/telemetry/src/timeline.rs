//! The deterministic mission event timeline.
//!
//! Events are stamped with the **tick index and simulation time** — never
//! wall-clock time — so a timeline is a pure function of the mission's
//! deterministic execution: bit-identical across runs, worker counts and
//! telemetry-capable machines of any speed.  Detection and recovery latency
//! is therefore reported *in ticks*, exactly as the paper frames it.

use mavfi_ppc::states::Stage;
use serde::{Deserialize, Serialize};

/// What happened at a timeline point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// The fault injector corrupted a state (`stage` is the producing
    /// stage when the corrupted scalar is one of the 13 monitored fields).
    FaultInjected {
        /// Stage of the corrupted state, when attributable.
        stage: Option<Stage>,
    },
    /// The anomaly detector raised an alarm against `stage`'s states.
    DetectorAlarm {
        /// Stage of the offending state.
        stage: Stage,
    },
    /// The pipeline recomputed `stage` at a tap's request (recovery).
    Recovery {
        /// The recomputed stage.
        stage: Stage,
    },
    /// The autoencoder scheme abandoned a corrupted state in place.
    Abandonment,
    /// The planning stage regenerated the trajectory.
    Replan,
    /// Collision-check cache activity during a recovery/replan tick (the
    /// per-tick hit/miss delta; steady-state activity lives in the
    /// counters instead of flooding the timeline).
    CacheActivity {
        /// Velocity-ray cache hits this tick.
        ray_hits: u32,
        /// Velocity-ray recomputations this tick.
        ray_misses: u32,
        /// Way-point-scan cache hits this tick.
        scan_hits: u32,
        /// Way-point-scan recomputations this tick.
        scan_misses: u32,
    },
}

impl TelemetryEvent {
    fn discriminant(self) -> u64 {
        match self {
            Self::FaultInjected { .. } => 1,
            Self::DetectorAlarm { .. } => 2,
            Self::Recovery { .. } => 3,
            Self::Abandonment => 4,
            Self::Replan => 5,
            Self::CacheActivity { .. } => 6,
        }
    }

    fn payload(self) -> u64 {
        match self {
            Self::FaultInjected { stage } => stage.map_or(u64::MAX, |s| s.index() as u64),
            Self::DetectorAlarm { stage } | Self::Recovery { stage } => stage.index() as u64,
            Self::Abandonment | Self::Replan => 0,
            Self::CacheActivity { ray_hits, ray_misses, scan_hits, scan_misses } => {
                (u64::from(ray_hits) << 48)
                    | (u64::from(ray_misses) << 32)
                    | (u64::from(scan_hits) << 16)
                    | u64::from(scan_misses)
            }
        }
    }
}

/// One timeline entry: an event stamped with deterministic time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Pipeline tick index at which the event was observed (0-based).
    pub tick: u64,
    /// Simulation time at the event (s) — sim time, never wall clock.
    pub sim_time_s: f64,
    /// The event itself.
    pub event: TelemetryEvent,
}

impl TimelineEvent {
    /// Folds this event into an FNV-1a style digest.  Campaign rollups
    /// digest events in deterministic merge order instead of storing every
    /// mission's full timeline.
    pub fn fold_digest(&self, digest: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = digest;
        for word in
            [self.tick, self.sim_time_s.to_bits(), self.event.discriminant(), self.event.payload()]
        {
            hash ^= word;
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// The FNV-1a offset basis: the seed for [`TimelineEvent::fold_digest`]
    /// chains.
    pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
}

/// A bounded, preallocated event timeline.
///
/// `push` never allocates: the backing `Vec` is reserved once at
/// construction.  When the capacity is exhausted the timeline keeps the
/// events recorded *first* and counts the rest in [`EventTimeline::dropped`]
/// — the fault → detect → recover prefix of a mission is the part the
/// paper's latency analysis needs, and "keep earliest" is deterministic by
/// construction (eviction depends only on event order, not timing).
#[derive(Debug, Clone, PartialEq)]
pub struct EventTimeline {
    events: Vec<TimelineEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventTimeline {
    /// Default capacity: generous for a mission (events are emitted only on
    /// fault/alarm/recovery/replan ticks) at ~160 KiB of preallocation.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a timeline with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a timeline retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Appends an event; allocation-free.  Events beyond the capacity are
    /// counted in [`EventTimeline::dropped`] instead of stored.
    pub fn push(&mut self, event: TimelineEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of events that did not fit in the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events observed (recorded plus dropped).
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Digest of the recorded events in order, seeded with
    /// [`TimelineEvent::DIGEST_SEED`].
    pub fn digest(&self) -> u64 {
        self.events.iter().fold(TimelineEvent::DIGEST_SEED, |acc, event| event.fold_digest(acc))
    }
}

impl Default for EventTimeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tick: u64) -> TimelineEvent {
        TimelineEvent { tick, sim_time_s: tick as f64 * 0.1, event: TelemetryEvent::Replan }
    }

    #[test]
    fn capacity_keeps_earliest_events_and_counts_the_rest() {
        let mut timeline = EventTimeline::with_capacity(3);
        for tick in 0..5 {
            timeline.push(event(tick));
        }
        assert_eq!(timeline.events().len(), 3);
        assert_eq!(timeline.events()[2].tick, 2);
        assert_eq!(timeline.dropped(), 2);
        assert_eq!(timeline.total(), 5);
    }

    #[test]
    fn digest_is_order_sensitive_and_reproducible() {
        let mut a = EventTimeline::with_capacity(8);
        let mut b = EventTimeline::with_capacity(8);
        let mut c = EventTimeline::with_capacity(8);
        for tick in 0..4 {
            a.push(event(tick));
            b.push(event(tick));
            c.push(event(3 - tick));
        }
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let entry = TimelineEvent {
            tick: 41,
            sim_time_s: 4.1,
            event: TelemetryEvent::DetectorAlarm { stage: Stage::Planning },
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: TimelineEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }
}
