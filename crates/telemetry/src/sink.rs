//! The per-mission telemetry sink: owned by the runner, fed once per tick.
//!
//! The sink is **allocation-free after construction** (histograms and
//! counters are inline arrays, the timeline is preallocated) and **inert
//! w.r.t. results**: it only *reads* pipeline/detector/injector state, so a
//! mission produces bit-identical outcomes with the sink attached or not —
//! `tests/telemetry_determinism.rs` asserts exactly that.

use mavfi_detect::DetectorStats;
use mavfi_fault::FaultRecord;
use mavfi_ppc::perception::CollisionCacheStats;
use mavfi_ppc::pipeline::{PipelineStats, PpcPipeline, PpcTick};
use mavfi_ppc::states::Stage;
use mavfi_ppc::KernelId;
use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::report::MissionReport;
use crate::timeline::{EventTimeline, TelemetryEvent, TimelineEvent};

/// Deterministic activity counters of one mission (or, merged, of a whole
/// campaign).  Every field is a pure function of the mission's execution —
/// no wall clock anywhere — so counters are bit-identical across runs and
/// worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryCounters {
    /// Pipeline ticks observed.
    pub ticks: u64,
    /// Replans performed.
    pub replans: u64,
    /// Detector alarms, indexed by [`Stage::index`].
    pub alarms: [u64; Stage::COUNT],
    /// Stage recomputations actually performed, indexed by
    /// [`Stage::index`].
    pub recomputations: [u64; Stage::COUNT],
    /// Corrupted states abandoned in place by the autoencoder scheme.
    pub abandonments: u64,
    /// Collision-check velocity-ray cache hits.
    pub ray_hits: u64,
    /// Collision-check velocity-ray cache misses.
    pub ray_misses: u64,
    /// Collision-check way-point-scan cache hits.
    pub scan_hits: u64,
    /// Collision-check way-point-scan cache misses.
    pub scan_misses: u64,
}

impl TelemetryCounters {
    /// Adds `other` into `self`, field-wise.  Associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        self.ticks += other.ticks;
        self.replans += other.replans;
        for stage in Stage::ALL {
            self.alarms[stage.index()] += other.alarms[stage.index()];
            self.recomputations[stage.index()] += other.recomputations[stage.index()];
        }
        self.abandonments += other.abandonments;
        self.ray_hits += other.ray_hits;
        self.ray_misses += other.ray_misses;
        self.scan_hits += other.scan_hits;
        self.scan_misses += other.scan_misses;
    }

    /// Collision-cache hit rate across both halves (0.0 when no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.ray_hits + self.scan_hits;
        let lookups = hits + self.ray_misses + self.scan_misses;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

/// The runtime-toggleable per-mission telemetry sink.
///
/// Construct it (allocating its fixed buffers once), hand it to the runner,
/// and call [`MissionTelemetry::observe_tick`] after every pipeline tick.
/// Wall-clock kernel histograms fill only while the pipeline's timing knob
/// is on; everything else is deterministic counting.
#[derive(Debug, Clone)]
pub struct MissionTelemetry {
    kernel_latency: [LatencyHistogram; KernelId::COUNT],
    timeline: EventTimeline,
    counters: TelemetryCounters,
    // Snapshots for per-tick delta derivation.
    last_alarms: [u64; Stage::COUNT],
    last_abandonments: u64,
    last_cache: CollisionCacheStats,
    // Fault → detect → recover latency bookkeeping, in ticks.
    fault_tick: Option<u64>,
    fault_stage: Option<Stage>,
    first_alarm_tick: Option<u64>,
    first_recovery_tick: Option<u64>,
}

impl MissionTelemetry {
    /// Creates a sink with the default timeline capacity.
    pub fn new() -> Self {
        Self::with_timeline_capacity(EventTimeline::DEFAULT_CAPACITY)
    }

    /// Creates a sink whose timeline retains at most `capacity` events.
    pub fn with_timeline_capacity(capacity: usize) -> Self {
        Self {
            kernel_latency: [LatencyHistogram::default(); KernelId::COUNT],
            timeline: EventTimeline::with_capacity(capacity),
            counters: TelemetryCounters::default(),
            last_alarms: [0; Stage::COUNT],
            last_abandonments: 0,
            last_cache: CollisionCacheStats::default(),
            fault_tick: None,
            fault_stage: None,
            first_alarm_tick: None,
            first_recovery_tick: None,
        }
    }

    /// The accumulated deterministic counters.
    pub fn counters(&self) -> &TelemetryCounters {
        &self.counters
    }

    /// The event timeline recorded so far.
    pub fn timeline(&self) -> &EventTimeline {
        &self.timeline
    }

    /// The wall-clock latency histogram of `kernel`.
    pub fn kernel_latency(&self, kernel: KernelId) -> &LatencyHistogram {
        &self.kernel_latency[kernel.index()]
    }

    /// Ticks from fault injection to the first detector alarm, when both
    /// happened.
    pub fn detection_latency_ticks(&self) -> Option<u64> {
        Some(self.first_alarm_tick? - self.fault_tick?)
    }

    /// Ticks from fault injection to the first recovery action
    /// (recomputation or abandonment), when both happened.
    pub fn recovery_latency_ticks(&self) -> Option<u64> {
        Some(self.first_recovery_tick? - self.fault_tick?)
    }

    fn push(&mut self, tick: u64, sim_time_s: f64, event: TelemetryEvent) {
        self.timeline.push(TimelineEvent { tick, sim_time_s, event });
    }

    /// Feeds one completed pipeline tick into the sink.
    ///
    /// Allocation-free: everything lands in preallocated storage.  The sink
    /// only reads its arguments, so calling (or not calling) this cannot
    /// change mission results.
    ///
    /// `tick_index` is the 0-based pipeline tick counter and `sim_time_s`
    /// the simulation clock *after* the tick — the only timestamps that
    /// ever reach the timeline.
    pub fn observe_tick(
        &mut self,
        tick_index: u64,
        sim_time_s: f64,
        tick: &PpcTick,
        pipeline: &PpcPipeline,
        detector: Option<&DetectorStats>,
        fault: Option<&FaultRecord>,
    ) {
        self.counters.ticks += 1;

        // Wall-clock kernel latencies (empty unless pipeline timing is on).
        for (kernel, nanos) in pipeline.last_tick_timings().iter() {
            self.kernel_latency[kernel.index()].record(nanos);
        }

        // Fault injection: the injector's record appears on the tick it
        // fires and stays for the rest of the mission.
        if self.fault_tick.is_none() {
            if let Some(record) = fault {
                self.fault_tick = Some(tick_index);
                self.fault_stage = record.field.map(|field| field.stage());
                self.push(
                    tick_index,
                    sim_time_s,
                    TelemetryEvent::FaultInjected { stage: self.fault_stage },
                );
            }
        }

        // Detector activity, derived from the cumulative stats delta.
        if let Some(stats) = detector {
            for stage in Stage::ALL {
                let alarms = stats.alarms_of(stage);
                let previous = self.last_alarms[stage.index()];
                if alarms > previous {
                    self.counters.alarms[stage.index()] += alarms - previous;
                    self.last_alarms[stage.index()] = alarms;
                    self.push(tick_index, sim_time_s, TelemetryEvent::DetectorAlarm { stage });
                    if self.fault_tick.is_some() && self.first_alarm_tick.is_none() {
                        self.first_alarm_tick = Some(tick_index);
                    }
                }
            }
            if stats.abandonments > self.last_abandonments {
                self.counters.abandonments += stats.abandonments - self.last_abandonments;
                self.last_abandonments = stats.abandonments;
                self.push(tick_index, sim_time_s, TelemetryEvent::Abandonment);
                if self.fault_tick.is_some() && self.first_recovery_tick.is_none() {
                    self.first_recovery_tick = Some(tick_index);
                }
            }
        }

        // Recovery actions the pipeline actually performed this tick.
        for stage in tick.recomputed_stages.iter() {
            self.counters.recomputations[stage.index()] += 1;
            self.push(tick_index, sim_time_s, TelemetryEvent::Recovery { stage });
            if self.fault_tick.is_some() && self.first_recovery_tick.is_none() {
                self.first_recovery_tick = Some(tick_index);
            }
        }

        if tick.replanned {
            self.counters.replans += 1;
            self.push(tick_index, sim_time_s, TelemetryEvent::Replan);
        }

        // Collision-cache counters track the checker's cumulative totals;
        // on recovery/replan ticks the delta also lands on the timeline
        // (that is where the "perception recovery becomes a cache hit"
        // claim is visible).
        let cache = pipeline.collision_cache_stats();
        if (tick.replanned || !tick.recomputed_stages.is_empty()) && cache != self.last_cache {
            self.push(
                tick_index,
                sim_time_s,
                TelemetryEvent::CacheActivity {
                    ray_hits: (cache.ray_hits - self.last_cache.ray_hits) as u32,
                    ray_misses: (cache.ray_misses - self.last_cache.ray_misses) as u32,
                    scan_hits: (cache.scan_hits - self.last_cache.scan_hits) as u32,
                    scan_misses: (cache.scan_misses - self.last_cache.scan_misses) as u32,
                },
            );
        }
        self.counters.ray_hits = cache.ray_hits;
        self.counters.ray_misses = cache.ray_misses;
        self.counters.scan_hits = cache.scan_hits;
        self.counters.scan_misses = cache.scan_misses;
        self.last_cache = cache;
    }

    /// Finalises the mission into a serialisable [`MissionReport`],
    /// folding in the pipeline's per-kernel invocation counts.
    pub fn into_report(self, pipeline_stats: &PipelineStats) -> MissionReport {
        let mut kernel_invocations = [0u64; KernelId::COUNT];
        for kernel in KernelId::ALL {
            kernel_invocations[kernel.index()] = pipeline_stats.invocations(kernel);
        }
        MissionReport {
            counters: self.counters,
            kernel_invocations,
            fault_stage: self.fault_stage,
            detection_latency_ticks: self.detection_latency_ticks(),
            recovery_latency_ticks: self.recovery_latency_ticks(),
            events: self.timeline.events().to_vec(),
            events_dropped: self.timeline.dropped(),
            kernel_latency_ns: self.kernel_latency,
        }
    }
}

impl Default for MissionTelemetry {
    fn default() -> Self {
        Self::new()
    }
}
