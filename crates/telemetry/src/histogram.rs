//! Fixed-bucket log2 latency histograms.
//!
//! A histogram is a flat `[u64; 64]` bucket array indexed by the position of
//! the highest set bit of the sample: recording is two array writes and a
//! handful of integer ops, with no heap allocation ever — the counting-
//! allocator tests run with these live on the tick path.  Merging is
//! bucket-wise addition, which is associative and order-insensitive, so
//! campaign rollups combine mission histograms deterministically.

use serde::{Deserialize, Serialize};

/// A log2-bucketed histogram of nanosecond latencies.
///
/// `Copy` and fully inline (no heap): suitable for per-kernel arrays inside
/// the telemetry sink.  Percentile queries return the *upper bound* of the
/// bucket containing the requested rank, capped at the exact observed
/// maximum — a conservative estimate whose error is at most 2x, the
/// standard trade-off of log2 bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: [u64; Self::BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { counts: [0; Self::BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    /// Number of buckets: one per possible position of a `u64` sample's
    /// highest set bit (bucket `b` covers `[2^b, 2^(b+1))`; bucket 0 also
    /// holds zero samples).
    pub const BUCKETS: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        }
    }

    /// Records one sample.  Allocation-free.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(nanos);
        self.max_ns = self.max_ns.max(nanos);
    }

    /// Merges `other` into `self` by bucket-wise addition.  Associative and
    /// commutative, so any fixed merge order yields the same rollup.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (ns); 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of the recorded samples (ns); 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `quantile` percentile (ns), where
    /// `quantile` is in `[0, 1]`.  Returns 0 when empty.
    pub fn percentile(&self, quantile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((quantile.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (bucket, &bucket_count) in self.counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= target {
                let upper = if bucket >= 63 { u64::MAX } else { (1u64 << (bucket + 1)) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate (ns).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate (ns).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate (ns).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.p99(), 0);
        assert_eq!(hist.max_ns(), 0);
        assert_eq!(hist.mean_ns(), 0.0);
    }

    #[test]
    fn records_land_in_log2_buckets_and_percentiles_are_ordered() {
        let mut hist = LatencyHistogram::new();
        for nanos in [0, 1, 2, 3, 100, 1_000, 10_000, 100_000, 1_000_000] {
            hist.record(nanos);
        }
        assert_eq!(hist.count(), 9);
        assert_eq!(hist.max_ns(), 1_000_000);
        assert!(hist.p50() <= hist.p90());
        assert!(hist.p90() <= hist.p99());
        assert!(hist.p99() <= hist.max_ns());
        // The p99 bucket upper bound is capped at the exact max.
        assert_eq!(hist.p99(), 1_000_000);
    }

    #[test]
    fn percentile_upper_bound_is_at_most_2x() {
        let mut hist = LatencyHistogram::new();
        for _ in 0..100 {
            hist.record(700);
        }
        let p50 = hist.p50();
        assert!((700..=1400).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_is_bucket_wise_and_order_insensitive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for nanos in [5, 50, 500] {
            a.record(nanos);
        }
        for nanos in [7, 70, 7_000_000] {
            b.record(nanos);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.max_ns(), 7_000_000);
    }

    #[test]
    fn serde_round_trip() {
        let mut hist = LatencyHistogram::new();
        for nanos in [3, 33, 333, 3_333] {
            hist.record(nanos);
        }
        let json = serde_json::to_string(&hist).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hist);
    }
}
