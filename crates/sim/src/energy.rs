//! Flight power and mission-energy accounting.
//!
//! The paper reports *mission energy* as a quality-of-flight metric and uses
//! the cyber-physical observation that extra compute power (for example from
//! DMR/TMR redundancy) raises total power draw and lowers achievable
//! velocity, inflating both flight time and energy.  This module provides
//! the flight-side power model; the compute-side is in `mavfi-platform`.

use serde::{Deserialize, Serialize};

/// Simple quadrotor electrical power model.
///
/// Instantaneous power is `hover + k_v * v² + compute`, a standard quadratic
/// approximation of induced plus parasitic drag power around hover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power required to hover (W).
    pub hover_power: f64,
    /// Velocity-dependent coefficient (W per (m/s)²).
    pub velocity_coeff: f64,
    /// Constant power drawn by the onboard compute platform (W).
    pub compute_power: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Loosely modelled on a small MAV similar to the DJI Spark class.
        Self { hover_power: 120.0, velocity_coeff: 2.0, compute_power: 15.0 }
    }
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite.
    pub fn new(hover_power: f64, velocity_coeff: f64, compute_power: f64) -> Self {
        for value in [hover_power, velocity_coeff, compute_power] {
            assert!(value >= 0.0 && value.is_finite(), "power coefficients must be non-negative");
        }
        Self { hover_power, velocity_coeff, compute_power }
    }

    /// Instantaneous electrical power at the given speed (W).
    pub fn instantaneous_power(&self, speed: f64) -> f64 {
        self.hover_power + self.velocity_coeff * speed * speed + self.compute_power
    }

    /// Returns a copy with the compute power replaced, used when comparing
    /// compute platforms or redundancy schemes.
    pub fn with_compute_power(mut self, compute_power: f64) -> Self {
        assert!(compute_power >= 0.0 && compute_power.is_finite());
        self.compute_power = compute_power;
        self
    }
}

/// Integrates power over time into mission energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
}

impl EnergyMeter {
    /// Creates a meter reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `power` watts applied for `dt` seconds.
    pub fn add(&mut self, power: f64, dt: f64) {
        debug_assert!(power >= 0.0 && dt >= 0.0);
        self.joules += power * dt;
    }

    /// Total accumulated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total accumulated energy in kilojoules.
    pub fn kilojoules(&self) -> f64 {
        self.joules / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grows_with_speed() {
        let model = PowerModel::default();
        assert!(model.instantaneous_power(5.0) > model.instantaneous_power(0.0));
        let hover_only = model.instantaneous_power(0.0);
        assert_eq!(hover_only, model.hover_power + model.compute_power);
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let mut meter = EnergyMeter::new();
        meter.add(100.0, 10.0);
        meter.add(50.0, 2.0);
        assert_eq!(meter.joules(), 1100.0);
        assert!((meter.kilojoules() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn compute_power_override() {
        let base = PowerModel::default();
        let heavy = base.with_compute_power(60.0);
        assert!(heavy.instantaneous_power(3.0) > base.instantaneous_power(3.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coefficient_panics() {
        let _ = PowerModel::new(-1.0, 0.0, 0.0);
    }
}
