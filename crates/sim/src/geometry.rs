//! Basic 3-D geometry: vectors, axis-aligned boxes and poses.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3-D vector with `f64` components, used for positions, velocities and
/// accelerations.
///
/// # Examples
///
/// ```
/// use mavfi_sim::geometry::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a + Vec3::ZERO, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (forward in the world frame).
    pub x: f64,
    /// Y component (left in the world frame).
    pub y: f64,
    /// Z component (up in the world frame).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along +X.
    pub const UNIT_X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along +Y.
    pub const UNIT_Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along +Z.
    pub const UNIT_Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components equal to `value`.
    pub const fn splat(value: f64) -> Self {
        Self { x: value, y: value, z: value }
    }

    /// Dot product.
    pub fn dot(self, other: Self) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Self) -> Self {
        Self {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (XY-plane) distance to `other`.
    pub fn distance_xy(self, other: Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the unit vector in this direction, or `None` for a vector of
    /// negligible length.
    pub fn normalized(self) -> Option<Self> {
        let norm = self.norm();
        if norm <= f64::EPSILON {
            None
        } else {
            Some(self / norm)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Self, t: f64) -> Self {
        self + (other - self) * t
    }

    /// Clamps the vector's norm to at most `max_norm`, preserving direction.
    pub fn clamp_norm(self, max_norm: f64) -> Self {
        let norm = self.norm();
        if norm > max_norm && norm > 0.0 {
            self * (max_norm / norm)
        } else {
            self
        }
    }

    /// Component-wise minimum.
    pub fn min(self, other: Self) -> Self {
        Self { x: self.x.min(other.x), y: self.y.min(other.y), z: self.z.min(other.z) }
    }

    /// Component-wise maximum.
    pub fn max(self, other: Self) -> Self {
        Self { x: self.x.max(other.x), y: self.y.max(other.y), z: self.z.max(other.z) }
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Heading (yaw) of the XY projection of this vector, in radians.
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns the components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(value: [f64; 3]) -> Self {
        Self::new(value[0], value[1], value[2])
    }
}

impl Add for Vec3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

/// An axis-aligned bounding box, the obstacle primitive used by the
/// environment generator (the paper's environments are cuboid obstacle
/// fields).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners (components are sorted).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self { min: a.min(b), max: a.max(b) }
    }

    /// Creates a box from its center and full side lengths.
    pub fn from_center(center: Vec3, size: Vec3) -> Self {
        let half = size / 2.0;
        Self { min: center - half, max: center + half }
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) / 2.0
    }

    /// Full side lengths.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Returns the box grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Self {
        Self { min: self.min - Vec3::splat(margin), max: self.max + Vec3::splat(margin) }
    }

    /// Returns `true` if `point` lies inside or on the boundary.
    pub fn contains(&self, point: Vec3) -> bool {
        point.x >= self.min.x
            && point.x <= self.max.x
            && point.y >= self.min.y
            && point.y <= self.max.y
            && point.z >= self.min.z
            && point.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap.
    pub fn intersects(&self, other: &Self) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Intersects the ray `origin + t * direction` (`t >= 0`) with the box
    /// using the slab method, returning the entry parameter `t` if the ray
    /// hits.
    pub fn ray_intersection(&self, origin: Vec3, direction: Vec3) -> Option<f64> {
        let mut t_min = 0.0_f64;
        let mut t_max = f64::INFINITY;
        let origins = origin.to_array();
        let directions = direction.to_array();
        let mins = self.min.to_array();
        let maxs = self.max.to_array();
        for axis in 0..3 {
            if directions[axis].abs() < 1e-12 {
                if origins[axis] < mins[axis] || origins[axis] > maxs[axis] {
                    return None;
                }
            } else {
                let inv = 1.0 / directions[axis];
                let mut t0 = (mins[axis] - origins[axis]) * inv;
                let mut t1 = (maxs[axis] - origins[axis]) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }

    /// Returns `true` if the segment from `a` to `b` passes through the box.
    pub fn intersects_segment(&self, a: Vec3, b: Vec3) -> bool {
        let direction = b - a;
        let length = direction.norm();
        if length <= f64::EPSILON {
            return self.contains(a);
        }
        match self.ray_intersection(a, direction / length) {
            Some(t) => t <= length,
            None => false,
        }
    }
}

/// A vehicle pose: position plus heading (yaw) about the world Z axis.
///
/// The MAV is modelled as yaw-steerable with level flight, which matches how
/// MAVBench issues way-point commands.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in the world frame.
    pub position: Vec3,
    /// Yaw angle in radians, measured from +X toward +Y.
    pub yaw: f64,
}

impl Pose {
    /// Creates a pose.
    pub fn new(position: Vec3, yaw: f64) -> Self {
        Self { position, yaw }
    }

    /// Unit vector pointing along the current heading in the XY plane.
    pub fn forward(&self) -> Vec3 {
        Vec3::new(self.yaw.cos(), self.yaw.sin(), 0.0)
    }
}

/// Wraps an angle to the interval `(-pi, pi]`.
pub fn wrap_angle(angle: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut wrapped = angle % two_pi;
    if wrapped <= -std::f64::consts::PI {
        wrapped += two_pi;
    } else if wrapped > std::f64::consts::PI {
        wrapped -= two_pi;
    }
    wrapped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!((a.dot(b) + 1.0 - 6.0 - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::UNIT_X.cross(Vec3::UNIT_Y), Vec3::UNIT_Z);
    }

    #[test]
    fn normalization_and_clamping() {
        assert!(Vec3::ZERO.normalized().is_none());
        let unit = Vec3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!((unit.norm() - 1.0).abs() < 1e-12);
        let clamped = Vec3::new(10.0, 0.0, 0.0).clamp_norm(2.0);
        assert!((clamped.norm() - 2.0).abs() < 1e-12);
        let small = Vec3::new(1.0, 0.0, 0.0).clamp_norm(2.0);
        assert_eq!(small, Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn aabb_contains_and_intersects() {
        let a = Aabb::from_center(Vec3::ZERO, Vec3::splat(2.0));
        assert!(a.contains(Vec3::new(0.9, -0.9, 0.5)));
        assert!(!a.contains(Vec3::new(1.1, 0.0, 0.0)));
        let b = Aabb::from_center(Vec3::new(1.5, 0.0, 0.0), Vec3::splat(2.0));
        assert!(a.intersects(&b));
        let c = Aabb::from_center(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(2.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn ray_hits_box_in_front_only() {
        let aabb = Aabb::from_center(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(2.0));
        let hit = aabb.ray_intersection(Vec3::ZERO, Vec3::UNIT_X).unwrap();
        assert!((hit - 4.0).abs() < 1e-9);
        assert!(aabb.ray_intersection(Vec3::ZERO, -Vec3::UNIT_X).is_none());
        assert!(aabb.ray_intersection(Vec3::ZERO, Vec3::UNIT_Y).is_none());
    }

    #[test]
    fn segment_intersection_matches_geometry() {
        let aabb = Aabb::from_center(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(2.0));
        assert!(aabb.intersects_segment(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)));
        assert!(!aabb.intersects_segment(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)));
        assert!(!aabb.intersects_segment(Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0)));
        // Degenerate segment inside the box.
        assert!(aabb.intersects_segment(Vec3::new(5.0, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)));
    }

    #[test]
    fn inflation_grows_every_side() {
        let aabb = Aabb::from_center(Vec3::ZERO, Vec3::splat(2.0)).inflated(0.5);
        assert_eq!(aabb.size(), Vec3::splat(3.0));
        assert_eq!(aabb.center(), Vec3::ZERO);
    }

    #[test]
    fn wrap_angle_stays_in_range() {
        for k in -10..10 {
            let angle = 0.7 + k as f64 * std::f64::consts::TAU;
            let wrapped = wrap_angle(angle);
            assert!(wrapped > -std::f64::consts::PI && wrapped <= std::f64::consts::PI);
            assert!((wrapped - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    fn pose_forward_follows_yaw() {
        let pose = Pose::new(Vec3::ZERO, std::f64::consts::FRAC_PI_2);
        let forward = pose.forward();
        assert!(forward.x.abs() < 1e-12);
        assert!((forward.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_of_vector() {
        assert!((Vec3::new(0.0, 2.0, 0.0).heading() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).heading(), 0.0);
    }
}
