//! Quadrotor kinematics: the simulated MAV body driven by flight commands.

use serde::{Deserialize, Serialize};

use crate::geometry::{wrap_angle, Pose, Vec3};

/// A velocity-setpoint flight command, the actuator-facing output of the
/// control stage (the paper's corrupted `vx, vy, vz` plus yaw fields live
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlightCommand {
    /// Commanded linear velocity in the world frame (m/s).
    pub velocity: Vec3,
    /// Commanded yaw rate (rad/s).
    pub yaw_rate: f64,
}

impl FlightCommand {
    /// A command that holds position (zero velocity, zero yaw rate).
    pub const HOLD: Self = Self { velocity: Vec3::ZERO, yaw_rate: 0.0 };

    /// Creates a command from a velocity setpoint and yaw rate.
    pub fn new(velocity: Vec3, yaw_rate: f64) -> Self {
        Self { velocity, yaw_rate }
    }

    /// Returns `true` if every field is finite (corrupted commands routinely
    /// contain NaN or infinities after exponent bit flips).
    pub fn is_finite(&self) -> bool {
        self.velocity.is_finite() && self.yaw_rate.is_finite()
    }
}

/// Physical limits and geometry of the simulated quadrotor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadrotorParams {
    /// Maximum linear speed (m/s).
    pub max_speed: f64,
    /// Maximum linear acceleration (m/s²).
    pub max_accel: f64,
    /// Maximum yaw rate (rad/s).
    pub max_yaw_rate: f64,
    /// Collision radius of the airframe (m).
    pub radius: f64,
    /// Vehicle mass (kg); used by the energy model.
    pub mass: f64,
}

impl Default for QuadrotorParams {
    fn default() -> Self {
        Self { max_speed: 6.0, max_accel: 4.0, max_yaw_rate: 1.5, radius: 0.4, mass: 1.0 }
    }
}

/// Kinematic state of the quadrotor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QuadrotorState {
    /// Position in the world frame (m).
    pub position: Vec3,
    /// Velocity in the world frame (m/s).
    pub velocity: Vec3,
    /// Yaw angle (rad).
    pub yaw: f64,
}

/// The simulated quadrotor: an acceleration- and speed-limited point mass
/// with yaw, sufficient to close the perception-planning-control loop.
///
/// # Examples
///
/// ```
/// use mavfi_sim::geometry::Vec3;
/// use mavfi_sim::vehicle::{FlightCommand, Quadrotor, QuadrotorParams};
///
/// let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, QuadrotorParams::default());
/// let forward = FlightCommand::new(Vec3::new(2.0, 0.0, 0.0), 0.0);
/// for _ in 0..100 {
///     quad.step(&forward, 0.05);
/// }
/// assert!(quad.state().position.x > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadrotor {
    state: QuadrotorState,
    params: QuadrotorParams,
}

impl Quadrotor {
    /// Creates a quadrotor at rest at `position` with heading `yaw`.
    pub fn new(position: Vec3, yaw: f64, params: QuadrotorParams) -> Self {
        Self { state: QuadrotorState { position, velocity: Vec3::ZERO, yaw }, params }
    }

    /// Current kinematic state.
    pub fn state(&self) -> QuadrotorState {
        self.state
    }

    /// Physical parameters.
    pub fn params(&self) -> QuadrotorParams {
        self.params
    }

    /// Current pose (position + yaw).
    pub fn pose(&self) -> Pose {
        Pose::new(self.state.position, self.state.yaw)
    }

    /// Current speed (m/s).
    pub fn speed(&self) -> f64 {
        self.state.velocity.norm()
    }

    /// Advances the vehicle by `dt` seconds while tracking `command`.
    ///
    /// Non-finite commands (a common manifestation of exponent bit flips)
    /// are treated as a hold command by the low-level flight controller,
    /// mirroring the PX4-style sanity rejection of malformed setpoints.
    pub fn step(&mut self, command: &FlightCommand, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "time step must be positive and finite");
        let command = if command.is_finite() { *command } else { FlightCommand::HOLD };

        let desired = command.velocity.clamp_norm(self.params.max_speed);
        let delta = desired - self.state.velocity;
        let max_delta = self.params.max_accel * dt;
        let applied = delta.clamp_norm(max_delta);
        self.state.velocity = (self.state.velocity + applied).clamp_norm(self.params.max_speed);
        self.state.position += self.state.velocity * dt;

        let yaw_rate = command.yaw_rate.clamp(-self.params.max_yaw_rate, self.params.max_yaw_rate);
        self.state.yaw = wrap_angle(self.state.yaw + yaw_rate * dt);
    }

    /// Teleports the vehicle (used when resetting a mission).
    pub fn reset(&mut self, position: Vec3, yaw: f64) {
        self.state = QuadrotorState { position, velocity: Vec3::ZERO, yaw };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerates_towards_setpoint_with_limits() {
        let params =
            QuadrotorParams { max_accel: 2.0, max_speed: 4.0, ..QuadrotorParams::default() };
        let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, params);
        let command = FlightCommand::new(Vec3::new(10.0, 0.0, 0.0), 0.0);
        quad.step(&command, 0.5);
        // Acceleration limit: at most 2.0 * 0.5 = 1.0 m/s gained.
        assert!((quad.speed() - 1.0).abs() < 1e-9);
        for _ in 0..100 {
            quad.step(&command, 0.5);
        }
        // Speed limit: capped at 4 m/s even though 10 m/s was commanded.
        assert!((quad.speed() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn yaw_rate_is_clamped_and_wrapped() {
        let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, QuadrotorParams::default());
        let command = FlightCommand::new(Vec3::ZERO, 100.0);
        for _ in 0..100 {
            quad.step(&command, 0.1);
        }
        let yaw = quad.state().yaw;
        assert!(yaw > -std::f64::consts::PI && yaw <= std::f64::consts::PI);
    }

    #[test]
    fn non_finite_command_is_treated_as_hold() {
        let mut quad = Quadrotor::new(Vec3::new(1.0, 2.0, 3.0), 0.3, QuadrotorParams::default());
        let bad = FlightCommand::new(Vec3::new(f64::NAN, 0.0, 0.0), f64::INFINITY);
        quad.step(&bad, 0.1);
        let state = quad.state();
        assert!(state.position.is_finite());
        assert!(state.velocity.is_finite());
        assert_eq!(state.velocity, Vec3::ZERO);
    }

    #[test]
    fn reset_restores_rest_state() {
        let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, QuadrotorParams::default());
        quad.step(&FlightCommand::new(Vec3::new(1.0, 1.0, 0.0), 0.1), 0.5);
        quad.reset(Vec3::new(5.0, 5.0, 1.0), 1.0);
        assert_eq!(quad.state().position, Vec3::new(5.0, 5.0, 1.0));
        assert_eq!(quad.speed(), 0.0);
        assert_eq!(quad.pose().yaw, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, QuadrotorParams::default());
        quad.step(&FlightCommand::HOLD, 0.0);
    }
}
