//! Onboard sensors: a ray-casting depth camera (stand-in for the RGB-D
//! camera) and a noisy IMU.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::env::Environment;
use crate::geometry::{Pose, Vec3};

/// A depth-camera frame expressed as a world-frame point cloud.
#[derive(Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct DepthFrame {
    /// Hit points in the world frame, one per ray that struck an obstacle.
    pub points: Vec<Vec3>,
    /// Total number of rays cast for this frame (hits plus misses).
    pub rays_cast: usize,
}

/// Manual impl so `clone_from` reuses the destination's point buffer (the
/// derived impl would fall back to `*self = source.clone()`, allocating a
/// fresh vector).  Batched capture leans on this: a mission whose pose
/// equals a batch-mate's copies the mate's frame every tick, and a warm
/// steady state must not allocate for it.
impl Clone for DepthFrame {
    fn clone(&self) -> Self {
        Self { points: self.points.clone(), rays_cast: self.rays_cast }
    }

    fn clone_from(&mut self, source: &Self) {
        self.points.clone_from(&source.points);
        self.rays_cast = source.rays_cast;
    }
}

/// A depth-camera frame in hit-parameter form: for each ray that struck an
/// obstacle, the ray's frame index and the hit parameter `t` along it.
///
/// This is the compact, record-friendly dual of [`DepthFrame`]: given the
/// same [`DepthCamera`] and [`Pose`], [`DepthCamera::resolve_rays`] rebuilds
/// the exact world-frame point cloud (`origin + direction(ray) * t`,
/// bit-identical) — which is what lets mission traces store ~10 bytes per
/// hit instead of three `f64` coordinates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RayHits {
    /// Total number of rays cast for this frame (hits plus misses).
    pub rays_cast: usize,
    /// `(ray_index, t)` per hit, in ray order.  `ray_index` is
    /// `vi * horizontal_rays + hi` for the row-major scan the camera casts.
    pub hits: Vec<(u32, f64)>,
}

impl RayHits {
    /// Removes all hits, keeping the buffer.
    pub fn clear(&mut self) {
        self.rays_cast = 0;
        self.hits.clear();
    }
}

/// A pin-hole style depth camera simulated by ray casting against the
/// environment's obstacle set.
///
/// # Examples
///
/// ```
/// use mavfi_sim::env::EnvironmentKind;
/// use mavfi_sim::geometry::Pose;
/// use mavfi_sim::sensors::DepthCamera;
///
/// let env = EnvironmentKind::Dense.build(1);
/// let camera = DepthCamera::default();
/// let frame = camera.capture(&env, &Pose::new(env.start(), 0.0));
/// assert_eq!(frame.rays_cast, camera.ray_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthCamera {
    /// Horizontal field of view (radians).
    pub horizontal_fov: f64,
    /// Vertical field of view (radians).
    pub vertical_fov: f64,
    /// Number of rays across the horizontal field of view.
    pub horizontal_rays: usize,
    /// Number of rays across the vertical field of view.
    pub vertical_rays: usize,
    /// Maximum sensing range (m).
    pub max_range: f64,
}

impl Default for DepthCamera {
    fn default() -> Self {
        Self {
            horizontal_fov: 90_f64.to_radians(),
            vertical_fov: 45_f64.to_radians(),
            horizontal_rays: 32,
            vertical_rays: 8,
            max_range: 20.0,
        }
    }
}

/// Reusable buffers for [`DepthCamera::capture_into`]: the indices of the
/// obstacles that survive the per-frame broad-phase cull.
///
/// Scratches hold no semantic state — a fresh scratch produces the same
/// frame as a reused one; reuse only avoids the per-frame allocation.
#[derive(Debug, Clone, Default)]
pub struct CaptureScratch {
    visible: Vec<usize>,
}

impl CaptureScratch {
    /// Creates an empty scratch; the buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DepthCamera {
    /// Total number of rays cast per frame.
    pub fn ray_count(&self) -> usize {
        self.horizontal_rays * self.vertical_rays
    }

    /// Captures a depth frame from `pose` looking along the pose heading.
    pub fn capture(&self, env: &Environment, pose: &Pose) -> DepthFrame {
        let mut frame = DepthFrame::default();
        self.capture_into(env, pose, &mut CaptureScratch::new(), &mut frame);
        frame
    }

    /// [`DepthCamera::capture`] into caller-provided buffers: reuses the
    /// frame's point storage and the scratch's cull list, so steady-state
    /// captures perform zero heap allocations.  The produced frame is
    /// bit-identical to [`DepthCamera::capture`]'s.
    ///
    /// Before casting any rays, obstacles are broad-phase culled once per
    /// frame: boxes farther than the sensing range and boxes entirely behind
    /// the camera plane can never produce a hit, so the O(rays × obstacles)
    /// inner loop skips them.  Both tests are conservative — the surviving
    /// set always contains every obstacle any ray could hit — which is what
    /// keeps the output bit-identical.
    pub fn capture_into(
        &self,
        env: &Environment,
        pose: &Pose,
        scratch: &mut CaptureScratch,
        frame: &mut DepthFrame,
    ) {
        frame.points.clear();
        frame.rays_cast = self.ray_count();
        let origin = pose.position;
        self.cast_rays(env, pose, scratch, |_, direction, t| {
            frame.points.push(origin + direction * t);
        });
    }

    /// Captures a frame in hit-parameter form: the same rays as
    /// [`DepthCamera::capture_into`], recording `(ray_index, t)` per hit
    /// instead of the world-frame point.  [`DepthCamera::resolve_rays`] is
    /// the exact inverse back to the point cloud.
    pub fn capture_rays_into(
        &self,
        env: &Environment,
        pose: &Pose,
        scratch: &mut CaptureScratch,
        rays: &mut RayHits,
    ) {
        rays.clear();
        rays.rays_cast = self.ray_count();
        self.cast_rays(env, pose, scratch, |ray, _, t| {
            rays.hits.push((ray, t));
        });
    }

    /// Reconstructs the point cloud a capture from `pose` produced, given
    /// its hit parameters.  Because the ray direction is recomputed by the
    /// same function the capture used, the points are **bit-identical** to
    /// [`DepthCamera::capture_into`]'s — this is the replay path that takes
    /// the simulator (and its obstacle set) out of the loop.
    pub fn resolve_rays(&self, pose: &Pose, rays: &RayHits, frame: &mut DepthFrame) {
        frame.points.clear();
        frame.rays_cast = rays.rays_cast;
        let origin = pose.position;
        for &(ray, t) in &rays.hits {
            let hi = ray as usize % self.horizontal_rays;
            let vi = ray as usize / self.horizontal_rays;
            let direction = self.ray_direction(pose.yaw, hi, vi);
            frame.points.push(origin + direction * t);
        }
    }

    /// Direction of the ray at scan position (`hi`, `vi`) for a camera yawed
    /// to `pose_yaw` — the single source of truth shared by capture and
    /// replay so both produce bit-identical geometry.
    #[inline]
    fn ray_direction(&self, pose_yaw: f64, hi: usize, vi: usize) -> Vec3 {
        let v_frac = if self.vertical_rays > 1 {
            vi as f64 / (self.vertical_rays - 1) as f64 - 0.5
        } else {
            0.0
        };
        let pitch = v_frac * self.vertical_fov;
        let h_frac = if self.horizontal_rays > 1 {
            hi as f64 / (self.horizontal_rays - 1) as f64 - 0.5
        } else {
            0.0
        };
        let yaw = pose_yaw + h_frac * self.horizontal_fov;
        Vec3::new(yaw.cos() * pitch.cos(), yaw.sin() * pitch.cos(), pitch.sin())
    }

    /// Whether the broad-phase cull must keep `aabb` for a capture from
    /// `pose`.  Both tests are conservative: a `false` answer proves no ray
    /// from this pose can hit the box within range.
    fn pose_may_see(&self, pose: &Pose, aabb: &crate::geometry::Aabb) -> bool {
        let origin = pose.position;
        // Range cull: the nearest point of the box is beyond max_range,
        // so any ray's entry parameter would exceed it.
        let closest = Vec3::new(
            origin.x.clamp(aabb.min.x, aabb.max.x),
            origin.y.clamp(aabb.min.y, aabb.max.y),
            origin.z.clamp(aabb.min.z, aabb.max.z),
        );
        if closest.distance(origin) > self.max_range {
            return false;
        }
        // Behind cull: if even the box's support point along the heading is
        // behind the camera plane, the whole box is (convexity), and forward
        // rays cannot enter it.  Only valid when every ray direction has a
        // non-negative component along the camera heading, i.e. both fields
        // of view stay within a half-space.
        let half_space_valid = self.horizontal_fov <= std::f64::consts::PI
            && self.vertical_fov <= std::f64::consts::PI;
        if half_space_valid {
            let forward = pose.forward();
            let support = Vec3::new(
                if forward.x >= 0.0 { aabb.max.x } else { aabb.min.x },
                if forward.y >= 0.0 { aabb.max.y } else { aabb.min.y },
                if forward.z >= 0.0 { aabb.max.z } else { aabb.min.z },
            );
            if (support - origin).dot(forward) < 0.0 {
                return false;
            }
        }
        true
    }

    /// Broad-phase culls the obstacle set for a *batch* of poses sharing one
    /// environment, filling `scratch` with the indices of every obstacle
    /// visible from **any** of the poses (ascending, deduplicated).
    ///
    /// Because the per-pose cull is conservative, a union over poses is a
    /// superset of each pose's own survivor set — and a superset never
    /// changes a capture's output, because the narrow phase filters by
    /// `t <= max_range` and takes the minimum hit anyway.  One union cull
    /// therefore serves every pose in the batch with bit-identical frames,
    /// amortising the O(obstacles) scan across the missions that share an
    /// environment (see [`DepthCamera::capture_culled_into`]).
    pub fn cull_batch_into(&self, env: &Environment, poses: &[Pose], scratch: &mut CaptureScratch) {
        scratch.visible.clear();
        for (index, obstacle) in env.obstacles().iter().enumerate() {
            if poses.iter().any(|pose| self.pose_may_see(pose, &obstacle.aabb)) {
                scratch.visible.push(index);
            }
        }
    }

    /// Captures a frame from one pose through an already prepared cull list
    /// (from [`DepthCamera::cull_batch_into`] over a pose batch that
    /// included this pose, or any other conservative survivor superset).
    /// The frame is bit-identical to [`DepthCamera::capture_into`] from the
    /// same pose.
    pub fn capture_culled_into(
        &self,
        env: &Environment,
        pose: &Pose,
        scratch: &CaptureScratch,
        frame: &mut DepthFrame,
    ) {
        frame.points.clear();
        frame.rays_cast = self.ray_count();
        let origin = pose.position;
        self.cast_culled(env, pose, &scratch.visible, |_, direction, t| {
            frame.points.push(origin + direction * t);
        });
    }

    /// Captures one frame per pose with a single shared broad-phase cull:
    /// the batched counterpart of [`DepthCamera::capture_into`], for
    /// missions whose vehicles fly the same environment.  Every frame is
    /// bit-identical to a per-pose `capture_into`.
    ///
    /// # Panics
    ///
    /// Panics if `poses` and `frames` have different lengths.
    pub fn capture_batch_into(
        &self,
        env: &Environment,
        poses: &[Pose],
        scratch: &mut CaptureScratch,
        frames: &mut [DepthFrame],
    ) {
        assert_eq!(poses.len(), frames.len(), "one frame per pose");
        self.cull_batch_into(env, poses, scratch);
        for (pose, frame) in poses.iter().zip(frames) {
            self.capture_culled_into(env, pose, scratch, frame);
        }
    }

    /// Broad-phase culls the obstacle set, then casts every ray, invoking
    /// `on_hit(ray_index, direction, t)` for each ray that strikes an
    /// obstacle within range.
    fn cast_rays(
        &self,
        env: &Environment,
        pose: &Pose,
        scratch: &mut CaptureScratch,
        on_hit: impl FnMut(u32, Vec3, f64),
    ) {
        scratch.visible.clear();
        for (index, obstacle) in env.obstacles().iter().enumerate() {
            if self.pose_may_see(pose, &obstacle.aabb) {
                scratch.visible.push(index);
            }
        }
        self.cast_culled(env, pose, &scratch.visible, on_hit);
    }

    /// Narrow phase: casts every ray against the obstacles in `visible`,
    /// invoking `on_hit(ray_index, direction, t)` per hit.  Any conservative
    /// survivor superset produces the same hits — culled obstacles are
    /// exactly those no ray can hit within range.
    fn cast_culled(
        &self,
        env: &Environment,
        pose: &Pose,
        visible: &[usize],
        mut on_hit: impl FnMut(u32, Vec3, f64),
    ) {
        let origin = pose.position;
        let obstacles = env.obstacles();
        for vi in 0..self.vertical_rays {
            for hi in 0..self.horizontal_rays {
                let direction = self.ray_direction(pose.yaw, hi, vi);
                let mut nearest: Option<f64> = None;
                for &index in visible {
                    if let Some(t) = obstacles[index].aabb.ray_intersection(origin, direction) {
                        if t <= self.max_range && nearest.map_or(true, |best| t < best) {
                            nearest = Some(t);
                        }
                    }
                }
                if let Some(t) = nearest {
                    on_hit((vi * self.horizontal_rays + hi) as u32, direction, t);
                }
            }
        }
    }
}

/// One IMU measurement.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ImuSample {
    /// Measured linear acceleration in the world frame (m/s²), noise
    /// included.
    pub acceleration: Vec3,
    /// Measured yaw rate (rad/s), noise included.
    pub yaw_rate: f64,
}

/// A noisy inertial measurement unit.
///
/// The IMU differentiates consecutive velocity samples and adds zero-mean
/// Gaussian-ish noise (sum of uniform samples) so that downstream kernels
/// see realistic jitter.
#[derive(Debug, Clone)]
pub struct Imu {
    accel_noise_std: f64,
    gyro_noise_std: f64,
    rng: StdRng,
    previous_velocity: Option<Vec3>,
    previous_yaw: Option<f64>,
}

impl Imu {
    /// Creates an IMU with the given 1-sigma noise levels and RNG seed.
    pub fn new(accel_noise_std: f64, gyro_noise_std: f64, seed: u64) -> Self {
        Self {
            accel_noise_std,
            gyro_noise_std,
            rng: StdRng::seed_from_u64(seed),
            previous_velocity: None,
            previous_yaw: None,
        }
    }

    /// Creates a noise-free IMU (useful in tests).
    pub fn ideal() -> Self {
        Self::new(0.0, 0.0, 0)
    }

    /// Produces a measurement from the current velocity and yaw, given the
    /// time since the previous measurement.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn measure(&mut self, velocity: Vec3, yaw: f64, dt: f64) -> ImuSample {
        assert!(dt > 0.0 && dt.is_finite(), "time step must be positive and finite");
        let acceleration = match self.previous_velocity {
            Some(previous) => (velocity - previous) / dt,
            None => Vec3::ZERO,
        };
        let yaw_rate = match self.previous_yaw {
            Some(previous) => crate::geometry::wrap_angle(yaw - previous) / dt,
            None => 0.0,
        };
        self.previous_velocity = Some(velocity);
        self.previous_yaw = Some(yaw);
        ImuSample {
            acceleration: acceleration
                + Vec3::new(
                    self.noise(self.accel_noise_std),
                    self.noise(self.accel_noise_std),
                    self.noise(self.accel_noise_std),
                ),
            yaw_rate: yaw_rate + self.noise(self.gyro_noise_std),
        }
    }

    /// Approximately Gaussian zero-mean noise via the sum of three uniform
    /// draws (Irwin–Hall), scaled to the requested standard deviation.
    fn noise(&mut self, std: f64) -> f64 {
        if std == 0.0 {
            return 0.0;
        }
        let sum: f64 = (0..3).map(|_| self.rng.gen_range(-1.0..1.0)).sum::<f64>();
        sum / 3.0_f64.sqrt() * std / (2.0 / 3.0_f64.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvironmentKind;

    #[test]
    fn camera_sees_obstacle_directly_ahead() {
        use crate::env::{Environment, Obstacle};
        use crate::geometry::Aabb;
        let env = Environment::new(
            "unit",
            Aabb::new(Vec3::new(-10.0, -10.0, 0.0), Vec3::new(30.0, 10.0, 10.0)),
            vec![Obstacle::from_center(Vec3::new(10.0, 0.0, 2.0), Vec3::splat(4.0))],
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(25.0, 0.0, 2.0),
        );
        let camera = DepthCamera::default();
        let frame = camera.capture(&env, &Pose::new(env.start(), 0.0));
        assert!(!frame.points.is_empty());
        // Every returned point lies on the obstacle within sensing range.
        for point in &frame.points {
            assert!(point.distance(env.start()) <= camera.max_range + 1e-9);
        }
        // Looking away from the obstacle sees nothing.
        let behind = camera.capture(&env, &Pose::new(env.start(), std::f64::consts::PI));
        assert!(behind.points.is_empty());
    }

    #[test]
    fn ray_capture_resolves_to_bit_identical_points() {
        for (kind, seed, yaw) in [
            (EnvironmentKind::Sparse, 3, 0.0),
            (EnvironmentKind::Dense, 8, 0.7),
            (EnvironmentKind::Randomized, 11, -2.1),
        ] {
            let env = kind.build(seed);
            let camera = DepthCamera::default();
            let pose = Pose::new(env.start() + Vec3::new(1.0, 0.5, 0.25), yaw);
            let mut scratch = CaptureScratch::new();

            let mut direct = DepthFrame::default();
            camera.capture_into(&env, &pose, &mut scratch, &mut direct);

            let mut rays = RayHits::default();
            camera.capture_rays_into(&env, &pose, &mut scratch, &mut rays);
            assert_eq!(rays.rays_cast, direct.rays_cast);
            assert_eq!(rays.hits.len(), direct.points.len());

            let mut resolved = DepthFrame::default();
            camera.resolve_rays(&pose, &rays, &mut resolved);
            assert_eq!(resolved.rays_cast, direct.rays_cast);
            for (a, b) in resolved.points.iter().zip(&direct.points) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
            }
        }
    }

    #[test]
    fn batched_capture_with_union_cull_is_bit_identical_per_pose() {
        for (kind, seed) in [
            (EnvironmentKind::Sparse, 3),
            (EnvironmentKind::Dense, 8),
            (EnvironmentKind::Randomized, 11),
        ] {
            let env = kind.build(seed);
            let camera = DepthCamera::default();
            // Poses spread across the environment with divergent headings, so
            // the union survivor set is a strict superset of most per-pose
            // sets.
            let poses: Vec<Pose> = (0..6)
                .map(|i| {
                    let f = i as f64;
                    Pose::new(
                        env.start() + Vec3::new(3.0 * f, 1.5 * f - 4.0, 0.3 * f),
                        f * 1.1 - 2.5,
                    )
                })
                .collect();
            let mut frames = vec![DepthFrame::default(); poses.len()];
            let mut scratch = CaptureScratch::new();
            camera.capture_batch_into(&env, &poses, &mut scratch, &mut frames);

            let mut single_scratch = CaptureScratch::new();
            let mut expect = DepthFrame::default();
            for (pose, frame) in poses.iter().zip(&frames) {
                camera.capture_into(&env, pose, &mut single_scratch, &mut expect);
                assert_eq!(frame.rays_cast, expect.rays_cast);
                assert_eq!(frame.points.len(), expect.points.len());
                for (a, b) in frame.points.iter().zip(&expect.points) {
                    assert_eq!(a.x.to_bits(), b.x.to_bits());
                    assert_eq!(a.y.to_bits(), b.y.to_bits());
                    assert_eq!(a.z.to_bits(), b.z.to_bits());
                }
            }
        }
    }

    #[test]
    fn camera_range_limits_detection() {
        let env = EnvironmentKind::Sparse.build(5);
        let short = DepthCamera { max_range: 0.1, ..DepthCamera::default() };
        let frame = short.capture(&env, &Pose::new(env.start(), 0.0));
        assert!(frame.points.is_empty());
    }

    #[test]
    fn ideal_imu_differentiates_velocity() {
        let mut imu = Imu::ideal();
        let first = imu.measure(Vec3::new(1.0, 0.0, 0.0), 0.0, 0.1);
        assert_eq!(first.acceleration, Vec3::ZERO);
        let second = imu.measure(Vec3::new(2.0, 0.0, 0.0), 0.05, 0.1);
        assert!((second.acceleration.x - 10.0).abs() < 1e-9);
        assert!((second.yaw_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_imu_is_deterministic_per_seed() {
        let mut a = Imu::new(0.1, 0.01, 9);
        let mut b = Imu::new(0.1, 0.01, 9);
        for _ in 0..10 {
            let sa = a.measure(Vec3::new(1.0, 2.0, 3.0), 0.2, 0.1);
            let sb = b.measure(Vec3::new(1.0, 2.0, 3.0), 0.2, 0.1);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn noise_is_bounded_and_zero_mean_ish() {
        let mut imu = Imu::new(0.5, 0.0, 3);
        let mut sum = 0.0;
        for _ in 0..500 {
            let sample = imu.measure(Vec3::ZERO, 0.0, 0.1);
            sum += sample.acceleration.x;
        }
        assert!((sum / 500.0).abs() < 0.2, "noise mean should be near zero");
    }
}
