//! The closed-loop world: environment plus vehicle plus mission bookkeeping.
//!
//! `World` plays the role of the paper's host simulator (Unreal Engine +
//! AirSim): it owns ground truth, advances the vehicle under flight
//! commands, detects collisions and goal arrival, and accumulates the
//! quality-of-flight raw measurements (flight time, mission energy,
//! trajectory).

use serde::{Deserialize, Serialize};

use crate::energy::{EnergyMeter, PowerModel};
use crate::env::Environment;
use crate::geometry::Vec3;
use crate::vehicle::{FlightCommand, Quadrotor, QuadrotorParams};

/// Terminal or in-progress status of a mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissionStatus {
    /// The mission is still running.
    InProgress,
    /// The vehicle reached the goal within tolerance.
    Succeeded,
    /// The vehicle hit an obstacle or left the world bounds.
    Collided,
    /// The mission exceeded the time budget without reaching the goal.
    TimedOut,
}

impl MissionStatus {
    /// Returns `true` for any terminal status.
    pub fn is_terminal(self) -> bool {
        self != Self::InProgress
    }

    /// Returns `true` only for a successful mission.
    pub fn is_success(self) -> bool {
        self == Self::Succeeded
    }
}

/// Configuration of a mission run inside a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionConfig {
    /// Distance from the goal at which the mission counts as complete (m).
    pub goal_tolerance: f64,
    /// Hard limit on mission duration (s).
    pub max_mission_time: f64,
    /// Simulation step used when integrating energy and trajectories (s).
    pub trail_sample_interval: f64,
}

impl Default for MissionConfig {
    fn default() -> Self {
        Self { goal_tolerance: 1.5, max_mission_time: 400.0, trail_sample_interval: 0.5 }
    }
}

/// The closed-loop simulation world.
///
/// # Examples
///
/// ```
/// use mavfi_sim::prelude::*;
///
/// let env = EnvironmentKind::Farm.build(1);
/// let mut world = World::new(env, QuadrotorParams::default(), PowerModel::default(), MissionConfig::default());
/// let cmd = FlightCommand::new(Vec3::new(1.0, 1.0, 0.0), 0.0);
/// world.step(&cmd, 0.1);
/// assert_eq!(world.status(), MissionStatus::InProgress);
/// assert!(world.elapsed() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    environment: Environment,
    vehicle: Quadrotor,
    power_model: PowerModel,
    config: MissionConfig,
    energy: EnergyMeter,
    elapsed: f64,
    status: MissionStatus,
    trail: Vec<Vec3>,
    distance_travelled: f64,
    last_trail_sample: f64,
}

impl World {
    /// Creates a world with the vehicle parked at the environment start.
    pub fn new(
        environment: Environment,
        params: QuadrotorParams,
        power_model: PowerModel,
        config: MissionConfig,
    ) -> Self {
        let start = environment.start();
        let goal = environment.goal();
        let initial_yaw = (goal - start).heading();
        let vehicle = Quadrotor::new(start, initial_yaw, params);
        Self {
            environment,
            vehicle,
            power_model,
            config,
            energy: EnergyMeter::new(),
            elapsed: 0.0,
            status: MissionStatus::InProgress,
            trail: vec![start],
            distance_travelled: 0.0,
            last_trail_sample: 0.0,
        }
    }

    /// The environment ground truth.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The simulated vehicle.
    pub fn vehicle(&self) -> &Quadrotor {
        &self.vehicle
    }

    /// The power model in use.
    pub fn power_model(&self) -> PowerModel {
        self.power_model
    }

    /// Elapsed mission time (s).
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Accumulated mission energy (J).
    pub fn energy_joules(&self) -> f64 {
        self.energy.joules()
    }

    /// Total distance flown (m).
    pub fn distance_travelled(&self) -> f64 {
        self.distance_travelled
    }

    /// Current mission status.
    pub fn status(&self) -> MissionStatus {
        self.status
    }

    /// Sampled trajectory (world-frame positions), starting at the start
    /// point.
    pub fn trail(&self) -> &[Vec3] {
        &self.trail
    }

    /// Distance from the vehicle to the goal (m).
    pub fn distance_to_goal(&self) -> f64 {
        self.vehicle.state().position.distance(self.environment.goal())
    }

    /// Advances the world by `dt` seconds under `command`.  Returns the
    /// status after the step.  Stepping a terminal world is a no-op.
    pub fn step(&mut self, command: &FlightCommand, dt: f64) -> MissionStatus {
        if self.status.is_terminal() {
            return self.status;
        }
        let before = self.vehicle.state().position;
        self.vehicle.step(command, dt);
        let after = self.vehicle.state().position;
        self.elapsed += dt;
        self.distance_travelled += after.distance(before);
        self.energy.add(self.power_model.instantaneous_power(self.vehicle.speed()), dt);

        if self.elapsed - self.last_trail_sample >= self.config.trail_sample_interval {
            self.trail.push(after);
            self.last_trail_sample = self.elapsed;
        }

        let radius = self.vehicle.params().radius;
        if !self.environment.is_free(after, radius) {
            self.status = MissionStatus::Collided;
        } else if self.distance_to_goal() <= self.config.goal_tolerance {
            self.status = MissionStatus::Succeeded;
        } else if self.elapsed >= self.config.max_mission_time {
            self.status = MissionStatus::TimedOut;
        }
        if self.status.is_terminal() {
            self.trail.push(after);
        }
        self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvironmentKind;

    fn farm_world() -> World {
        World::new(
            EnvironmentKind::Farm.build(1),
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        )
    }

    #[test]
    fn flying_towards_goal_succeeds_in_open_environment() {
        let mut world = farm_world();
        let mut steps = 0;
        while world.status() == MissionStatus::InProgress && steps < 20_000 {
            let to_goal = world.environment().goal() - world.vehicle().state().position;
            let cmd = FlightCommand::new(to_goal.clamp_norm(4.0), 0.0);
            world.step(&cmd, 0.1);
            steps += 1;
        }
        assert_eq!(world.status(), MissionStatus::Succeeded);
        assert!(world.elapsed() > 0.0);
        assert!(world.energy_joules() > 0.0);
        assert!(world.trail().len() > 2);
        assert!(world.distance_travelled() >= world.environment().mission_length() - 2.0);
    }

    #[test]
    fn hovering_times_out() {
        let config = MissionConfig { max_mission_time: 5.0, ..MissionConfig::default() };
        let mut world = World::new(
            EnvironmentKind::Farm.build(1),
            QuadrotorParams::default(),
            PowerModel::default(),
            config,
        );
        while world.status() == MissionStatus::InProgress {
            world.step(&FlightCommand::HOLD, 0.5);
        }
        assert_eq!(world.status(), MissionStatus::TimedOut);
        assert!((world.elapsed() - 5.0).abs() < 0.6);
    }

    #[test]
    fn flying_into_an_obstacle_collides() {
        let env = EnvironmentKind::Dense.build(2);
        // Aim straight at the first obstacle's center.
        let target = env.obstacles()[0].aabb.center();
        let mut world = World::new(
            env,
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        );
        let mut steps = 0;
        while world.status() == MissionStatus::InProgress && steps < 50_000 {
            let to_target = target - world.vehicle().state().position;
            world.step(&FlightCommand::new(to_target.clamp_norm(5.0), 0.0), 0.05);
            steps += 1;
        }
        assert_eq!(world.status(), MissionStatus::Collided);
    }

    #[test]
    fn terminal_world_ignores_further_steps() {
        let config = MissionConfig { max_mission_time: 1.0, ..MissionConfig::default() };
        let mut world = World::new(
            EnvironmentKind::Farm.build(1),
            QuadrotorParams::default(),
            PowerModel::default(),
            config,
        );
        while !world.status().is_terminal() {
            world.step(&FlightCommand::HOLD, 0.5);
        }
        let elapsed = world.elapsed();
        world.step(&FlightCommand::HOLD, 0.5);
        assert_eq!(world.elapsed(), elapsed);
    }

    #[test]
    fn status_helpers() {
        assert!(MissionStatus::Succeeded.is_terminal());
        assert!(MissionStatus::Succeeded.is_success());
        assert!(MissionStatus::Collided.is_terminal());
        assert!(!MissionStatus::Collided.is_success());
        assert!(!MissionStatus::InProgress.is_terminal());
    }
}
