//! Evaluation environments: cuboid-obstacle worlds matching the four
//! environments of the paper (UE *Factory*, UE *Farm*, generated *Sparse*
//! and *Dense*) plus the randomized training environments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::geometry::{Aabb, Vec3};

/// A single cuboid obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// The occupied volume.
    pub aabb: Aabb,
}

impl Obstacle {
    /// Creates an obstacle from its occupied volume.
    pub fn new(aabb: Aabb) -> Self {
        Self { aabb }
    }

    /// Convenience constructor from center and size.
    pub fn from_center(center: Vec3, size: Vec3) -> Self {
        Self { aabb: Aabb::from_center(center, size) }
    }
}

/// A navigation world: bounded free space, obstacles and a start/goal pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    name: String,
    bounds: Aabb,
    obstacles: Vec<Obstacle>,
    start: Vec3,
    goal: Vec3,
}

impl Environment {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics if `start` or `goal` lie outside `bounds`.
    pub fn new(
        name: impl Into<String>,
        bounds: Aabb,
        obstacles: Vec<Obstacle>,
        start: Vec3,
        goal: Vec3,
    ) -> Self {
        assert!(bounds.contains(start), "start must lie inside the environment bounds");
        assert!(bounds.contains(goal), "goal must lie inside the environment bounds");
        Self { name: name.into(), bounds, obstacles, start, goal }
    }

    /// Environment name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Free-space bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The obstacle list.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Mission start position.
    pub fn start(&self) -> Vec3 {
        self.start
    }

    /// Mission goal position.
    pub fn goal(&self) -> Vec3 {
        self.goal
    }

    /// Straight-line distance from start to goal.
    pub fn mission_length(&self) -> f64 {
        self.start.distance(self.goal)
    }

    /// Returns `true` if `point` is inside the bounds and outside every
    /// obstacle inflated by `margin`.
    pub fn is_free(&self, point: Vec3, margin: f64) -> bool {
        if !self.bounds.contains(point) {
            return false;
        }
        self.obstacles.iter().all(|obstacle| !obstacle.aabb.inflated(margin).contains(point))
    }

    /// Returns `true` if the straight segment between `a` and `b` stays
    /// clear of every obstacle inflated by `margin`.
    pub fn segment_clear(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        self.obstacles
            .iter()
            .all(|obstacle| !obstacle.aabb.inflated(margin).intersects_segment(a, b))
    }

    /// Distance from `point` to the nearest obstacle surface (approximated
    /// by obstacle centers minus half extents along the dominant axis), or
    /// `f64::INFINITY` when the environment is obstacle-free.
    pub fn nearest_obstacle_distance(&self, point: Vec3) -> f64 {
        self.obstacles
            .iter()
            .map(|obstacle| {
                let aabb = obstacle.aabb;
                let clamped = Vec3::new(
                    point.x.clamp(aabb.min.x, aabb.max.x),
                    point.y.clamp(aabb.min.y, aabb.max.y),
                    point.z.clamp(aabb.min.z, aabb.max.z),
                );
                clamped.distance(point)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Fraction of the bounding volume occupied by obstacles (an
    /// approximation of the paper's obstacle-density configuration knob).
    pub fn obstacle_density(&self) -> f64 {
        let bounds_size = self.bounds.size();
        let bounds_volume = bounds_size.x * bounds_size.y * bounds_size.z;
        if bounds_volume <= 0.0 {
            return 0.0;
        }
        let occupied: f64 = self
            .obstacles
            .iter()
            .map(|obstacle| {
                let size = obstacle.aabb.size();
                size.x * size.y * size.z
            })
            .sum();
        occupied / bounds_volume
    }
}

/// The four evaluation environments of the paper plus the randomized
/// training distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnvironmentKind {
    /// UE4 factory-like scene: walls and large blocks.
    Factory,
    /// UE4 farm scene: essentially obstacle-free with low hedges.
    Farm,
    /// Generated environment with configuration `[0.05, 6]`.
    Sparse,
    /// Generated environment with configuration `[0.2, 10]`.
    Dense,
    /// Randomized training environment drawn from the generator used to
    /// train the detectors (paper §V, "Training Environments").
    Randomized,
}

impl EnvironmentKind {
    /// All evaluation environments, in the order the paper's tables use.
    pub const EVALUATION: [Self; 4] = [Self::Factory, Self::Farm, Self::Sparse, Self::Dense];

    /// Short display name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Factory => "Factory",
            Self::Farm => "Farm",
            Self::Sparse => "Sparse",
            Self::Dense => "Dense",
            Self::Randomized => "Randomized",
        }
    }

    /// Builds the environment.  `seed` controls procedural generation; the
    /// hand-authored Factory and Farm layouts ignore it.
    pub fn build(self, seed: u64) -> Environment {
        match self {
            Self::Factory => factory(),
            Self::Farm => farm(),
            Self::Sparse => EnvironmentGenerator::new(0.05, 6.0).with_seed(seed).generate("Sparse"),
            Self::Dense => EnvironmentGenerator::new(0.2, 10.0).with_seed(seed).generate("Dense"),
            Self::Randomized => {
                let mut rng = StdRng::seed_from_u64(seed);
                let density = rng.gen_range(0.02..0.25);
                let side = rng.gen_range(3.0..12.0);
                EnvironmentGenerator::new(density, side).with_seed(rng.gen()).generate("Randomized")
            }
        }
    }
}

/// Procedural cuboid-obstacle environment generator, mirroring the UAV
/// environment generator of the paper (obstacle density plus obstacle side
/// length as the configuration pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentGenerator {
    density: f64,
    side_length: f64,
    bounds: Aabb,
    seed: u64,
    altitude: f64,
}

/// Default world extent (meters) used by the generator.
const WORLD_HALF_EXTENT: f64 = 40.0;
/// Default flight altitude used for start and goal.
const FLIGHT_ALTITUDE: f64 = 2.5;
/// Clearance between start/goal and the nearest obstacle *edge*, so missions
/// always begin and end in free space with room to maneuver.  The generator
/// adds the obstacle's own half-diagonal on top of this, since a cuboid whose
/// center clears a fixed radius can still cover the corner points when its
/// side length is large (Dense uses 10 m cubes, Randomized up to 12 m).
const KEEP_OUT_CLEARANCE: f64 = 2.0;

impl EnvironmentGenerator {
    /// Creates a generator from the paper's `[density, side length]`
    /// configuration pair.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not within `[0, 1)` or `side_length` is not
    /// positive and finite.
    pub fn new(density: f64, side_length: f64) -> Self {
        assert!((0.0..1.0).contains(&density), "obstacle density must be in [0, 1)");
        assert!(side_length > 0.0 && side_length.is_finite(), "side length must be positive");
        Self {
            density,
            side_length,
            bounds: Aabb::new(
                Vec3::new(-WORLD_HALF_EXTENT, -WORLD_HALF_EXTENT, 0.0),
                Vec3::new(WORLD_HALF_EXTENT, WORLD_HALF_EXTENT, 12.0),
            ),
            seed: 0,
            altitude: FLIGHT_ALTITUDE,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the world bounds (builder style).
    pub fn with_bounds(mut self, bounds: Aabb) -> Self {
        self.bounds = bounds;
        self
    }

    /// Configured obstacle density.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Configured obstacle side length in meters.
    pub fn side_length(&self) -> f64 {
        self.side_length
    }

    /// Generates an environment.
    pub fn generate(&self, name: impl Into<String>) -> Environment {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size = self.bounds.size();
        let ground_area = size.x * size.y;
        let obstacle_footprint = self.side_length * self.side_length;
        let target_count = ((ground_area * self.density) / obstacle_footprint).round() as usize;

        let start = Vec3::new(self.bounds.min.x + 4.0, self.bounds.min.y + 4.0, self.altitude);
        let goal = Vec3::new(self.bounds.max.x - 4.0, self.bounds.max.y - 4.0, self.altitude);

        let mut obstacles = Vec::with_capacity(target_count);
        let mut attempts = 0usize;
        while obstacles.len() < target_count && attempts < target_count * 20 + 100 {
            attempts += 1;
            let cx = rng.gen_range(self.bounds.min.x + 1.0..self.bounds.max.x - 1.0);
            let cy = rng.gen_range(self.bounds.min.y + 1.0..self.bounds.max.y - 1.0);
            let height = rng.gen_range(self.side_length * 0.8..self.side_length * 1.6);
            let center = Vec3::new(cx, cy, height / 2.0);
            let keep_out = self.side_length * 0.5 * std::f64::consts::SQRT_2 + KEEP_OUT_CLEARANCE;
            if center.distance_xy(start) < keep_out || center.distance_xy(goal) < keep_out {
                continue;
            }
            obstacles.push(Obstacle::from_center(
                center,
                Vec3::new(self.side_length, self.side_length, height),
            ));
        }

        Environment::new(name, self.bounds, obstacles, start, goal)
    }
}

/// Hand-authored factory layout: perimeter walls with door gaps and a grid
/// of machine blocks.
fn factory() -> Environment {
    let bounds = Aabb::new(Vec3::new(-35.0, -25.0, 0.0), Vec3::new(35.0, 25.0, 10.0));
    let mut obstacles = Vec::new();

    // Two long interior walls with gaps, forcing an S-shaped route.
    for (y, gap_x) in [(-8.0, 20.0), (8.0, -20.0)] {
        for segment in -3..=3 {
            let cx = segment as f64 * 10.0;
            if (cx - gap_x).abs() < 5.0 {
                continue;
            }
            obstacles.push(Obstacle::from_center(Vec3::new(cx, y, 3.0), Vec3::new(9.0, 1.0, 6.0)));
        }
    }

    // Machine blocks scattered on a coarse grid.
    for gx in [-25.0, -12.0, 0.0, 12.0, 25.0] {
        for gy in [-18.0, 0.0, 18.0] {
            // Leave the start and goal corners clear.
            if (gx < -20.0 && gy < -15.0) || (gx > 20.0 && gy > 15.0) {
                continue;
            }
            obstacles.push(Obstacle::from_center(Vec3::new(gx, gy, 2.0), Vec3::new(4.0, 4.0, 4.0)));
        }
    }

    Environment::new(
        "Factory",
        bounds,
        obstacles,
        Vec3::new(-31.0, -21.0, FLIGHT_ALTITUDE),
        Vec3::new(31.0, 21.0, FLIGHT_ALTITUDE),
    )
}

/// Hand-authored farm layout: essentially obstacle-free with a few low
/// hedges, matching the paper's description of Farm as the easiest scene.
fn farm() -> Environment {
    let bounds = Aabb::new(Vec3::new(-40.0, -40.0, 0.0), Vec3::new(40.0, 40.0, 12.0));
    let mut obstacles = Vec::new();
    for y in [-20.0, 0.0, 20.0] {
        obstacles.push(Obstacle::from_center(Vec3::new(0.0, y, 0.75), Vec3::new(30.0, 1.0, 1.5)));
    }
    Environment::new(
        "Farm",
        bounds,
        obstacles,
        Vec3::new(-36.0, -36.0, FLIGHT_ALTITUDE),
        Vec3::new(36.0, 36.0, FLIGHT_ALTITUDE),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_density_scales_obstacle_count() {
        let sparse = EnvironmentGenerator::new(0.05, 6.0).with_seed(1).generate("Sparse");
        let dense = EnvironmentGenerator::new(0.2, 10.0).with_seed(1).generate("Dense");
        assert!(!sparse.obstacles().is_empty());
        assert!(!dense.obstacles().is_empty());
        assert!(dense.obstacle_density() > sparse.obstacle_density());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = EnvironmentKind::Sparse.build(42);
        let b = EnvironmentKind::Sparse.build(42);
        let c = EnvironmentKind::Sparse.build(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn start_and_goal_are_free_in_every_evaluation_environment() {
        for kind in EnvironmentKind::EVALUATION {
            let env = kind.build(7);
            assert!(env.is_free(env.start(), 0.5), "{} start blocked", env.name());
            assert!(env.is_free(env.goal(), 0.5), "{} goal blocked", env.name());
            assert!(env.mission_length() > 10.0);
        }
    }

    #[test]
    fn keep_out_accounts_for_obstacle_footprint_across_seeds() {
        // Regression: 10 m Dense cubes whose centers cleared the old fixed
        // 6 m radius could still cover the start/goal corners (seeds 0 and 8
        // were unplannable for every planner).  The planners query with a
        // 0.7 m margin, so demand at least that much clearance everywhere.
        for seed in 0..12 {
            for kind in
                [EnvironmentKind::Sparse, EnvironmentKind::Dense, EnvironmentKind::Randomized]
            {
                let env = kind.build(seed);
                assert!(env.is_free(env.start(), 0.7), "{} seed {seed} start blocked", env.name());
                assert!(env.is_free(env.goal(), 0.7), "{} seed {seed} goal blocked", env.name());
            }
        }
    }

    #[test]
    fn farm_is_nearly_obstacle_free() {
        let farm = EnvironmentKind::Farm.build(0);
        let dense = EnvironmentKind::Dense.build(0);
        assert!(farm.obstacles().len() < dense.obstacles().len());
        assert!(farm.obstacle_density() < 0.01);
    }

    #[test]
    fn is_free_respects_margin() {
        let obstacle = Obstacle::from_center(Vec3::new(5.0, 0.0, 1.0), Vec3::splat(2.0));
        let env = Environment::new(
            "unit",
            Aabb::new(Vec3::new(-10.0, -10.0, 0.0), Vec3::new(10.0, 10.0, 10.0)),
            vec![obstacle],
            Vec3::new(-9.0, 0.0, 1.0),
            Vec3::new(9.0, 0.0, 1.0),
        );
        assert!(env.is_free(Vec3::new(3.7, 0.0, 1.0), 0.0));
        assert!(!env.is_free(Vec3::new(3.7, 0.0, 1.0), 0.5));
        assert!(!env.is_free(Vec3::new(50.0, 0.0, 1.0), 0.0), "outside bounds is not free");
    }

    #[test]
    fn segment_clear_detects_blocked_paths() {
        let env = EnvironmentKind::Factory.build(0);
        // The straight line from start to goal crosses interior walls.
        assert!(!env.segment_clear(env.start(), env.goal(), 0.3));
        // A tiny segment at the start is clear.
        let near_start = env.start() + Vec3::new(0.5, 0.0, 0.0);
        assert!(env.segment_clear(env.start(), near_start, 0.3));
    }

    #[test]
    fn nearest_obstacle_distance_decreases_towards_obstacles() {
        let env = EnvironmentKind::Dense.build(3);
        let far = env.nearest_obstacle_distance(env.start());
        assert!(far > 0.0);
        let center = env.obstacles()[0].aabb.center();
        assert_eq!(env.nearest_obstacle_distance(center), 0.0);
    }

    #[test]
    fn randomized_environments_differ_across_seeds() {
        let a = EnvironmentKind::Randomized.build(1);
        let b = EnvironmentKind::Randomized.build(2);
        assert_ne!(a.obstacles().len(), 0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn invalid_density_panics() {
        let _ = EnvironmentGenerator::new(1.5, 6.0);
    }
}
