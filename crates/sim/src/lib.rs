//! `mavfi-sim` is the closed-loop micro-aerial-vehicle simulation substrate
//! of the MAVFI reproduction.  It stands in for the Unreal Engine + AirSim +
//! MAVBench host simulator of the paper: procedurally generated and
//! hand-authored obstacle environments, a kinematic quadrotor, a depth
//! camera and IMU, a power/energy model, and the [`world::World`] that ties
//! them together into a steppable mission.
//!
//! # Examples
//!
//! ```
//! use mavfi_sim::prelude::*;
//!
//! let env = EnvironmentKind::Sparse.build(42);
//! let mut world = World::new(
//!     env,
//!     QuadrotorParams::default(),
//!     PowerModel::default(),
//!     MissionConfig::default(),
//! );
//! world.step(&FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0), 0.1);
//! assert!(world.elapsed() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod energy;
pub mod env;
pub mod geometry;
pub mod sensors;
pub mod vehicle;
pub mod world;

pub use energy::{EnergyMeter, PowerModel};
pub use env::{Environment, EnvironmentGenerator, EnvironmentKind, Obstacle};
pub use geometry::{Aabb, Pose, Vec3};
pub use sensors::{CaptureScratch, DepthCamera, DepthFrame, Imu, ImuSample};
pub use vehicle::{FlightCommand, Quadrotor, QuadrotorParams, QuadrotorState};
pub use world::{MissionConfig, MissionStatus, World};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::energy::{EnergyMeter, PowerModel};
    pub use crate::env::{Environment, EnvironmentGenerator, EnvironmentKind, Obstacle};
    pub use crate::geometry::{Aabb, Pose, Vec3};
    pub use crate::sensors::{CaptureScratch, DepthCamera, DepthFrame, Imu, ImuSample};
    pub use crate::vehicle::{FlightCommand, Quadrotor, QuadrotorParams, QuadrotorState};
    pub use crate::world::{MissionConfig, MissionStatus, World};
}
