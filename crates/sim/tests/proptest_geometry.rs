//! Property-based tests for the geometry and environment substrates.

use mavfi_sim::geometry::{wrap_angle, Aabb, Vec3};
use mavfi_sim::EnvironmentGenerator;
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0_f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_coord(), finite_coord(), finite_coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vector_addition_commutes(a in vec3(), b in vec3()) {
        let left = a + b;
        let right = b + a;
        prop_assert!((left - right).norm() < 1e-9);
    }

    #[test]
    fn norm_is_non_negative_and_triangle_inequality_holds(a in vec3(), b in vec3()) {
        prop_assert!(a.norm() >= 0.0);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn normalized_vectors_have_unit_norm(a in vec3()) {
        if let Some(unit) = a.normalized() {
            prop_assert!((unit.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clamp_norm_never_exceeds_limit(a in vec3(), limit in 0.01..50.0_f64) {
        prop_assert!(a.clamp_norm(limit).norm() <= limit + 1e-9);
    }

    #[test]
    fn aabb_contains_its_center_and_corners(a in vec3(), b in vec3()) {
        let aabb = Aabb::new(a, b);
        prop_assert!(aabb.contains(aabb.center()));
        prop_assert!(aabb.contains(aabb.min));
        prop_assert!(aabb.contains(aabb.max));
    }

    #[test]
    fn segment_intersection_is_symmetric(a in vec3(), b in vec3(), c in vec3(), d in vec3()) {
        let aabb = Aabb::new(a, b);
        prop_assert_eq!(aabb.intersects_segment(c, d), aabb.intersects_segment(d, c));
    }

    #[test]
    fn segment_with_endpoint_inside_always_intersects(a in vec3(), b in vec3(), outside in vec3()) {
        let aabb = Aabb::new(a, b);
        let inside = aabb.center();
        prop_assert!(aabb.intersects_segment(inside, outside));
    }

    #[test]
    fn wrap_angle_is_idempotent_and_bounded(angle in -100.0..100.0_f64) {
        let wrapped = wrap_angle(angle);
        prop_assert!(wrapped > -std::f64::consts::PI - 1e-12);
        prop_assert!(wrapped <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_angle(wrapped) - wrapped).abs() < 1e-12);
    }

    #[test]
    fn generated_environments_keep_start_and_goal_free(
        density in 0.01..0.3_f64,
        side in 2.0..12.0_f64,
        seed in 0u64..500,
    ) {
        let env = EnvironmentGenerator::new(density, side).with_seed(seed).generate("prop");
        prop_assert!(env.is_free(env.start(), 0.5));
        prop_assert!(env.is_free(env.goal(), 0.5));
        prop_assert!(env.bounds().contains(env.start()));
        prop_assert!(env.bounds().contains(env.goal()));
    }
}
