//! Property-based tests of the fault-injection substrate: bit flips, fault
//! models, severity classification and campaign planning.

use mavfi_fault::bitflip::{flip_bit, BitField};
use mavfi_fault::campaign::{CampaignPlan, TriggerWindow};
use mavfi_fault::model::{BitSelection, FaultModel};
use mavfi_fault::severity::{classify, FlipSurvey, Severity, SeverityThresholds};
use mavfi_fault::target::InjectionTarget;
use mavfi_ppc::states::Stage;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Flipping the same bit twice restores the original bit pattern.
    #[test]
    fn bit_flips_are_involutions(value in any::<f64>(), bit in 0u8..64) {
        let flipped = flip_bit(value, bit);
        prop_assert_eq!(flip_bit(flipped, bit).to_bits(), value.to_bits());
        // A flip always changes exactly one bit of the representation.
        prop_assert_eq!((flipped.to_bits() ^ value.to_bits()).count_ones(), 1);
    }

    /// Every bit index belongs to exactly the field whose range contains it.
    #[test]
    fn bit_field_classification_matches_ranges(bit in 0u8..64) {
        let field = BitField::of_bit(bit);
        prop_assert!(field.bit_range().contains(&bit));
        for other in BitField::ALL {
            if other != field {
                prop_assert!(!other.bit_range().contains(&bit));
            }
        }
    }

    /// The single-bit-flip model is deterministic per seed and restricted
    /// selections stay inside their field.
    #[test]
    fn in_field_selection_is_honoured(value in -1.0e12f64..1.0e12, seed in any::<u64>()) {
        for field in BitField::ALL {
            let model = FaultModel::single_bit_in(field);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let (corrupted_a, detail_a) = model.apply(value, &mut rng_a);
            let (corrupted_b, _) = model.apply(value, &mut rng_b);
            prop_assert_eq!(corrupted_a.to_bits(), corrupted_b.to_bits());
            prop_assert_eq!(detail_a.field, Some(field));
            prop_assert!(field.bit_range().contains(&detail_a.bit.unwrap()));
        }
    }

    /// Multi-bit flips change exactly the requested number of bits when
    /// selection is uniform.
    #[test]
    fn multi_bit_flip_changes_exactly_n_bits(
        value in -1.0e12f64..1.0e12,
        bits in 1u8..16,
        seed in any::<u64>(),
    ) {
        let model = FaultModel::MultiBitFlip { bits, selection: BitSelection::UniformRandom };
        let mut rng = StdRng::seed_from_u64(seed);
        let (corrupted, _) = model.apply(value, &mut rng);
        prop_assert_eq!(
            (corrupted.to_bits() ^ value.to_bits()).count_ones(),
            u32::from(bits)
        );
    }

    /// Severity classification is total, and `Identical` appears exactly when
    /// the bit patterns agree.
    #[test]
    fn severity_is_total_and_identical_is_exact(
        original in any::<f64>(),
        corrupted in any::<f64>(),
    ) {
        prop_assume!(original.is_finite());
        let severity = classify(original, corrupted, SeverityThresholds::default());
        prop_assert!(Severity::ALL.contains(&severity));
        if corrupted.to_bits() == original.to_bits() {
            prop_assert_eq!(severity, Severity::Identical);
        } else {
            prop_assert_ne!(severity, Severity::Identical);
        }
        if corrupted.is_nan() || corrupted.is_infinite() {
            prop_assert_eq!(severity, Severity::NonFinite);
        }
    }

    /// A flip survey counts every flip of every value exactly once and its
    /// per-field fractions are proper probabilities.
    #[test]
    fn flip_survey_is_complete(values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..30)) {
        let survey = FlipSurvey::over_values(&values, SeverityThresholds::default());
        prop_assert_eq!(survey.total(), values.len() as u64 * 64);
        let mut per_field_total = 0;
        for field in BitField::ALL {
            per_field_total += survey.total_in_field(field);
            prop_assert!((0.0..=1.0).contains(&survey.harmful_fraction(field)));
            prop_assert!((0.0..=1.0).contains(&survey.masked_fraction(field)));
        }
        prop_assert_eq!(per_field_total, survey.total());
    }

    /// Campaign plans have exactly runs-per-target experiments per target,
    /// all trigger ticks inside the window, and are seed-deterministic.
    #[test]
    fn campaign_plans_are_well_formed(
        runs in 1usize..20,
        start in 0u64..100,
        width in 1u64..200,
        seed in any::<u64>(),
    ) {
        let window = TriggerWindow::new(start, start + width);
        let targets = [
            InjectionTarget::Stage(Stage::Perception),
            InjectionTarget::Stage(Stage::Planning),
            InjectionTarget::Stage(Stage::Control),
        ];
        let plan = CampaignPlan::new(&targets, runs, FaultModel::default(), window, seed);
        prop_assert_eq!(plan.len(), targets.len() * runs);
        for spec in plan.specs() {
            prop_assert!((start..start + width).contains(&spec.trigger_tick));
        }
        for stage in Stage::ALL {
            prop_assert_eq!(plan.specs_for_stage(stage).count(), runs);
        }
        let again = CampaignPlan::new(&targets, runs, FaultModel::default(), window, seed);
        prop_assert_eq!(plan, again);
    }
}
