//! Recurring fault injection: intermittent and permanent faults.
//!
//! The paper's model is a one-time transient single-bit upset
//! ([`FaultInjector`](crate::injector::FaultInjector)).  Real silent data
//! corruption also shows up as *intermittent* faults (the same marginal
//! circuit misbehaving every so often — the "cores that don't count"
//! failure mode the paper cites) and *permanent* stuck-at faults.  This
//! module provides a stage tap that re-applies a fault on a schedule, used
//! by the extended resilience studies.

use mavfi_ppc::states::{CollisionEstimate, StateField, Trajectory};
use mavfi_ppc::tap::{StageTap, TapAction};
use mavfi_sim::vehicle::FlightCommand;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::injector::FaultSpec;
use crate::model::CorruptionDetail;
use crate::target::InjectionTarget;

/// How often a recurring fault re-fires once its trigger tick is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recurrence {
    /// Fire exactly once (equivalent to the paper's transient model).
    Transient,
    /// Fire every `period` ticks, at most `max_occurrences` times
    /// (0 = unlimited).
    Intermittent {
        /// Ticks between consecutive firings.
        period: u64,
        /// Maximum number of firings; 0 means no limit.
        max_occurrences: u64,
    },
    /// Fire on every tick from the trigger tick onward (a permanent fault).
    Permanent,
}

impl Recurrence {
    fn fires(&self, ticks_since_trigger: u64, occurrences_so_far: u64) -> bool {
        match *self {
            Self::Transient => occurrences_so_far == 0,
            Self::Intermittent { period, max_occurrences } => {
                let within_budget = max_occurrences == 0 || occurrences_so_far < max_occurrences;
                within_budget && period > 0 && ticks_since_trigger % period == 0
            }
            Self::Permanent => true,
        }
    }
}

/// Specification of a recurring fault: a base [`FaultSpec`] plus its
/// recurrence schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecurringFaultSpec {
    /// The target, model, trigger tick and seed of each individual firing.
    pub base: FaultSpec,
    /// How often the fault re-fires.
    pub recurrence: Recurrence,
}

impl RecurringFaultSpec {
    /// A transient recurring fault, behaving like the one-shot injector.
    pub fn transient(base: FaultSpec) -> Self {
        Self { base, recurrence: Recurrence::Transient }
    }

    /// An intermittent fault firing every `period` ticks.
    pub fn intermittent(base: FaultSpec, period: u64, max_occurrences: u64) -> Self {
        Self { base, recurrence: Recurrence::Intermittent { period, max_occurrences } }
    }

    /// A permanent fault firing on every tick from the trigger onward.
    pub fn permanent(base: FaultSpec) -> Self {
        Self { base, recurrence: Recurrence::Permanent }
    }
}

/// A stage tap that applies a fault repeatedly according to its recurrence
/// schedule.  Only scalar inter-kernel state targets
/// ([`InjectionTarget::State`] and [`InjectionTarget::Stage`]) are
/// supported; kernel-structure targets (point cloud, occupancy map) remain
/// the domain of the one-shot [`FaultInjector`](crate::injector::FaultInjector).
#[derive(Debug, Clone)]
pub struct RecurringInjector {
    spec: RecurringFaultSpec,
    rng: StdRng,
    current_tick: u64,
    ticks_seen: u64,
    occurrences: Vec<FaultOccurrence>,
}

/// Record of one firing of a recurring fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOccurrence {
    /// Tick at which this firing happened.
    pub tick: u64,
    /// The corrupted scalar field.
    pub field: StateField,
    /// Details of the value corruption.
    pub detail: CorruptionDetail,
}

impl RecurringInjector {
    /// Creates an injector for one recurring-fault experiment.
    pub fn new(spec: RecurringFaultSpec) -> Self {
        Self {
            spec,
            rng: StdRng::seed_from_u64(spec.base.seed),
            current_tick: 0,
            ticks_seen: 0,
            occurrences: Vec::new(),
        }
    }

    /// The experiment specification.
    pub fn spec(&self) -> RecurringFaultSpec {
        self.spec
    }

    /// Every firing recorded so far, in tick order.
    pub fn occurrences(&self) -> &[FaultOccurrence] {
        &self.occurrences
    }

    /// Number of firings so far.
    pub fn occurrence_count(&self) -> u64 {
        self.occurrences.len() as u64
    }

    fn armed(&self) -> bool {
        if self.current_tick < self.spec.base.trigger_tick {
            return false;
        }
        let since_trigger = self.current_tick - self.spec.base.trigger_tick;
        self.spec.recurrence.fires(since_trigger, self.occurrence_count())
    }

    /// The scalar field this injector corrupts on the hook of `stage`, if
    /// any.
    fn field_for_stage(&mut self, stage: mavfi_ppc::states::Stage) -> Option<StateField> {
        match self.spec.base.target {
            InjectionTarget::State(field) if field.stage() == stage => Some(field),
            InjectionTarget::Stage(target) if target == stage => {
                use rand::seq::SliceRandom;
                let fields: Vec<StateField> =
                    StateField::ALL.into_iter().filter(|field| field.stage() == stage).collect();
                fields.choose(&mut self.rng).copied()
            }
            _ => None,
        }
    }

    fn corrupt(&mut self, field: StateField, value: &mut f64) {
        let (corrupted, detail) = self.spec.base.model.apply(*value, &mut self.rng);
        *value = corrupted;
        self.occurrences.push(FaultOccurrence { tick: self.current_tick, field, detail });
    }
}

impl StageTap for RecurringInjector {
    fn after_point_cloud(&mut self, _cloud: &mut mavfi_ppc::states::PointCloud) {
        self.current_tick = self.ticks_seen;
        self.ticks_seen += 1;
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        if self.armed() {
            if let Some(field) = self.field_for_stage(mavfi_ppc::states::Stage::Perception) {
                let mut value = match field {
                    StateField::TimeToCollision => estimate.time_to_collision,
                    _ => estimate.future_collision_seq,
                };
                if !value.is_finite() {
                    value = 1.0e6;
                }
                self.corrupt(field, &mut value);
                match field {
                    StateField::TimeToCollision => estimate.time_to_collision = value,
                    _ => estimate.future_collision_seq = value,
                }
            }
        }
        TapAction::Continue
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        if self.armed() && !trajectory.is_empty() {
            if let Some(field) = self.field_for_stage(mavfi_ppc::states::Stage::Planning) {
                let index = active_index.min(trajectory.len() - 1);
                let waypoint = &mut trajectory.waypoints[index];
                let mut value = match field {
                    StateField::WaypointX => waypoint.position.x,
                    StateField::WaypointY => waypoint.position.y,
                    StateField::WaypointZ => waypoint.position.z,
                    StateField::WaypointYaw => waypoint.yaw,
                    StateField::WaypointVx => waypoint.velocity.x,
                    StateField::WaypointVy => waypoint.velocity.y,
                    _ => waypoint.velocity.z,
                };
                self.corrupt(field, &mut value);
                match field {
                    StateField::WaypointX => waypoint.position.x = value,
                    StateField::WaypointY => waypoint.position.y = value,
                    StateField::WaypointZ => waypoint.position.z = value,
                    StateField::WaypointYaw => waypoint.yaw = value,
                    StateField::WaypointVx => waypoint.velocity.x = value,
                    StateField::WaypointVy => waypoint.velocity.y = value,
                    _ => waypoint.velocity.z = value,
                }
            }
        }
        TapAction::Continue
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        if self.armed() {
            if let Some(field) = self.field_for_stage(mavfi_ppc::states::Stage::Control) {
                let mut value = match field {
                    StateField::CommandVx => command.velocity.x,
                    StateField::CommandVy => command.velocity.y,
                    StateField::CommandVz => command.velocity.z,
                    _ => command.yaw_rate,
                };
                self.corrupt(field, &mut value);
                match field {
                    StateField::CommandVx => command.velocity.x = value,
                    StateField::CommandVy => command.velocity.y = value,
                    StateField::CommandVz => command.velocity.z = value,
                    _ => command.yaw_rate = value,
                }
            }
        }
        TapAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BitSelection, FaultModel};
    use mavfi_ppc::states::PointCloud;
    use mavfi_sim::geometry::Vec3;

    fn command_fault(model: FaultModel, trigger: u64) -> FaultSpec {
        FaultSpec {
            target: InjectionTarget::State(StateField::CommandVx),
            model,
            trigger_tick: trigger,
            seed: 11,
        }
    }

    fn drive_ticks(injector: &mut RecurringInjector, ticks: u64) -> u64 {
        let mut fired = 0;
        for _ in 0..ticks {
            injector.after_point_cloud(&mut PointCloud::default());
            let before = injector.occurrence_count();
            let mut command = FlightCommand::new(Vec3::new(2.0, 0.0, 0.0), 0.0);
            injector.after_control(&mut command);
            if injector.occurrence_count() > before {
                fired += 1;
            }
        }
        fired
    }

    #[test]
    fn transient_recurrence_fires_exactly_once() {
        let spec = RecurringFaultSpec::transient(command_fault(FaultModel::default(), 3));
        let mut injector = RecurringInjector::new(spec);
        let fired = drive_ticks(&mut injector, 20);
        assert_eq!(fired, 1);
        assert_eq!(injector.occurrences()[0].tick, 3);
        assert_eq!(injector.occurrences()[0].field, StateField::CommandVx);
    }

    #[test]
    fn intermittent_recurrence_fires_on_its_period() {
        let spec = RecurringFaultSpec::intermittent(
            command_fault(FaultModel::StuckAt { value: 0.0 }, 2),
            5,
            0,
        );
        let mut injector = RecurringInjector::new(spec);
        let fired = drive_ticks(&mut injector, 22);
        // Trigger at tick 2, then every 5 ticks: 2, 7, 12, 17 within 22 ticks.
        assert_eq!(fired, 4);
        let ticks: Vec<u64> = injector.occurrences().iter().map(|o| o.tick).collect();
        assert_eq!(ticks, vec![2, 7, 12, 17]);
    }

    #[test]
    fn intermittent_occurrence_budget_is_respected() {
        let spec = RecurringFaultSpec::intermittent(
            command_fault(FaultModel::StuckAt { value: 9.0 }, 0),
            2,
            3,
        );
        let mut injector = RecurringInjector::new(spec);
        let fired = drive_ticks(&mut injector, 50);
        assert_eq!(fired, 3);
    }

    #[test]
    fn permanent_recurrence_fires_every_tick_after_the_trigger() {
        let spec = RecurringFaultSpec::permanent(command_fault(
            FaultModel::SingleBitFlip { selection: BitSelection::Exact(63) },
            4,
        ));
        let mut injector = RecurringInjector::new(spec);
        let fired = drive_ticks(&mut injector, 10);
        assert_eq!(fired, 6);
        assert!(injector.occurrences().iter().all(|o| o.tick >= 4));
    }

    #[test]
    fn stage_target_corrupts_some_field_of_that_stage() {
        let base = FaultSpec {
            target: InjectionTarget::Stage(mavfi_ppc::states::Stage::Planning),
            model: FaultModel::default(),
            trigger_tick: 0,
            seed: 5,
        };
        let mut injector = RecurringInjector::new(RecurringFaultSpec::permanent(base));
        injector.after_point_cloud(&mut PointCloud::default());
        let mut trajectory = Trajectory::new(vec![mavfi_ppc::states::Waypoint::default(); 3]);
        injector.after_planning(&mut trajectory, 1);
        assert_eq!(injector.occurrence_count(), 1);
        assert_eq!(injector.occurrences()[0].field.stage(), mavfi_ppc::states::Stage::Planning);
    }

    #[test]
    fn kernel_targets_are_ignored_by_the_recurring_injector() {
        let base = FaultSpec {
            target: InjectionTarget::Kernel(mavfi_ppc::kernel::KernelId::OctoMap),
            model: FaultModel::default(),
            trigger_tick: 0,
            seed: 5,
        };
        let mut injector = RecurringInjector::new(RecurringFaultSpec::permanent(base));
        let fired = drive_ticks(&mut injector, 10);
        assert_eq!(fired, 0);
    }
}
