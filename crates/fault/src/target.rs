//! Injection targets: where in the PPC pipeline the fault lands.

use mavfi_ppc::kernel::KernelId;
use mavfi_ppc::states::{Stage, StateField};
use serde::{Deserialize, Serialize};

/// Where a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InjectionTarget {
    /// Corrupt the output of one specific kernel (the paper's Fig. 3
    /// per-kernel sensitivity study).
    Kernel(KernelId),
    /// Corrupt one specific monitored inter-kernel state (Fig. 4).
    State(StateField),
    /// Corrupt a randomly chosen inter-kernel state of one stage (the
    /// Table I / Fig. 6 campaigns inject 100 faults per PPC stage).
    Stage(Stage),
}

impl InjectionTarget {
    /// The pipeline stage this target affects.
    pub fn stage(self) -> Stage {
        match self {
            Self::Kernel(kernel) => kernel.stage(),
            Self::State(field) => field.stage(),
            Self::Stage(stage) => stage,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> String {
        match self {
            Self::Kernel(kernel) => kernel.label().to_owned(),
            Self::State(field) => field.label().to_owned(),
            Self::Stage(stage) => stage.label().to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_stage_is_consistent() {
        assert_eq!(InjectionTarget::Kernel(KernelId::OctoMap).stage(), Stage::Perception);
        assert_eq!(InjectionTarget::Kernel(KernelId::RrtStar).stage(), Stage::Planning);
        assert_eq!(InjectionTarget::State(StateField::CommandVx).stage(), Stage::Control);
        assert_eq!(InjectionTarget::Stage(Stage::Planning).stage(), Stage::Planning);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(InjectionTarget::Kernel(KernelId::Pid).label(), "PID");
        assert_eq!(InjectionTarget::State(StateField::WaypointX).label(), "waypoint_x");
        assert_eq!(InjectionTarget::Stage(Stage::Control).label(), "Control");
    }
}
