//! `mavfi-fault` provides MAVFI's fault-injection machinery: the single-bit
//! flip fault model over IEEE-754 doubles, injection targets at kernel /
//! inter-kernel-state / stage granularity, the one-shot [`FaultInjector`]
//! stage tap, and campaign planning for the paper's 100-runs-per-target
//! experiments.
//!
//! # Examples
//!
//! ```
//! use mavfi_fault::prelude::*;
//!
//! // Plan the Fig. 3 campaign: 100 single-bit injections per kernel.
//! let plan = CampaignPlan::per_kernel(100, 42);
//! assert_eq!(plan.len(), 700);
//! let first = plan.specs()[0];
//! let injector = FaultInjector::new(first);
//! assert!(!injector.has_fired());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitflip;
pub mod campaign;
pub mod injector;
pub mod model;
pub mod recurring;
pub mod severity;
pub mod target;

pub use bitflip::{flip_bit, flip_is_masked, BitField};
pub use campaign::{CampaignPlan, TriggerWindow};
pub use injector::{FaultInjector, FaultRecord, FaultSpec};
pub use model::{BitSelection, CorruptionDetail, FaultModel};
pub use recurring::{FaultOccurrence, Recurrence, RecurringFaultSpec, RecurringInjector};
pub use severity::{classify, classify_detail, FlipSurvey, Severity, SeverityThresholds};
pub use target::InjectionTarget;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::bitflip::{flip_bit, BitField};
    pub use crate::campaign::{CampaignPlan, TriggerWindow};
    pub use crate::injector::{FaultInjector, FaultRecord, FaultSpec};
    pub use crate::model::{BitSelection, FaultModel};
    pub use crate::recurring::{
        FaultOccurrence, Recurrence, RecurringFaultSpec, RecurringInjector,
    };
    pub use crate::severity::{
        classify, classify_detail, FlipSurvey, Severity, SeverityThresholds,
    };
    pub use crate::target::InjectionTarget;
}
