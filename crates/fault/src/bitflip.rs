//! Bit-level manipulation of IEEE-754 doubles: the raw mechanism behind the
//! single-bit-flip fault model.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three bit fields of an IEEE-754 double.
///
/// The paper observes (§III-B) that flips in the sign and exponent fields
/// dominate the impact on UAV behaviour, which both the fault model and the
/// detectors' preprocessing exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitField {
    /// Bit 63.
    Sign,
    /// Bits 52–62.
    Exponent,
    /// Bits 0–51.
    Mantissa,
}

impl BitField {
    /// All fields.
    pub const ALL: [Self; 3] = [Self::Sign, Self::Exponent, Self::Mantissa];

    /// The inclusive bit-index range of this field.
    pub fn bit_range(self) -> std::ops::RangeInclusive<u8> {
        match self {
            Self::Sign => 63..=63,
            Self::Exponent => 52..=62,
            Self::Mantissa => 0..=51,
        }
    }

    /// Number of bits in this field.
    pub fn width(self) -> u32 {
        let range = self.bit_range();
        (*range.end() - *range.start() + 1) as u32
    }

    /// Classifies a bit index into its field.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not in `0..64`.
    pub fn of_bit(bit: u8) -> Self {
        assert!(bit < 64, "f64 has 64 bits");
        match bit {
            63 => Self::Sign,
            52..=62 => Self::Exponent,
            _ => Self::Mantissa,
        }
    }

    /// Draws a uniformly random bit index within this field.
    pub fn random_bit<R: Rng>(self, rng: &mut R) -> u8 {
        let range = self.bit_range();
        rng.gen_range(*range.start()..=*range.end())
    }
}

/// Flips one bit of a double and returns the corrupted value.
///
/// # Panics
///
/// Panics if `bit` is not in `0..64`.
///
/// # Examples
///
/// ```
/// use mavfi_fault::bitflip::flip_bit;
///
/// let corrupted = flip_bit(1.0, 63);
/// assert_eq!(corrupted, -1.0);
/// assert_eq!(flip_bit(corrupted, 63), 1.0);
/// ```
pub fn flip_bit(value: f64, bit: u8) -> f64 {
    assert!(bit < 64, "f64 has 64 bits");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

/// Returns `true` if flipping `bit` in `value` produces a value that differs
/// by less than `tolerance` relative error — i.e. the fault would be masked
/// at the application level.
pub fn flip_is_masked(value: f64, bit: u8, tolerance: f64) -> bool {
    let corrupted = flip_bit(value, bit);
    if !corrupted.is_finite() || !value.is_finite() {
        return false;
    }
    let scale = value.abs().max(1e-12);
    ((corrupted - value) / scale).abs() < tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flipping_twice_is_identity() {
        for &value in &[0.0, 1.0, -3.5, 1e300, 1e-300, std::f64::consts::PI] {
            for bit in 0..64 {
                let corrupted = flip_bit(value, bit);
                assert_eq!(flip_bit(corrupted, bit).to_bits(), value.to_bits());
            }
        }
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit(2.5, 63), -2.5);
        assert_eq!(flip_bit(-7.0, 63), 7.0);
    }

    #[test]
    fn field_classification_covers_all_bits() {
        let mut counts = std::collections::HashMap::new();
        for bit in 0..64u8 {
            *counts.entry(BitField::of_bit(bit)).or_insert(0u32) += 1;
        }
        assert_eq!(counts[&BitField::Sign], 1);
        assert_eq!(counts[&BitField::Exponent], 11);
        assert_eq!(counts[&BitField::Mantissa], 52);
        for field in BitField::ALL {
            assert_eq!(counts[&field], field.width());
        }
    }

    #[test]
    fn random_bit_stays_in_field() {
        let mut rng = StdRng::seed_from_u64(1);
        for field in BitField::ALL {
            for _ in 0..100 {
                let bit = field.random_bit(&mut rng);
                assert_eq!(BitField::of_bit(bit), field);
            }
        }
    }

    #[test]
    fn exponent_flips_change_magnitude_dramatically() {
        let value = 3.0;
        let corrupted = flip_bit(value, 62);
        assert!(!flip_is_masked(value, 62, 0.5));
        assert!(corrupted.abs() > 1e10 || corrupted.abs() < 1e-10 || !corrupted.is_finite());
    }

    #[test]
    fn low_mantissa_flips_are_masked() {
        assert!(flip_is_masked(3.0, 0, 1e-6));
        assert!(flip_is_masked(3.0, 10, 1e-6));
        assert!(!flip_is_masked(3.0, 51, 1e-6));
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn out_of_range_bit_panics() {
        let _ = flip_bit(1.0, 64);
    }
}
