//! Value-level corruption severity classification and bit-field sensitivity
//! surveys.
//!
//! The paper observes (§III-B) that "faults in sign and exponent fields have
//! a greater impact on the UAV's resilience", and its detectors exploit that
//! by only monitoring the sign and exponent bits.  This module quantifies
//! the observation at the value level: for representative operand values it
//! classifies the outcome of every possible single-bit flip, producing the
//! masked / benign / severe breakdown per bit field.

use serde::{Deserialize, Serialize};

use crate::bitflip::{flip_bit, BitField};
use crate::model::CorruptionDetail;

/// How severely a corruption distorted the value it landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The value is bit-identical (only possible for non-flip models, e.g.
    /// scale-by-one).
    Identical,
    /// The relative change is below the masking tolerance; the application
    /// behaves as if nothing happened.
    Masked,
    /// The value changed noticeably but stayed within an order of magnitude;
    /// downstream kernels typically absorb it.
    Benign,
    /// The value changed by more than an order of magnitude or changed sign;
    /// the corruption is likely to propagate into the flight behaviour.
    Severe,
    /// The corrupted value is NaN or infinite.
    NonFinite,
}

impl Severity {
    /// All severities, in increasing order of harm.
    pub const ALL: [Self; 5] =
        [Self::Identical, Self::Masked, Self::Benign, Self::Severe, Self::NonFinite];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Identical => "identical",
            Self::Masked => "masked",
            Self::Benign => "benign",
            Self::Severe => "severe",
            Self::NonFinite => "non_finite",
        }
    }

    /// Returns `true` for severities that are expected to disturb the flight
    /// (severe distortion or a non-finite value).
    pub fn is_harmful(self) -> bool {
        matches!(self, Self::Severe | Self::NonFinite)
    }
}

/// Thresholds used when classifying a corruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityThresholds {
    /// Relative change below which the corruption counts as masked.
    pub masked_tolerance: f64,
    /// Magnitude ratio (in either direction: grow by more than this factor
    /// or shrink below its inverse) beyond which the corruption counts as
    /// severe.  Sign changes of non-negligible values are always severe.
    pub severe_ratio: f64,
}

impl Default for SeverityThresholds {
    fn default() -> Self {
        Self { masked_tolerance: 1e-3, severe_ratio: 10.0 }
    }
}

/// Classifies the severity of corrupting `original` into `corrupted`.
pub fn classify(original: f64, corrupted: f64, thresholds: SeverityThresholds) -> Severity {
    if corrupted.to_bits() == original.to_bits() {
        return Severity::Identical;
    }
    if !corrupted.is_finite() {
        return Severity::NonFinite;
    }
    let scale = original.abs().max(1e-12);
    let relative = ((corrupted - original) / scale).abs();
    if relative < thresholds.masked_tolerance {
        return Severity::Masked;
    }
    let sign_changed =
        original.signum() != corrupted.signum() && original.abs() > 1e-9 && corrupted.abs() > 1e-9;
    // A value blowing up *or* collapsing toward zero is equally disruptive
    // for the flight behaviour (a way-point at the origin is as wrong as a
    // way-point a kilometre away), so the ratio test is symmetric.
    let magnitude_ratio = corrupted.abs().max(1e-12) / original.abs().max(1e-12);
    if sign_changed
        || magnitude_ratio > thresholds.severe_ratio
        || magnitude_ratio < 1.0 / thresholds.severe_ratio
    {
        Severity::Severe
    } else {
        Severity::Benign
    }
}

/// Classifies a recorded corruption with the default thresholds.
pub fn classify_detail(detail: &CorruptionDetail) -> Severity {
    classify(detail.original, detail.corrupted, SeverityThresholds::default())
}

/// Severity histogram of every possible single-bit flip over a set of
/// operand values, broken down by bit field.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlipSurvey {
    counts: Vec<(BitField, Severity, u64)>,
    total: u64,
}

impl FlipSurvey {
    /// Surveys all 64 single-bit flips of every value in `values`.
    pub fn over_values(values: &[f64], thresholds: SeverityThresholds) -> Self {
        let mut survey = Self::default();
        for &value in values {
            for bit in 0..64u8 {
                let corrupted = flip_bit(value, bit);
                let severity = classify(value, corrupted, thresholds);
                survey.add(BitField::of_bit(bit), severity);
            }
        }
        survey
    }

    fn add(&mut self, field: BitField, severity: Severity) {
        self.total += 1;
        for entry in &mut self.counts {
            if entry.0 == field && entry.1 == severity {
                entry.2 += 1;
                return;
            }
        }
        self.counts.push((field, severity, 1));
    }

    /// Total number of surveyed flips.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of surveyed flips that landed in `field`.
    pub fn total_in_field(&self, field: BitField) -> u64 {
        self.counts.iter().filter(|(f, _, _)| *f == field).map(|(_, _, n)| n).sum()
    }

    /// Number of flips in `field` classified as `severity`.
    pub fn count(&self, field: BitField, severity: Severity) -> u64 {
        self.counts
            .iter()
            .find(|(f, s, _)| *f == field && *s == severity)
            .map(|(_, _, n)| *n)
            .unwrap_or(0)
    }

    /// Fraction of flips in `field` that are harmful (severe or non-finite).
    pub fn harmful_fraction(&self, field: BitField) -> f64 {
        let total = self.total_in_field(field);
        if total == 0 {
            return 0.0;
        }
        let harmful: u64 = Severity::ALL
            .into_iter()
            .filter(|s| s.is_harmful())
            .map(|s| self.count(field, s))
            .sum();
        harmful as f64 / total as f64
    }

    /// Fraction of flips in `field` that are masked or identical.
    pub fn masked_fraction(&self, field: BitField) -> f64 {
        let total = self.total_in_field(field);
        if total == 0 {
            return 0.0;
        }
        let masked = self.count(field, Severity::Masked) + self.count(field, Severity::Identical);
        masked as f64 / total as f64
    }

    /// Fraction of *all* surveyed flips that landed in the mantissa — the
    /// paper's rationale for why a uniformly random flip is usually benign.
    pub fn mantissa_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.total_in_field(BitField::Mantissa) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn representative_values() -> Vec<f64> {
        vec![0.5, -0.5, 2.0, -3.5, 12.0, -40.0, 7.25, 100.0, -0.01, 3.1]
    }

    #[test]
    fn identical_and_masked_and_severe_classification() {
        let thresholds = SeverityThresholds::default();
        assert_eq!(classify(2.0, 2.0, thresholds), Severity::Identical);
        assert_eq!(classify(2.0, 2.0 + 1e-9, thresholds), Severity::Masked);
        assert_eq!(classify(2.0, 2.5, thresholds), Severity::Benign);
        assert_eq!(classify(2.0, -2.0, thresholds), Severity::Severe);
        assert_eq!(classify(2.0, 4.0e100, thresholds), Severity::Severe);
        assert_eq!(classify(2.0, f64::NAN, thresholds), Severity::NonFinite);
        assert_eq!(classify(2.0, f64::INFINITY, thresholds), Severity::NonFinite);
    }

    #[test]
    fn tiny_values_changing_sign_are_not_automatically_severe() {
        let thresholds = SeverityThresholds::default();
        // 1e-15 -> -1e-15 is a sign change of a negligible value; relative to
        // the 1e-12 floor it is small.
        assert_ne!(classify(1e-15, -1e-15, thresholds), Severity::Severe);
    }

    #[test]
    fn classify_detail_uses_the_recorded_values() {
        let detail =
            CorruptionDetail { original: 3.0, corrupted: -3.0, bit: Some(63), field: None };
        assert_eq!(classify_detail(&detail), Severity::Severe);
    }

    #[test]
    fn severity_labels_are_unique_and_harmfulness_is_consistent() {
        let labels: std::collections::HashSet<&str> =
            Severity::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Severity::ALL.len());
        assert!(Severity::Severe.is_harmful());
        assert!(Severity::NonFinite.is_harmful());
        assert!(!Severity::Masked.is_harmful());
        assert!(!Severity::Benign.is_harmful());
    }

    #[test]
    fn survey_covers_every_flip_once() {
        let values = representative_values();
        let survey = FlipSurvey::over_values(&values, SeverityThresholds::default());
        assert_eq!(survey.total(), values.len() as u64 * 64);
        assert_eq!(survey.total_in_field(BitField::Sign), values.len() as u64);
        assert_eq!(survey.total_in_field(BitField::Exponent), values.len() as u64 * 11);
        assert_eq!(survey.total_in_field(BitField::Mantissa), values.len() as u64 * 52);
        assert!((survey.mantissa_share() - 52.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn sign_and_exponent_flips_are_far_more_harmful_than_mantissa_flips() {
        // The paper's §III-B finding, reproduced at the value level.
        let survey =
            FlipSurvey::over_values(&representative_values(), SeverityThresholds::default());
        assert_eq!(survey.harmful_fraction(BitField::Sign), 1.0);
        assert!(survey.harmful_fraction(BitField::Exponent) > 0.6);
        assert!(survey.harmful_fraction(BitField::Mantissa) < 0.05);
        assert!(survey.masked_fraction(BitField::Mantissa) > 0.7);
    }

    #[test]
    fn empty_survey_is_well_behaved() {
        let survey = FlipSurvey::default();
        assert_eq!(survey.total(), 0);
        assert_eq!(survey.harmful_fraction(BitField::Sign), 0.0);
        assert_eq!(survey.masked_fraction(BitField::Mantissa), 0.0);
        assert_eq!(survey.mantissa_share(), 0.0);
    }
}
