//! The fault model: what kind of corruption is injected.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bitflip::{flip_bit, BitField};

/// How the bit to flip is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitSelection {
    /// Uniformly random over all 64 bits (the paper's default
    /// instruction-level model).
    UniformRandom,
    /// Uniformly random within one field (used for the sign/exponent
    /// sensitivity analysis).
    InField(BitField),
    /// A specific bit index (deterministic reproduction of a single fault).
    Exact(u8),
}

/// A fault model applied to one floating-point value.
///
/// MAVFI emulates instruction-level single-bit upsets manifesting as
/// corrupted kernel outputs / inter-kernel states (memory and caches are
/// assumed ECC-protected, control logic fault-free; see §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultModel {
    /// Flip a single bit of the target value.
    SingleBitFlip {
        /// How the bit index is selected.
        selection: BitSelection,
    },
    /// Replace the value with a fixed constant (a stuck-at style corruption,
    /// useful for targeted what-if studies and tests).
    StuckAt {
        /// The value the target is replaced with.
        value: f64,
    },
    /// Scale the value by a factor (models a coarse arithmetic error that is
    /// not a clean bit flip).
    Scale {
        /// Multiplicative factor applied to the target.
        factor: f64,
    },
    /// Flip several independently chosen bits at once (a multi-bit upset,
    /// outside the paper's single-bit model but included for the extended
    /// sensitivity study).
    MultiBitFlip {
        /// Number of distinct bits to flip (clamped to 1..=64).
        bits: u8,
        /// How each bit index is selected.
        selection: BitSelection,
    },
    /// Flip a contiguous run of bits starting at a random position (a burst
    /// upset, e.g. from a particle strike spanning adjacent flip-flops).
    BurstFlip {
        /// Width of the burst in bits (clamped to 1..=64).
        width: u8,
    },
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::SingleBitFlip { selection: BitSelection::UniformRandom }
    }
}

impl FaultModel {
    /// The paper's default model: one uniformly random single-bit flip.
    pub fn single_random_bit() -> Self {
        Self::default()
    }

    /// A single-bit flip restricted to the given field.
    pub fn single_bit_in(field: BitField) -> Self {
        Self::SingleBitFlip { selection: BitSelection::InField(field) }
    }

    /// Applies the fault to `value`, returning the corrupted value and a
    /// description of the corruption.
    pub fn apply<R: Rng>(&self, value: f64, rng: &mut R) -> (f64, CorruptionDetail) {
        match *self {
            Self::SingleBitFlip { selection } => {
                let bit = match selection {
                    BitSelection::UniformRandom => rng.gen_range(0..64),
                    BitSelection::InField(field) => field.random_bit(rng),
                    BitSelection::Exact(bit) => bit,
                };
                let corrupted = flip_bit(value, bit);
                (
                    corrupted,
                    CorruptionDetail {
                        original: value,
                        corrupted,
                        bit: Some(bit),
                        field: Some(BitField::of_bit(bit)),
                    },
                )
            }
            Self::StuckAt { value: stuck } => (
                stuck,
                CorruptionDetail { original: value, corrupted: stuck, bit: None, field: None },
            ),
            Self::Scale { factor } => {
                let corrupted = value * factor;
                (corrupted, CorruptionDetail { original: value, corrupted, bit: None, field: None })
            }
            Self::MultiBitFlip { bits, selection } => {
                let count = bits.clamp(1, 64);
                let mut corrupted = value;
                let mut flipped: Vec<u8> = Vec::with_capacity(count as usize);
                while flipped.len() < count as usize {
                    let bit = match selection {
                        BitSelection::UniformRandom => rng.gen_range(0..64),
                        BitSelection::InField(field) => field.random_bit(rng),
                        BitSelection::Exact(bit) => bit,
                    };
                    if flipped.contains(&bit) {
                        // With `Exact` there is only one candidate; stop
                        // rather than spin forever.
                        if matches!(selection, BitSelection::Exact(_)) {
                            break;
                        }
                        continue;
                    }
                    corrupted = flip_bit(corrupted, bit);
                    flipped.push(bit);
                }
                let first = flipped.first().copied();
                (
                    corrupted,
                    CorruptionDetail {
                        original: value,
                        corrupted,
                        bit: first,
                        field: first.map(BitField::of_bit),
                    },
                )
            }
            Self::BurstFlip { width } => {
                let width = width.clamp(1, 64);
                let start = rng.gen_range(0..=(64 - width));
                let mut corrupted = value;
                for bit in start..start + width {
                    corrupted = flip_bit(corrupted, bit);
                }
                (
                    corrupted,
                    CorruptionDetail {
                        original: value,
                        corrupted,
                        bit: Some(start),
                        field: Some(BitField::of_bit(start)),
                    },
                )
            }
        }
    }
}

/// Record of one applied corruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionDetail {
    /// Value before corruption.
    pub original: f64,
    /// Value after corruption.
    pub corrupted: f64,
    /// Bit index flipped, if the model was a bit flip.
    pub bit: Option<u8>,
    /// Bit field of the flipped bit, if the model was a bit flip.
    pub field: Option<BitField>,
}

impl CorruptionDetail {
    /// Returns `true` when the corruption left the value bit-identical
    /// (never the case for bit flips, possible for scale-by-one).
    pub fn is_silent(&self) -> bool {
        self.original.to_bits() == self.corrupted.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_bit_flip_is_reproducible() {
        let model = FaultModel::SingleBitFlip { selection: BitSelection::Exact(63) };
        let mut rng = StdRng::seed_from_u64(0);
        let (corrupted, detail) = model.apply(4.0, &mut rng);
        assert_eq!(corrupted, -4.0);
        assert_eq!(detail.bit, Some(63));
        assert_eq!(detail.field, Some(BitField::Sign));
        assert!(!detail.is_silent());
    }

    #[test]
    fn in_field_selection_respects_field() {
        let model = FaultModel::single_bit_in(BitField::Exponent);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let (_, detail) = model.apply(1.5, &mut rng);
            assert_eq!(detail.field, Some(BitField::Exponent));
        }
    }

    #[test]
    fn stuck_at_and_scale_models() {
        let mut rng = StdRng::seed_from_u64(0);
        let (v, d) = FaultModel::StuckAt { value: 99.0 }.apply(1.0, &mut rng);
        assert_eq!(v, 99.0);
        assert_eq!(d.original, 1.0);
        let (v, _) = FaultModel::Scale { factor: -2.0 }.apply(3.0, &mut rng);
        assert_eq!(v, -6.0);
    }

    #[test]
    fn random_model_is_deterministic_per_seed() {
        let model = FaultModel::single_random_bit();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(model.apply(2.0, &mut a), model.apply(2.0, &mut b));
    }

    #[test]
    fn multi_bit_flip_flips_the_requested_number_of_bits() {
        let model = FaultModel::MultiBitFlip { bits: 3, selection: BitSelection::UniformRandom };
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let (corrupted, detail) = model.apply(1.5, &mut rng);
            let differing = (corrupted.to_bits() ^ 1.5f64.to_bits()).count_ones();
            assert_eq!(differing, 3);
            assert!(detail.bit.is_some());
        }
    }

    #[test]
    fn multi_bit_flip_with_exact_selection_degenerates_to_one_flip() {
        let model = FaultModel::MultiBitFlip { bits: 5, selection: BitSelection::Exact(63) };
        let mut rng = StdRng::seed_from_u64(1);
        let (corrupted, detail) = model.apply(2.0, &mut rng);
        assert_eq!(corrupted, -2.0);
        assert_eq!(detail.field, Some(BitField::Sign));
    }

    #[test]
    fn burst_flip_flips_a_contiguous_run() {
        let model = FaultModel::BurstFlip { width: 4 };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let (corrupted, detail) = model.apply(-0.75, &mut rng);
            let mask = corrupted.to_bits() ^ (-0.75f64).to_bits();
            assert_eq!(mask.count_ones(), 4);
            let start = detail.bit.expect("burst records its start bit");
            assert_eq!(mask >> start, 0b1111);
        }
    }

    #[test]
    fn burst_width_is_clamped_to_the_word() {
        let model = FaultModel::BurstFlip { width: 255 };
        let mut rng = StdRng::seed_from_u64(2);
        let (corrupted, _) = model.apply(3.0, &mut rng);
        assert_eq!((corrupted.to_bits() ^ 3.0f64.to_bits()).count_ones(), 64);
    }
}
