//! The fault injector: a [`StageTap`] that corrupts inter-kernel states and
//! kernel outputs in flight, exactly once per mission.

use mavfi_ppc::kernel::KernelId;
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::states::{CollisionEstimate, PointCloud, Stage, StateField, Trajectory};
use mavfi_ppc::tap::{StageTap, TapAction};
use mavfi_sim::vehicle::FlightCommand;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::model::{CorruptionDetail, FaultModel};
use crate::target::InjectionTarget;

/// A complete description of one fault-injection experiment: what to
/// corrupt, how, and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Where the fault lands.
    pub target: InjectionTarget,
    /// The corruption applied.
    pub model: FaultModel,
    /// Pipeline tick at which the fault fires (the paper injects a one-time
    /// fault at a random instant during the mission).
    pub trigger_tick: u64,
    /// Seed controlling all random choices inside the injector.
    pub seed: u64,
}

impl FaultSpec {
    /// Convenience constructor with the default single-random-bit model.
    pub fn new(target: InjectionTarget, trigger_tick: u64, seed: u64) -> Self {
        Self { target, model: FaultModel::default(), trigger_tick, seed }
    }
}

/// Record of the fault that actually fired.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Tick at which the corruption happened.
    pub tick: u64,
    /// Human-readable target description.
    pub target: String,
    /// The corrupted scalar field, when applicable.
    pub field: Option<StateField>,
    /// Details of the value corruption.
    pub detail: CorruptionDetail,
}

/// One-shot fault injector attached to the pipeline as a [`StageTap`].
///
/// The injector counts pipeline ticks (one per `after_point_cloud` call),
/// and at the configured trigger tick corrupts its target.  If the target is
/// momentarily unavailable (for example an empty trajectory), it retries on
/// subsequent ticks until the corruption lands.
///
/// # Examples
///
/// ```
/// use mavfi_fault::prelude::*;
/// use mavfi_ppc::prelude::*;
/// use mavfi_sim::prelude::*;
///
/// let spec = FaultSpec::new(InjectionTarget::State(StateField::CommandVx), 0, 1);
/// let mut injector = FaultInjector::new(spec);
/// let mut command = FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0);
/// // Drive the tick counter and the control hook directly.
/// injector.after_point_cloud(&mut PointCloud::default());
/// injector.after_control(&mut command);
/// assert!(injector.record().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: StdRng,
    current_tick: u64,
    ticks_seen: u64,
    record: Option<FaultRecord>,
}

impl FaultInjector {
    /// Creates an injector for one experiment.
    pub fn new(spec: FaultSpec) -> Self {
        Self {
            spec,
            rng: StdRng::seed_from_u64(spec.seed),
            current_tick: 0,
            ticks_seen: 0,
            record: None,
        }
    }

    /// The experiment specification.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Returns the record of the injected fault once it has fired.
    pub fn record(&self) -> Option<&FaultRecord> {
        self.record.as_ref()
    }

    /// Returns `true` once the fault has been injected.
    pub fn has_fired(&self) -> bool {
        self.record.is_some()
    }

    fn armed(&self) -> bool {
        self.record.is_none() && self.current_tick >= self.spec.trigger_tick
    }

    fn corrupt_scalar(&mut self, field: StateField, value: &mut f64) {
        let (corrupted, detail) = self.spec.model.apply(*value, &mut self.rng);
        *value = corrupted;
        self.record = Some(FaultRecord {
            tick: self.current_tick,
            target: self.spec.target.label(),
            field: Some(field),
            detail,
        });
    }

    fn stage_fields(stage: Stage) -> Vec<StateField> {
        StateField::ALL.into_iter().filter(|field| field.stage() == stage).collect()
    }

    /// Chooses which scalar field to corrupt for the current target at the
    /// given hook's stage, or `None` when this hook is not the right place.
    fn field_for_stage(&mut self, stage: Stage) -> Option<StateField> {
        match self.spec.target {
            InjectionTarget::State(field) if field.stage() == stage => Some(field),
            InjectionTarget::Stage(target_stage) if target_stage == stage => {
                let fields = Self::stage_fields(stage);
                fields.choose(&mut self.rng).copied()
            }
            InjectionTarget::Kernel(kernel) if kernel.stage() == stage => {
                // Kernel-level faults that manifest on this hook's scalar
                // states: collision check, planners, smoothing, control.
                match kernel {
                    KernelId::CollisionCheck => {
                        let fields = [StateField::TimeToCollision, StateField::FutureCollisionSeq];
                        fields.choose(&mut self.rng).copied()
                    }
                    KernelId::Rrt
                    | KernelId::RrtConnect
                    | KernelId::RrtStar
                    | KernelId::Smoothing
                    | KernelId::MissionPlanner => {
                        let fields = [
                            StateField::WaypointX,
                            StateField::WaypointY,
                            StateField::WaypointZ,
                            StateField::WaypointYaw,
                            StateField::WaypointVx,
                            StateField::WaypointVy,
                            StateField::WaypointVz,
                        ];
                        fields.choose(&mut self.rng).copied()
                    }
                    KernelId::PathTracking | KernelId::Pid => {
                        let fields = [
                            StateField::CommandVx,
                            StateField::CommandVy,
                            StateField::CommandVz,
                            StateField::CommandYawRate,
                        ];
                        fields.choose(&mut self.rng).copied()
                    }
                    // Point-cloud and OctoMap faults are handled on their own
                    // hooks, not through scalar states.
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl StageTap for FaultInjector {
    fn after_point_cloud(&mut self, cloud: &mut PointCloud) {
        self.current_tick = self.ticks_seen;
        self.ticks_seen += 1;
        if !self.armed() {
            return;
        }
        if self.spec.target == InjectionTarget::Kernel(KernelId::PointCloudGeneration) {
            if cloud.points.is_empty() {
                return;
            }
            let index = self.rng.gen_range(0..cloud.points.len());
            let axis = self.rng.gen_range(0..3);
            let point = &mut cloud.points[index];
            let value = match axis {
                0 => &mut point.x,
                1 => &mut point.y,
                _ => &mut point.z,
            };
            let (corrupted, detail) = self.spec.model.apply(*value, &mut self.rng);
            *value = corrupted;
            self.record = Some(FaultRecord {
                tick: self.current_tick,
                target: self.spec.target.label(),
                field: None,
                detail,
            });
        }
    }

    fn after_occupancy(&mut self, grid: &mut OccupancyGrid) {
        if !self.armed() || self.spec.target != InjectionTarget::Kernel(KernelId::OctoMap) {
            return;
        }
        let mut keys: Vec<_> = grid.occupied_voxels().collect();
        if keys.is_empty() {
            return;
        }
        keys.sort();
        let key = keys[self.rng.gen_range(0..keys.len())];
        // A bit flip in the map manifests as an occupied voxel read as free
        // (the case the paper discusses) or, less often, a spurious voxel.
        if self.rng.gen_bool(0.8) {
            grid.set_voxel(key, false);
            self.record = Some(FaultRecord {
                tick: self.current_tick,
                target: self.spec.target.label(),
                field: None,
                detail: CorruptionDetail { original: 1.0, corrupted: 0.0, bit: None, field: None },
            });
        } else {
            // Saturating: the chosen voxel may itself sit at the edge of the
            // key range after earlier corruption.
            let spurious = mavfi_ppc::perception::occupancy::VoxelKey {
                x: key.x.saturating_add(self.rng.gen_range(-3..=3)),
                y: key.y.saturating_add(self.rng.gen_range(-3..=3)),
                z: key.z,
            };
            grid.set_voxel(spurious, true);
            self.record = Some(FaultRecord {
                tick: self.current_tick,
                target: self.spec.target.label(),
                field: None,
                detail: CorruptionDetail { original: 0.0, corrupted: 1.0, bit: None, field: None },
            });
        }
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        if self.armed() {
            if let Some(field) = self.field_for_stage(Stage::Perception) {
                let mut value = match field {
                    StateField::TimeToCollision => estimate.time_to_collision,
                    _ => estimate.future_collision_seq,
                };
                // Collapse non-finite clear-path sentinels to a large finite
                // value so the bit flip produces a representative corruption.
                if !value.is_finite() {
                    value = 1.0e6;
                }
                self.corrupt_scalar(field, &mut value);
                match field {
                    StateField::TimeToCollision => {
                        estimate.time_to_collision = value;
                        estimate.obstacle_ahead = value.is_finite() && value < 1.0e5;
                    }
                    _ => {
                        estimate.future_collision_seq = value;
                        estimate.obstacle_ahead = estimate.obstacle_ahead || value >= 0.0;
                    }
                }
            }
        }
        TapAction::Continue
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        if self.armed() && !trajectory.is_empty() {
            if let Some(field) = self.field_for_stage(Stage::Planning) {
                let index = active_index.min(trajectory.len() - 1);
                let waypoint = &mut trajectory.waypoints[index];
                let mut value = match field {
                    StateField::WaypointX => waypoint.position.x,
                    StateField::WaypointY => waypoint.position.y,
                    StateField::WaypointZ => waypoint.position.z,
                    StateField::WaypointYaw => waypoint.yaw,
                    StateField::WaypointVx => waypoint.velocity.x,
                    StateField::WaypointVy => waypoint.velocity.y,
                    _ => waypoint.velocity.z,
                };
                self.corrupt_scalar(field, &mut value);
                match field {
                    StateField::WaypointX => waypoint.position.x = value,
                    StateField::WaypointY => waypoint.position.y = value,
                    StateField::WaypointZ => waypoint.position.z = value,
                    StateField::WaypointYaw => waypoint.yaw = value,
                    StateField::WaypointVx => waypoint.velocity.x = value,
                    StateField::WaypointVy => waypoint.velocity.y = value,
                    _ => waypoint.velocity.z = value,
                }
            }
        }
        TapAction::Continue
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        if self.armed() {
            if let Some(field) = self.field_for_stage(Stage::Control) {
                let mut value = match field {
                    StateField::CommandVx => command.velocity.x,
                    StateField::CommandVy => command.velocity.y,
                    StateField::CommandVz => command.velocity.z,
                    _ => command.yaw_rate,
                };
                self.corrupt_scalar(field, &mut value);
                match field {
                    StateField::CommandVx => command.velocity.x = value,
                    StateField::CommandVy => command.velocity.y = value,
                    StateField::CommandVz => command.velocity.z = value,
                    _ => command.yaw_rate = value,
                }
            }
        }
        TapAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BitSelection;
    use mavfi_sim::geometry::Vec3;

    fn drive_tick(injector: &mut FaultInjector) {
        injector.after_point_cloud(&mut PointCloud::default());
    }

    #[test]
    fn fires_only_once_and_at_the_trigger_tick() {
        let spec = FaultSpec::new(InjectionTarget::State(StateField::CommandVx), 2, 5);
        let mut injector = FaultInjector::new(spec);
        let mut command = FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0);

        for tick in 0..5 {
            drive_tick(&mut injector);
            let before = command;
            injector.after_control(&mut command);
            if tick < 2 {
                assert_eq!(command, before, "must not fire before the trigger tick");
            }
        }
        let record = injector.record().expect("fault fired");
        assert_eq!(record.tick, 2);
        assert_eq!(record.field, Some(StateField::CommandVx));
        assert!(injector.has_fired());
        // Exactly one corruption: subsequent commands are untouched.
        let mut again = FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0);
        injector.after_control(&mut again);
        assert_eq!(again, FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0));
    }

    #[test]
    fn waypoint_fault_corrupts_active_waypoint() {
        let spec = FaultSpec {
            target: InjectionTarget::State(StateField::WaypointX),
            model: FaultModel::SingleBitFlip { selection: BitSelection::Exact(62) },
            trigger_tick: 0,
            seed: 3,
        };
        let mut injector = FaultInjector::new(spec);
        drive_tick(&mut injector);
        let mut trajectory = Trajectory::new(vec![
            mavfi_ppc::states::Waypoint {
                position: Vec3::new(1.0, 2.0, 3.0),
                ..Default::default()
            },
            mavfi_ppc::states::Waypoint {
                position: Vec3::new(4.0, 5.0, 6.0),
                ..Default::default()
            },
        ]);
        injector.after_planning(&mut trajectory, 1);
        assert_ne!(trajectory.waypoints[1].position.x, 4.0);
        assert_eq!(trajectory.waypoints[0].position.x, 1.0);
    }

    #[test]
    fn empty_trajectory_defers_the_fault() {
        let spec = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 0, 9);
        let mut injector = FaultInjector::new(spec);
        drive_tick(&mut injector);
        let mut empty = Trajectory::default();
        injector.after_planning(&mut empty, 0);
        assert!(!injector.has_fired());
        // Next tick with a real trajectory the fault lands.
        drive_tick(&mut injector);
        let mut trajectory = Trajectory::new(vec![mavfi_ppc::states::Waypoint::default()]);
        injector.after_planning(&mut trajectory, 0);
        assert!(injector.has_fired());
    }

    #[test]
    fn octomap_fault_flips_a_voxel() {
        let spec = FaultSpec::new(InjectionTarget::Kernel(KernelId::OctoMap), 0, 11);
        let mut injector = FaultInjector::new(spec);
        drive_tick(&mut injector);
        let mut grid = OccupancyGrid::new(0.5);
        for i in 0..20 {
            grid.insert_point(Vec3::new(i as f64, 0.0, 1.0));
        }
        let before = grid.occupied_count();
        injector.after_occupancy(&mut grid);
        assert!(injector.has_fired());
        assert_ne!(grid.occupied_count(), before);
    }

    #[test]
    fn point_cloud_fault_corrupts_a_point() {
        let spec = FaultSpec::new(InjectionTarget::Kernel(KernelId::PointCloudGeneration), 0, 2);
        let mut injector = FaultInjector::new(spec);
        let mut cloud = PointCloud::new(vec![Vec3::new(1.0, 2.0, 3.0); 8]);
        injector.after_point_cloud(&mut cloud);
        assert!(injector.has_fired());
        assert!(cloud.points.iter().any(|p| *p != Vec3::new(1.0, 2.0, 3.0)));
    }

    #[test]
    fn stage_target_picks_a_field_of_that_stage() {
        let spec = FaultSpec::new(InjectionTarget::Stage(Stage::Perception), 0, 21);
        let mut injector = FaultInjector::new(spec);
        drive_tick(&mut injector);
        let mut estimate = CollisionEstimate::default();
        injector.after_perception(&mut estimate);
        let record = injector.record().expect("fired");
        assert_eq!(record.field.unwrap().stage(), Stage::Perception);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let spec = FaultSpec::new(InjectionTarget::State(StateField::CommandVy), 0, 77);
        let run = |spec: FaultSpec| {
            let mut injector = FaultInjector::new(spec);
            drive_tick(&mut injector);
            let mut command = FlightCommand::new(Vec3::new(0.5, 1.5, -0.5), 0.2);
            injector.after_control(&mut command);
            (command, injector.record().cloned())
        };
        // Compare via Debug: the corrupted value can legitimately be NaN
        // (exponent-field flips reach the NaN encodings), and NaN != NaN
        // would fail a direct equality even for identical runs.
        assert_eq!(format!("{:?}", run(spec)), format!("{:?}", run(spec)));
    }
}
