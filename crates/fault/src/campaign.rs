//! Campaign planning: builds the lists of fault-injection experiments the
//! paper's evaluation runs (100 injections per kernel / state / stage).

use mavfi_ppc::kernel::KernelId;
use mavfi_ppc::states::{Stage, StateField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::injector::FaultSpec;
use crate::model::FaultModel;
use crate::target::InjectionTarget;

/// A planned set of fault-injection experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    specs: Vec<FaultSpec>,
}

/// Range of pipeline ticks (inclusive-exclusive) in which the one-time
/// injection may fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerWindow {
    /// Earliest candidate trigger tick.
    pub start: u64,
    /// One past the latest candidate trigger tick.
    pub end: u64,
}

impl Default for TriggerWindow {
    fn default() -> Self {
        // With a 10 Hz pipeline this covers roughly the first 40 seconds of
        // the mission, after a short warm-up so the trajectory exists.
        Self { start: 10, end: 400 }
    }
}

impl TriggerWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "trigger window must be non-empty");
        Self { start, end }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

impl CampaignPlan {
    /// Builds a plan with `runs_per_target` experiments for every target.
    pub fn new(
        targets: &[InjectionTarget],
        runs_per_target: usize,
        model: FaultModel,
        window: TriggerWindow,
        base_seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(base_seed);
        let mut specs = Vec::with_capacity(targets.len() * runs_per_target);
        for &target in targets {
            for _ in 0..runs_per_target {
                specs.push(FaultSpec {
                    target,
                    model,
                    trigger_tick: window.sample(&mut rng),
                    seed: rng.gen(),
                });
            }
        }
        Self { specs }
    }

    /// The Fig. 3 campaign: `runs_per_kernel` injections into each of the
    /// seven studied kernels.
    pub fn per_kernel(runs_per_kernel: usize, base_seed: u64) -> Self {
        let targets: Vec<InjectionTarget> =
            KernelId::FIG3_KERNELS.into_iter().map(InjectionTarget::Kernel).collect();
        Self::new(
            &targets,
            runs_per_kernel,
            FaultModel::default(),
            TriggerWindow::default(),
            base_seed,
        )
    }

    /// The Fig. 4 campaign: `runs_per_state` injections into each monitored
    /// inter-kernel state.
    pub fn per_state(runs_per_state: usize, base_seed: u64) -> Self {
        let targets: Vec<InjectionTarget> =
            StateField::ALL.into_iter().map(InjectionTarget::State).collect();
        Self::new(
            &targets,
            runs_per_state,
            FaultModel::default(),
            TriggerWindow::default(),
            base_seed,
        )
    }

    /// The Table I / Fig. 6 campaign: `runs_per_stage` injections into each
    /// PPC stage.
    pub fn per_stage(runs_per_stage: usize, base_seed: u64) -> Self {
        let targets: Vec<InjectionTarget> =
            Stage::ALL.into_iter().map(InjectionTarget::Stage).collect();
        Self::new(
            &targets,
            runs_per_stage,
            FaultModel::default(),
            TriggerWindow::default(),
            base_seed,
        )
    }

    /// The planned experiments.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of planned experiments.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Experiments targeting a given pipeline stage.
    pub fn specs_for_stage(&self, stage: Stage) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().filter(move |spec| spec.target.stage() == stage)
    }
}

impl IntoIterator for CampaignPlan {
    type Item = FaultSpec;
    type IntoIter = std::vec::IntoIter<FaultSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kernel_plan_has_expected_size() {
        let plan = CampaignPlan::per_kernel(100, 1);
        assert_eq!(plan.len(), 7 * 100);
        assert!(!plan.is_empty());
    }

    #[test]
    fn per_state_and_per_stage_plans() {
        assert_eq!(CampaignPlan::per_state(10, 2).len(), 13 * 10);
        let stage_plan = CampaignPlan::per_stage(100, 3);
        assert_eq!(stage_plan.len(), 300);
        assert_eq!(stage_plan.specs_for_stage(Stage::Perception).count(), 100);
        assert_eq!(stage_plan.specs_for_stage(Stage::Planning).count(), 100);
        assert_eq!(stage_plan.specs_for_stage(Stage::Control).count(), 100);
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        assert_eq!(CampaignPlan::per_kernel(5, 9), CampaignPlan::per_kernel(5, 9));
        assert_ne!(CampaignPlan::per_kernel(5, 9), CampaignPlan::per_kernel(5, 10));
    }

    #[test]
    fn trigger_ticks_stay_inside_the_window() {
        let window = TriggerWindow::new(50, 60);
        let plan = CampaignPlan::new(
            &[InjectionTarget::Stage(Stage::Control)],
            200,
            FaultModel::default(),
            window,
            4,
        );
        for spec in plan.specs() {
            assert!((50..60).contains(&spec.trigger_tick));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let _ = TriggerWindow::new(5, 5);
    }
}
