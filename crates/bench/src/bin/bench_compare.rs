//! Compares two bench logs metric by metric.
//!
//! ```text
//! bench_compare <old.json> <new.json>
//! ```
//!
//! For every `(bench, metric)` pair present in both logs the *latest* entry
//! of each log is compared and the delta printed; direction comes from the
//! unit (`…/s` means higher is better, everything else — `ns/tick`,
//! `ns/score`, `bytes/tick` — means lower is better).  The process exits
//! non-zero when any **headline** metric regresses by more than 25 %, so
//! `scripts/bench.sh --compare` can gate refactors; metrics that exist in
//! only one log are listed but never fail the gate (new benches appear,
//! old ones retire).

use std::process::ExitCode;

use serde::Value;

/// Fractional regression on a headline metric that fails the gate.
const REGRESSION_LIMIT: f64 = 0.25;

/// The metrics the gate protects: the closed-loop throughput numbers the
/// performance docs headline, one per bench that records them.
const HEADLINES: &[(&str, &str)] = &[
    ("fig3_kernel_sensitivity", "ticks_per_sec"),
    ("table2_overhead", "protected_ticks_per_sec"),
    ("detector_micro", "aad_score_scratch"),
    ("replay_micro", "replay_ticks_per_sec"),
    ("batch_throughput", "batch_ticks_per_sec_b8"),
];

/// One log's latest value and unit per `(bench, metric)`, in first-seen
/// order (logs are append-only, so the last entry of a pair is its latest).
type Latest = Vec<((String, String), (f64, String))>;

fn field<'entry>(entry: &'entry [(String, Value)], name: &str) -> Option<&'entry Value> {
    entry.iter().find(|(key, _)| key == name).map(|(_, value)| value)
}

fn load_latest(path: &str) -> Result<Latest, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    let parsed: Value = serde_json::from_str(&text)
        .map_err(|error| format!("{path} is not valid JSON: {error:?}"))?;
    let entries = parsed.as_seq().ok_or_else(|| format!("{path} is not a JSON array"))?;
    let mut latest: Latest = Vec::new();
    for entry in entries {
        let Some(map) = entry.as_map() else { continue };
        let (Some(bench), Some(metric), Some(value)) = (
            field(map, "bench").and_then(Value::as_str),
            field(map, "metric").and_then(Value::as_str),
            field(map, "value").and_then(Value::as_f64),
        ) else {
            continue;
        };
        let unit = field(map, "unit").and_then(Value::as_str).unwrap_or("").to_owned();
        let key = (bench.to_owned(), metric.to_owned());
        match latest.iter_mut().find(|(existing, _)| *existing == key) {
            Some((_, slot)) => *slot = (value, unit),
            None => latest.push((key, (value, unit))),
        }
    }
    Ok(latest)
}

/// `true` when a larger value of a metric with this unit is an improvement.
fn higher_is_better(unit: &str) -> bool {
    unit.ends_with("/s")
}

/// Signed improvement fraction: positive is better, negative is a
/// regression, regardless of the metric's direction.
fn improvement(old: f64, new: f64, unit: &str) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    let change = (new - old) / old.abs();
    if higher_is_better(unit) {
        change
    } else {
        -change
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <old.json> <new.json>");
        return ExitCode::from(2);
    };
    let (old, new) = match (load_latest(old_path), load_latest(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(error), _) | (_, Err(error)) => {
            eprintln!("bench_compare: {error}");
            return ExitCode::from(2);
        }
    };

    println!("{:<58} {:>14} {:>14} {:>9}", "metric", "old", "new", "delta");
    let mut failures: Vec<String> = Vec::new();
    for ((bench, metric), (new_value, unit)) in &new {
        let name = format!("{bench}/{metric}");
        let Some((_, (old_value, _))) = old.iter().find(|((b, m), _)| b == bench && m == metric)
        else {
            println!("{name:<58} {:>14} {new_value:>14.3} {:>9}", "-", "new");
            continue;
        };
        let gain = improvement(*old_value, *new_value, unit);
        let arrow = if gain >= 0.0 { "+" } else { "-" };
        println!(
            "{name:<58} {old_value:>14.3} {new_value:>14.3} {arrow}{:>7.1}%",
            gain.abs() * 100.0
        );
        let headline = HEADLINES.iter().any(|(b, m)| b == bench && m == metric);
        if headline && gain < -REGRESSION_LIMIT {
            failures.push(format!(
                "{name}: {old_value:.3} -> {new_value:.3} {unit} ({:.1}% worse)",
                -gain * 100.0
            ));
        }
    }
    for ((bench, metric), (old_value, _)) in &old {
        if !new.iter().any(|((b, m), _)| b == bench && m == metric) {
            println!(
                "{:<58} {old_value:>14.3} {:>14} {:>9}",
                format!("{bench}/{metric}"),
                "-",
                "gone"
            );
        }
    }

    if failures.is_empty() {
        println!("no headline regressions beyond {:.0}%", REGRESSION_LIMIT * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!("\nheadline regressions beyond {:.0}%:", REGRESSION_LIMIT * 100.0);
        for failure in &failures {
            eprintln!("  {failure}");
        }
        ExitCode::FAILURE
    }
}
