//! Append-only performance log shared by the bench targets.
//!
//! Every simulation-backed bench can [`record`] named scalar metrics
//! (ticks/sec, ns/score, …).  Records accumulate as a JSON array in
//! `BENCH_10.json` at the repository root (override the path with the
//! `MAVFI_BENCH_LOG` environment variable, or pass an output file to
//! `scripts/bench.sh`), so the performance trajectory of the hot tick path
//! is tracked across PRs: each entry carries a Unix timestamp, the bench
//! name, the metric name, the value and its unit, plus a free-form note
//! (used to tag pre-/post-refactor measurements).  Earlier PRs' logs
//! (`BENCH_9.json`, `BENCH_8.json`, …) stay in the repository as the
//! historical record, and `scripts/bench.sh --compare` diffs two logs
//! metric by metric (see `src/bin/bench_compare.rs`).
//!
//! A log that exists but no longer parses as a JSON array is set aside as
//! `<name>.corrupt` (best effort) before a fresh log is started, so bad data
//! is preserved for inspection instead of silently overwritten.

use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::Value;

/// Resolves the log path: `MAVFI_BENCH_LOG` if set, otherwise
/// `BENCH_10.json` in the workspace root.
pub fn log_path() -> PathBuf {
    if let Ok(path) = std::env::var("MAVFI_BENCH_LOG") {
        return PathBuf::from(path);
    }
    // CARGO_MANIFEST_DIR is crates/bench; the log lives two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json")
}

/// Loads the existing log entries, or sets an unparseable log aside as
/// `<name>.corrupt` and starts fresh.
fn load_entries(path: &std::path::Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match serde_json::from_str::<Value>(&text)
        .ok()
        .and_then(|value| value.as_seq().map(<[Value]>::to_vec))
    {
        Some(entries) => entries,
        None => {
            // Preserve the bad data for inspection rather than silently
            // overwriting it; renaming is best effort.
            let mut corrupt = path.as_os_str().to_owned();
            corrupt.push(".corrupt");
            match std::fs::rename(path, &corrupt) {
                Ok(()) => eprintln!(
                    "[bench-log] {} was not a JSON array; moved to {}",
                    path.display(),
                    PathBuf::from(&corrupt).display()
                ),
                Err(error) => eprintln!(
                    "[bench-log] {} was not a JSON array and could not be set aside: {error}",
                    path.display()
                ),
            }
            Vec::new()
        }
    }
}

/// Appends one metric record to the bench log and echoes it to stdout.
///
/// Failures to read or parse an existing log are not fatal: the unreadable
/// log is renamed to `<name>.corrupt` and a fresh log is started (the
/// measurement still reaches stdout).
pub fn record(bench: &str, metric: &str, value: f64, unit: &str, note: &str) {
    let timestamp = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    println!("[bench-log] {bench}/{metric} = {value:.3} {unit} ({note})");

    let path = log_path();
    let mut entries: Vec<Value> = load_entries(&path);
    entries.push(Value::Map(vec![
        ("timestamp".to_owned(), Value::UInt(timestamp)),
        ("bench".to_owned(), Value::Str(bench.to_owned())),
        ("metric".to_owned(), Value::Str(metric.to_owned())),
        ("value".to_owned(), Value::Float(value)),
        ("unit".to_owned(), Value::Str(unit.to_owned())),
        ("note".to_owned(), Value::Str(note.to_owned())),
    ]));
    let rendered = serde_json::to_string_pretty(&Value::Seq(entries))
        .expect("bench log entries always serialize");
    if let Err(error) = std::fs::write(&path, rendered + "\n") {
        eprintln!("[bench-log] could not write {}: {error}", path.display());
    }
}

/// The note attached to new records: `MAVFI_BENCH_NOTE` if set, otherwise
/// the provided default.
pub fn note_or(default: &str) -> String {
    std::env::var("MAVFI_BENCH_NOTE").unwrap_or_else(|_| default.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `MAVFI_BENCH_LOG` is process-global; serialise the tests that set it.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn records_append_to_the_configured_log() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mavfi_bench_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.json");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("MAVFI_BENCH_LOG", &path);
        record("unit_test", "metric_a", 1.5, "widgets/s", "first");
        record("unit_test", "metric_b", 2.5, "ns", "second");
        std::env::remove_var("MAVFI_BENCH_LOG");

        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let entries = parsed.as_seq().unwrap();
        assert_eq!(entries.len(), 2);
        let first = entries[0].as_map().unwrap();
        assert!(first.iter().any(|(k, v)| k == "metric" && v.as_str() == Some("metric_a")));
        assert!(first.iter().any(|(k, v)| k == "value" && v.as_f64() == Some(1.5)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_logs_are_set_aside_not_overwritten() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mavfi_bench_log_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.json");
        let corrupt = dir.join("log.json.corrupt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
        std::fs::write(&path, "not json at all {{{").unwrap();

        std::env::set_var("MAVFI_BENCH_LOG", &path);
        record("unit_test", "metric_c", 3.5, "ns", "after corruption");
        std::env::remove_var("MAVFI_BENCH_LOG");

        // The bad data was preserved, and a fresh log holds the new record.
        assert_eq!(std::fs::read_to_string(&corrupt).unwrap(), "not json at all {{{");
        let parsed: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.as_seq().unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
    }
}
