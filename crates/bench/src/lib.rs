//! `mavfi-bench` hosts the Criterion benchmark harnesses that regenerate
//! every table and figure of the MAVFI paper's evaluation.  The library
//! itself only provides small helpers shared by the bench targets; run the
//! experiments with `cargo bench -p mavfi-bench`.

#![warn(missing_docs)]

/// Reads the `MAVFI_RUNS` environment variable controlling how many runs
/// per target the simulation-backed benches execute.
///
/// The paper-scale value is 100; the default keeps `cargo bench` runnable in
/// minutes rather than days.
pub fn runs_per_target(default: usize) -> usize {
    std::env::var("MAVFI_RUNS").ok().and_then(|value| value.parse().ok()).unwrap_or(default)
}

/// Prints a banner followed by a pre-rendered table, so every bench target
/// reports its paper-shaped rows in one recognisable block.
pub fn print_experiment(title: &str, table: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{table}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_per_target_falls_back_to_default() {
        std::env::remove_var("MAVFI_RUNS");
        assert_eq!(runs_per_target(7), 7);
    }

    #[test]
    fn print_experiment_does_not_panic() {
        print_experiment("title", "| a |\n");
    }
}
