//! `mavfi-bench` hosts the Criterion benchmark harnesses that regenerate
//! every table and figure of the MAVFI paper's evaluation.  The library
//! itself only provides small helpers shared by the bench targets; run the
//! experiments with `cargo bench -p mavfi-bench`.

#![warn(missing_docs)]

pub mod bench_log;

/// Reads the `MAVFI_RUNS` environment variable controlling how many runs
/// per target the simulation-backed benches execute.
///
/// The paper-scale value is 100; the default keeps `cargo bench` runnable in
/// minutes rather than days.
pub fn runs_per_target(default: usize) -> usize {
    std::env::var("MAVFI_RUNS").ok().and_then(|value| value.parse().ok()).unwrap_or(default)
}

/// The worker count the campaign engine will fan missions out over,
/// honouring `MAVFI_WORKERS` and falling back to the available cores.
///
/// Every simulation-backed experiment driver (Table I/II, Figs. 3, 4, 6, 7)
/// runs its missions through [`mavfi::exec::CampaignExecutor`], which reads
/// the same configuration; this helper only exists so bench banners can
/// report the fan-out that will be used.
pub fn campaign_workers() -> usize {
    mavfi::exec::CampaignExecutor::from_env().workers()
}

/// Prints a banner followed by a pre-rendered table, so every bench target
/// reports its paper-shaped rows in one recognisable block.
pub fn print_experiment(title: &str, table: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{table}");
}

/// [`print_experiment`] for benches whose missions fan out through
/// [`mavfi::exec::CampaignExecutor`]: the banner additionally reports the
/// worker count so recorded output can be matched to its fan-out.  Benches
/// that never run a campaign (pure performance-model or fault-model math)
/// use plain [`print_experiment`] — their numbers do not depend on
/// `MAVFI_WORKERS`.
pub fn print_campaign_experiment(title: &str, table: &str) {
    print_experiment(&format!("{title} [campaign workers: {}]", campaign_workers()), table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_per_target_falls_back_to_default() {
        std::env::remove_var("MAVFI_RUNS");
        assert_eq!(runs_per_target(7), 7);
    }

    #[test]
    fn print_experiment_does_not_panic() {
        print_experiment("title", "| a |\n");
    }

    #[test]
    fn campaign_workers_is_at_least_one() {
        assert!(campaign_workers() >= 1);
    }
}
