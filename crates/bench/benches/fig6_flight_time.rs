//! Fig. 6: flight-time distributions (golden, fault injection, D&R Gaussian,
//! D&R autoencoder) per environment, summarised as worst-case inflation and
//! recovery percentages.
//!
//! Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig6;
use mavfi::experiments::table1::Table1Config;
use mavfi::prelude::*;
use mavfi_bench::{print_campaign_experiment, runs_per_target};

fn run_experiment() {
    let runs = runs_per_target(1);
    let config = Table1Config {
        golden_runs: runs.max(1) * 2,
        injections_per_stage: runs,
        mission_time_budget: 300.0,
        training: TrainingSpec {
            missions: 2,
            mission_time_budget: 40.0,
            epochs: 15,
            ..TrainingSpec::default()
        },
        ..Table1Config::default()
    };
    let (result, _detectors) = fig6::run(&config).expect("fig6 campaign");
    print_campaign_experiment(
        "Fig. 6 — flight time: worst-case inflation and recovery per environment",
        &result.to_table(),
    );
    for (environment, recovery) in result.autoencoder_recoveries() {
        println!(
            "  {environment}: autoencoder recovers {:.1}% of the worst-case inflation",
            recovery * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    run_experiment();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("golden_mission_sparse", |b| {
        b.iter(|| {
            MissionRunner::new(MissionSpec::new(EnvironmentKind::Sparse, 9).with_time_budget(200.0))
                .run_golden()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
