//! Table II: compute-time overhead of detection and recovery per stage and
//! per environment, for the Gaussian and autoencoder schemes.
//!
//! Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::table1::{self, Table1Config};
use mavfi::experiments::table2;
use mavfi::prelude::*;
use mavfi_bench::{print_experiment, runs_per_target};

fn run_experiment() {
    let runs = runs_per_target(1);
    let config = Table1Config {
        golden_runs: runs.max(1),
        injections_per_stage: runs,
        mission_time_budget: 300.0,
        training: TrainingSpec { missions: 2, mission_time_budget: 40.0, epochs: 15, ..TrainingSpec::default() },
        ..Table1Config::default()
    };
    let (result, _) = table1::run(&config).expect("table2 campaign");
    let overheads = table2::from_campaigns(&result.campaigns);
    print_experiment("Table II — detection and recovery compute-time overhead", &overheads.to_table());
    println!(
        "Autoencoder cheaper than Gaussian in every environment: {}",
        overheads.autoencoder_is_cheaper_everywhere()
    );
}

fn bench(c: &mut Criterion) {
    run_experiment();
    // Microbenchmark of the recovery cost model itself.
    let mut group = c.benchmark_group("table2");
    group.bench_function("stage_recompute_cost_model", |b| {
        b.iter(|| {
            Stage::ALL
                .iter()
                .map(|stage| table2::stage_recompute_ms(*stage))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
