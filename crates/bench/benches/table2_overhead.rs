//! Table II: compute-time overhead of detection and recovery per stage and
//! per environment, for the Gaussian and autoencoder schemes.
//!
//! Set `MAVFI_RUNS=100` for paper-scale counts.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::exec::TrainedDetectorCache;
use mavfi::experiments::table1::{self, Table1Config};
use mavfi::experiments::table2;
use mavfi::prelude::*;
use mavfi_bench::{bench_log, print_campaign_experiment, runs_per_target};
use mavfi_sim::env::EnvironmentKind as Env;

/// Measures protected-mission throughput (ticks per second with the
/// autoencoder detector supervising every tick — the overhead Table II
/// quantifies) and logs it to `BENCH_4.json`.
fn measure_protected_throughput() {
    let training = TrainingSpec {
        missions: 2,
        mission_time_budget: 40.0,
        epochs: 15,
        ..TrainingSpec::default()
    };
    let detectors = TrainedDetectorCache::global().get_or_train(Env::Randomized, &training);
    let spec = MissionSpec::new(Env::Sparse, 3).with_time_budget(200.0);
    let runner = MissionRunner::new(spec);
    let _ = runner.run(None, Protection::Autoencoder, Some(&detectors)).expect("protected run");
    let start = Instant::now();
    let outcome =
        runner.run(None, Protection::Autoencoder, Some(&detectors)).expect("protected run");
    let elapsed = start.elapsed().as_secs_f64();
    bench_log::record(
        "table2_overhead",
        "protected_ticks_per_sec",
        outcome.pipeline.ticks as f64 / elapsed.max(1e-9),
        "ticks/s",
        &bench_log::note_or("AAD-protected golden Sparse seed 3"),
    );
}

fn run_experiment() {
    let runs = runs_per_target(1);
    let config = Table1Config {
        golden_runs: runs.max(1),
        injections_per_stage: runs,
        mission_time_budget: 300.0,
        training: TrainingSpec {
            missions: 2,
            mission_time_budget: 40.0,
            epochs: 15,
            ..TrainingSpec::default()
        },
        ..Table1Config::default()
    };
    let (result, _) = table1::run(&config).expect("table2 campaign");
    let overheads = table2::from_campaigns(&result.campaigns);
    print_campaign_experiment(
        "Table II — detection and recovery compute-time overhead",
        &overheads.to_table(),
    );
    println!(
        "Autoencoder cheaper than Gaussian in every environment: {}",
        overheads.autoencoder_is_cheaper_everywhere()
    );
}

fn bench(c: &mut Criterion) {
    measure_protected_throughput();
    // MAVFI_BENCH_QUICK=1 records the throughput metric and skips the full
    // Table II campaign (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    run_experiment();
    // Microbenchmark of the recovery cost model itself.
    let mut group = c.benchmark_group("table2");
    group.bench_function("stage_recompute_cost_model", |b| {
        b.iter(|| Stage::ALL.iter().map(|stage| table2::stage_recompute_ms(*stage)).sum::<f64>())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
