//! Fig. 8: DMR/TMR hardware redundancy versus software anomaly detection on
//! the AirSim UAV and the DJI Spark (Cortex-A57), via the visual
//! performance model.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig8::{self, Fig8Config};
use mavfi_bench::print_experiment;
use mavfi_platform::prelude::*;

fn run_experiment() {
    let result = fig8::run(&Fig8Config::default());
    print_experiment("Fig. 8 — redundancy (DMR/TMR) vs anomaly detection", &result.to_table());
    if let (Some(airsim), Some(spark)) =
        (result.tmr_energy_ratio("AirSim UAV"), result.tmr_energy_ratio("DJI Spark"))
    {
        println!(
            "TMR energy penalty vs anomaly D&R: {airsim:.2}x (AirSim UAV), {spark:.2}x (DJI Spark); paper reports 1.06x and 1.91x flight-time penalties."
        );
    }
}

fn bench(c: &mut Criterion) {
    run_experiment();
    let mut group = c.benchmark_group("fig8");
    group.bench_function("visual_performance_model_evaluation", |b| {
        let model = VisualPerformanceModel::default();
        let uav = UavSpec::dji_spark();
        let platform = ComputePlatform::cortex_a57();
        b.iter(|| model.evaluate(&uav, &platform, ProtectionScheme::Tmr))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
