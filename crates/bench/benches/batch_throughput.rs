//! Batched lockstep mission throughput: `MissionBatch` versus per-mission
//! sequential execution on campaign-shaped work, plus the worker-pool
//! scaling curve for AAD-protected missions.
//!
//! The workload mirrors what `CampaignExecutor::run_campaign` feeds each
//! worker job: consecutive fault triples — the same `(environment, seed)`
//! mission flown injected/Gaussian/autoencoder — so batches share depth
//! capture culls within a triple and score every autoencoder observation in
//! one matrix-matrix pass per stage.  Records to the bench log
//! (`BENCH_9.json` by default):
//!
//! * `sequential_protected_ticks_per_sec` — the 8-mission workload flown
//!   one mission at a time through `MissionRunner` (the pre-batching
//!   campaign inner loop);
//! * `batch_ticks_per_sec_b{1,8,32,128}` — the same-shaped workload flown
//!   as one lockstep `MissionBatch` of that size (`b8` covers the exact
//!   mission list of the sequential baseline); the 32- and 128-mission
//!   lists also get matched same-list `sequential_ticks_per_sec_b{32,128}`
//!   baselines, since they reach into slower seeds than the 8-mission list;
//! * `protected_ticks_per_sec_{1,2,4,8}w` — eight AAD-protected missions
//!   fanned out over a `WorkerPool` of that size (flat on a single-core
//!   host, which is itself worth recording).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::exec::{BatchMission, MissionBatch, TrainedDetectorCache, WorkerPool};
use mavfi::prelude::*;

fn quick_training() -> TrainingSpec {
    // Trained well enough that false-positive recomputations do not dominate
    // the tick cost (an under-trained bank turns every mission into a replan
    // benchmark and hides the capture/scoring effects this bench measures).
    TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 }
}

/// The first `count` missions of an endless campaign-shaped job list:
/// triple `t` flies `(Sparse, seed 91 + t)` three times — injected,
/// Gaussian-protected, autoencoder-protected — with a bit flip in stage
/// `t % 3` at a trigger tick spread across `TriggerWindow::default()`'s
/// [10, 400) range the way `CampaignPlan` samples it (deterministically
/// here, so the workload is stable run to run).
fn campaign_shaped(count: usize) -> Vec<BatchMission> {
    (0..count)
        .map(|index| {
            let triple = (index / 3) as u64;
            let spec =
                MissionSpec::new(EnvironmentKind::Sparse, 91 + triple).with_time_budget(25.0);
            let stage = Stage::ALL[(triple % 3) as usize];
            let trigger = 10 + (triple * 97) % 390;
            let fault = FaultSpec::new(InjectionTarget::Stage(stage), trigger, 7 + triple);
            let protection =
                [Protection::None, Protection::Gaussian, Protection::Autoencoder][index % 3];
            BatchMission { spec, fault: Some(fault), protection }
        })
        .collect()
}

fn trained() -> TrainedDetectors {
    (*TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &quick_training()))
        .clone()
}

/// Flies `missions` one at a time through `MissionRunner` and returns
/// (elapsed seconds, total ticks).
fn fly_sequential(missions: &[BatchMission], detectors: &TrainedDetectors) -> (f64, u64) {
    let begin = Instant::now();
    let mut ticks = 0;
    for mission in missions {
        let outcome = MissionRunner::new(mission.spec)
            .run(mission.fault, mission.protection, Some(detectors))
            .expect("detectors are trained");
        ticks += outcome.pipeline.ticks;
    }
    (begin.elapsed().as_secs_f64(), ticks)
}

/// Flies `missions` as one lockstep batch and returns (elapsed seconds,
/// total ticks).
fn fly_batched(missions: &[BatchMission], detectors: &TrainedDetectors) -> (f64, u64) {
    let begin = Instant::now();
    let outcomes = MissionBatch::new(missions, Some(detectors))
        .expect("detectors are trained")
        .run_to_completion();
    let ticks = outcomes.iter().map(|outcome| outcome.pipeline.ticks).sum();
    (begin.elapsed().as_secs_f64(), ticks)
}

/// Best-of-`reps` throughput in ticks/s.  The 1-core bench host drifts
/// ±10 % run to run, so a single sample cannot resolve the batched vs
/// sequential gap; the max over a few repetitions is the usual wall-clock
/// de-noiser (each repetition is bit-identical work, so the fastest one is
/// the least-perturbed measurement of the same computation).
fn best_throughput(reps: usize, mut flight: impl FnMut() -> (f64, u64)) -> f64 {
    (0..reps)
        .map(|_| {
            let (secs, ticks) = flight();
            ticks as f64 / secs.max(1e-9)
        })
        .fold(0.0, f64::max)
}

fn measure(detectors: &TrainedDetectors) {
    let note = mavfi_bench::bench_log::note_or("campaign-shaped Sparse triples, 25 s budget");
    const REPS: usize = 3;

    // Warm-up: plans, caches, page-in (and the one-off batch scratch
    // growth), outside every timed window.
    let _ = fly_batched(&campaign_shaped(3), detectors);

    let baseline = campaign_shaped(8);
    mavfi_bench::bench_log::record(
        "batch_throughput",
        "sequential_protected_ticks_per_sec",
        best_throughput(REPS, || fly_sequential(&baseline, detectors)),
        "ticks/s",
        &note,
    );

    for batch in [1_usize, 8, 32, 128] {
        let missions = campaign_shaped(batch);
        mavfi_bench::bench_log::record(
            "batch_throughput",
            &format!("batch_ticks_per_sec_b{batch}"),
            best_throughput(REPS, || fly_batched(&missions, detectors)),
            "ticks/s",
            &note,
        );
        // The 32/128-mission lists reach into slower seeds than the
        // 8-mission baseline, so give each its own same-list sequential
        // baseline — otherwise the population shift reads as a batching
        // regression.
        if batch > 8 {
            mavfi_bench::bench_log::record(
                "batch_throughput",
                &format!("sequential_ticks_per_sec_b{batch}"),
                best_throughput(REPS, || fly_sequential(&missions, detectors)),
                "ticks/s",
                &note,
            );
        }
    }

    // Worker-pool scaling: eight autoencoder-protected missions fanned out
    // over 1/2/4/8 workers (ticks identical per worker count; only the wall
    // clock moves — and on a single-core host it barely does).
    let specs: Vec<MissionSpec> = (0..8)
        .map(|index| MissionSpec::new(EnvironmentKind::Sparse, 191 + index).with_time_budget(25.0))
        .collect();
    for workers in [1_usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let begin = Instant::now();
        let mut ticks = 0_u64;
        pool.try_fold_ordered(
            &specs,
            |_, spec| {
                MissionRunner::new(*spec)
                    .run(None, Protection::Autoencoder, Some(detectors))
                    .map(|outcome| outcome.pipeline.ticks)
            },
            &mut ticks,
            |total, _, mission_ticks| *total += mission_ticks,
        )
        .expect("detectors are trained");
        let secs = begin.elapsed().as_secs_f64();
        mavfi_bench::bench_log::record(
            "batch_throughput",
            &format!("protected_ticks_per_sec_{workers}w"),
            ticks as f64 / secs.max(1e-9),
            "ticks/s",
            &note,
        );
    }
}

fn bench(c: &mut Criterion) {
    let detectors = trained();
    measure(&detectors);
    // MAVFI_BENCH_QUICK=1 records the metrics above and skips the Criterion
    // group (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(2);
    let missions = campaign_shaped(8);
    group.bench_function("batched_8", |b| {
        b.iter(|| std::hint::black_box(fly_batched(&missions, &detectors).1))
    });
    group.bench_function("sequential_8", |b| {
        b.iter(|| std::hint::black_box(fly_sequential(&missions, &detectors).1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
