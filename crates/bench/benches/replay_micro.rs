//! Microbenchmarks of the mission record/replay path: closed-loop
//! throughput with and without trace capture (the recording overhead), the
//! ppc-only throughput of replaying a captured trace without the sim in
//! the loop, and the compressed size of the trace itself.
//!
//! Records `ticks/s`, `ns/tick` and `bytes/tick` entries to the bench log
//! (`BENCH_9.json` by default).  `record_overhead_ns_per_tick` is a *signed*
//! difference of two noisy means: a small negative value is ordinary jitter
//! evidence that recording is free, and clamping it to zero would hide
//! exactly the regime the metric exists to document.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::prelude::*;
use mavfi_bench::bench_log;

/// The benchmark mission: the Dense seed-8 flight the golden-trace store
/// and the replan bench also use, so numbers line up across benches.
fn spec() -> MissionSpec {
    MissionSpec::new(EnvironmentKind::Dense, 8).with_time_budget(150.0)
}

/// Times `iters` runs of `job`, returning (mean seconds, ticks) where
/// `ticks` is the tick count `job` reports (identical across runs — every
/// mode here is deterministic).
fn time_runs(iters: u32, mut job: impl FnMut() -> u64) -> (f64, u64) {
    let mut ticks = job(); // warm-up (plans, caches, page-in)
    let begin = Instant::now();
    for _ in 0..iters {
        ticks = std::hint::black_box(job());
    }
    (begin.elapsed().as_secs_f64() / f64::from(iters), ticks)
}

fn measure_record_replay() -> MissionTrace {
    const ITERS: u32 = 3;
    let runner = MissionRunner::new(spec());
    let note = bench_log::note_or("Dense seed-8 mission, 150 s budget");

    // Closed-loop baseline: sim in the loop, no trace capture.
    let (golden_secs, ticks) = time_runs(ITERS, || runner.run_golden().pipeline.ticks);
    bench_log::record(
        "replay_micro",
        "golden_ticks_per_sec",
        ticks as f64 / golden_secs.max(1e-9),
        "ticks/s",
        &note,
    );

    // Same loop with every topic captured into the binary trace stream.
    let (recorded_secs, _) =
        time_runs(ITERS, || runner.run_golden_recorded().unwrap().0.pipeline.ticks);
    bench_log::record(
        "replay_micro",
        "recorded_ticks_per_sec",
        ticks as f64 / recorded_secs.max(1e-9),
        "ticks/s",
        &note,
    );
    bench_log::record(
        "replay_micro",
        "record_overhead_ns_per_tick",
        (recorded_secs - golden_secs) * 1e9 / ticks as f64,
        "ns/tick",
        &note,
    );

    // Replay: ppc pipeline re-driven from the trace, sim out of the loop.
    let (_, trace) = runner.run_golden_recorded().unwrap();
    let (replay_secs, replay_ticks) = time_runs(ITERS, || {
        let report = ReplayHarness::new(&trace).replay().unwrap();
        assert!(report.is_match(), "replay diverged mid-bench: {:?}", report.divergence);
        report.ticks
    });
    bench_log::record(
        "replay_micro",
        "replay_ticks_per_sec",
        replay_ticks as f64 / replay_secs.max(1e-9),
        "ticks/s",
        &note,
    );
    bench_log::record(
        "replay_micro",
        "replay_ns_per_tick",
        replay_secs * 1e9 / replay_ticks as f64,
        "ns/tick",
        &note,
    );
    bench_log::record(
        "replay_micro",
        "trace_bytes_per_tick",
        trace.to_bytes().len() as f64 / ticks as f64,
        "bytes/tick",
        &note,
    );
    trace
}

fn bench(c: &mut Criterion) {
    let trace = measure_record_replay();
    // MAVFI_BENCH_QUICK=1 records the metrics above and skips the Criterion
    // group (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.bench_function("replay_dense_seed8_trace", |b| {
        b.iter(|| {
            let report = ReplayHarness::new(&trace).replay().unwrap();
            std::hint::black_box(report.ticks)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
