//! Fig. 4: per-inter-kernel-state fault sensitivity (flight time + success
//! rate when a single bit flip corrupts each of the 13 monitored states).
//!
//! Prints the paper-shaped table, then benchmarks one state-corrupted
//! mission with Criterion.  Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig4::{self, Fig4Config};
use mavfi::prelude::*;
use mavfi_bench::{print_campaign_experiment, runs_per_target};

fn run_experiment() {
    let runs = runs_per_target(2);
    let config = Fig4Config {
        runs_per_state: runs,
        golden_runs: runs,
        mission_time_budget: 300.0,
        ..Fig4Config::default()
    };
    let result = fig4::run(&config).expect("fig4 experiment");
    print_campaign_experiment(
        &format!("Fig. 4 — per-state fault sensitivity ({runs} runs/state, Sparse)"),
        &result.to_table(),
    );
}

fn bench(c: &mut Criterion) {
    run_experiment();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("single_waypoint_fault_mission", |b| {
        b.iter(|| {
            let spec = MissionSpec::new(EnvironmentKind::Sparse, 7).with_time_budget(200.0);
            let fault = FaultSpec::new(InjectionTarget::State(StateField::WaypointX), 30, 11);
            MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
