//! Table I: flight success rate across the four evaluation environments for
//! golden runs, injection runs and both detection & recovery schemes.
//!
//! Prints the Table I success-rate table, then benchmarks one protected
//! mission with Criterion.  Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::table1::{self, Table1Config};
use mavfi::prelude::*;
use mavfi_bench::{print_campaign_experiment, runs_per_target};

fn run_experiment() -> std::sync::Arc<TrainedDetectors> {
    let runs = runs_per_target(1);
    let config = Table1Config {
        golden_runs: runs.max(1) * 2,
        injections_per_stage: runs,
        mission_time_budget: 300.0,
        training: TrainingSpec {
            missions: 2,
            mission_time_budget: 40.0,
            epochs: 15,
            ..TrainingSpec::default()
        },
        ..Table1Config::default()
    };
    let (result, detectors) = table1::run(&config).expect("table1 campaign");
    print_campaign_experiment(
        &format!(
            "Table I — flight success rate (Factory/Farm/Sparse/Dense, {} injections/stage)",
            config.injections_per_stage
        ),
        &result.to_table(),
    );
    detectors
}

fn bench(c: &mut Criterion) {
    let detectors = run_experiment();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("protected_mission_autoencoder", |b| {
        b.iter(|| {
            let spec = MissionSpec::new(EnvironmentKind::Farm, 5).with_time_budget(150.0);
            let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Control), 30, 2);
            MissionRunner::new(spec)
                .run(Some(fault), Protection::Autoencoder, Some(&*detectors))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
