//! Fig. 7: trajectory comparison in the Dense environment — golden flight,
//! flight with a way-point corruption, and flight with the corruption plus
//! autoencoder detection & recovery.  Emits the trajectories as CSV files
//! under `target/mavfi-fig7/` for plotting.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig7::{self, Fig7Config};
use mavfi::prelude::*;
use mavfi_bench::print_experiment;

fn run_experiment() -> std::sync::Arc<TrainedDetectors> {
    let training = TrainingSpec {
        missions: 2,
        mission_time_budget: 40.0,
        epochs: 15,
        ..TrainingSpec::default()
    };
    // Any other experiment in this process with the same training
    // configuration reuses the bank instead of retraining.
    let detectors =
        TrainedDetectorCache::global().get_or_train(EnvironmentKind::Randomized, &training);

    for (stage, name) in [(Stage::Perception, "perception"), (Stage::Planning, "planning")] {
        let config =
            Fig7Config { fault_stage: stage, mission_time_budget: 300.0, ..Fig7Config::default() };
        let result = fig7::run(&config, &detectors).expect("fig7 flights");
        print_experiment(
            &format!("Fig. 7 — trajectories with a fault in the {} stage (Dense)", stage.label()),
            &result.to_table(),
        );
        let dir = std::path::Path::new("target").join("mavfi-fig7");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{name}_golden.csv")), result.golden.to_csv());
            let _ = std::fs::write(dir.join(format!("{name}_fault.csv")), result.faulty.to_csv());
            let _ = std::fs::write(
                dir.join(format!("{name}_recovered.csv")),
                result.recovered.to_csv(),
            );
            println!("  trajectories written to {}", dir.display());
        }
    }
    detectors
}

fn bench(c: &mut Criterion) {
    let detectors = run_experiment();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("dense_mission_with_recovery", |b| {
        b.iter(|| {
            let config = Fig7Config { mission_time_budget: 200.0, ..Fig7Config::default() };
            fig7::run(&config, &detectors).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
