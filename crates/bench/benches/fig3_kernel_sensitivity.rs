//! Fig. 3: per-kernel fault sensitivity (flight time + success rate when a
//! single bit flip lands in each PPC kernel, Sparse environment).
//!
//! Prints the paper-shaped table, then benchmarks a single fault-injected
//! mission with Criterion.  Set `MAVFI_RUNS=100` for paper-scale counts.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig3::{self, Fig3Config};
use mavfi::prelude::*;
use mavfi_bench::{bench_log, print_campaign_experiment, runs_per_target};

/// Measures steady-state closed-loop throughput (pipeline ticks per second
/// of wall time) over golden missions in the Sparse environment, and logs it
/// to the bench log so the tick-path performance trajectory is tracked
/// across PRs.
fn measure_tick_throughput() {
    let specs: Vec<MissionSpec> = (0..3)
        .map(|seed| MissionSpec::new(EnvironmentKind::Sparse, 3 + seed).with_time_budget(200.0))
        .collect();
    // Warm-up flight (primes caches and the lazy parts of the allocator).
    let _ = MissionRunner::new(specs[0]).run_golden();
    let start = Instant::now();
    let mut ticks = 0u64;
    for spec in &specs {
        ticks += MissionRunner::new(*spec).run_golden().pipeline.ticks;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ticks_per_sec = ticks as f64 / elapsed.max(1e-9);
    bench_log::record(
        "fig3_kernel_sensitivity",
        "ticks_per_sec",
        ticks_per_sec,
        "ticks/s",
        &bench_log::note_or("golden Sparse seeds 3-5"),
    );
    bench_log::record(
        "fig3_kernel_sensitivity",
        "tick_latency",
        1.0e9 / ticks_per_sec.max(1e-9),
        "ns/tick",
        &bench_log::note_or("golden Sparse seeds 3-5"),
    );
}

/// Flies one instrumented golden mission and logs each kernel's p99
/// wall-clock latency, so per-kernel latency trends are tracked alongside
/// whole-tick throughput.
fn measure_kernel_latency_p99() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 3).with_time_budget(200.0);
    let mut sink = MissionTelemetry::new();
    let _ = MissionRunner::new(spec).run_golden_instrumented(&mut sink);
    for kernel in KernelId::ALL {
        let histogram = sink.kernel_latency(kernel);
        if histogram.count() == 0 {
            continue;
        }
        bench_log::record(
            "fig3_kernel_sensitivity",
            &format!("{kernel:?}_p99"),
            histogram.p99() as f64,
            "ns",
            &bench_log::note_or("golden Sparse seed 3, instrumented"),
        );
    }
}

fn run_experiment() {
    let runs = runs_per_target(3);
    let config = Fig3Config {
        runs_per_kernel: runs,
        golden_runs: runs,
        mission_time_budget: 300.0,
        ..Fig3Config::default()
    };
    let result = fig3::run(&config).expect("fig3 experiment");
    print_campaign_experiment(
        &format!("Fig. 3 — per-kernel fault sensitivity ({runs} runs/kernel, Sparse)"),
        &result.to_table(),
    );
    println!(
        "Planning/control kernels inflate worst-case flight time {:+.1}% more than perception kernels.",
        result.planning_control_excess_inflation() * 100.0
    );
}

fn bench(c: &mut Criterion) {
    measure_tick_throughput();
    measure_kernel_latency_p99();
    // MAVFI_BENCH_QUICK=1 records the tick-throughput metrics and skips the
    // full fault-sensitivity campaign (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    run_experiment();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("single_planning_fault_mission", |b| {
        b.iter(|| {
            let spec = MissionSpec::new(EnvironmentKind::Sparse, 3).with_time_budget(200.0);
            let fault = FaultSpec::new(InjectionTarget::Kernel(KernelId::RrtStar), 30, 5);
            MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
