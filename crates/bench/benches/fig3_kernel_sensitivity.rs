//! Fig. 3: per-kernel fault sensitivity (flight time + success rate when a
//! single bit flip lands in each PPC kernel, Sparse environment).
//!
//! Prints the paper-shaped table, then benchmarks a single fault-injected
//! mission with Criterion.  Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig3::{self, Fig3Config};
use mavfi::prelude::*;
use mavfi_bench::{print_experiment, runs_per_target};

fn run_experiment() {
    let runs = runs_per_target(3);
    let config = Fig3Config {
        runs_per_kernel: runs,
        golden_runs: runs,
        mission_time_budget: 300.0,
        ..Fig3Config::default()
    };
    let result = fig3::run(&config).expect("fig3 experiment");
    print_experiment(
        &format!("Fig. 3 — per-kernel fault sensitivity ({runs} runs/kernel, Sparse)"),
        &result.to_table(),
    );
    println!(
        "Planning/control kernels inflate worst-case flight time {:+.1}% more than perception kernels.",
        result.planning_control_excess_inflation() * 100.0
    );
}

fn bench(c: &mut Criterion) {
    run_experiment();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("single_planning_fault_mission", |b| {
        b.iter(|| {
            let spec = MissionSpec::new(EnvironmentKind::Sparse, 3).with_time_budget(200.0);
            let fault = FaultSpec::new(InjectionTarget::Kernel(KernelId::RrtStar), 30, 5);
            MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
