//! Microbenchmarks of the replan path: per-planner `plan_into` latency on a
//! mission-observed occupancy grid (vs the allocating `plan` wrapper), and
//! the end-to-end throughput of a pipeline forced to replan on every tick —
//! the fault-triggered recovery workload of the paper's §VI-C.
//!
//! Records `ns/replan` and `ticks/s` entries to the bench log
//! (`BENCH_5.json` by default).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::prelude::*;
use mavfi_bench::bench_log;
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline};
use mavfi_ppc::planning::{PlannedPath, PlannerAlgorithm, PlannerConfig};
use mavfi_ppc::states::Trajectory;
use mavfi_ppc::tap::{NoopTap, StageTap, TapAction};
use mavfi_sim::sensors::{CaptureScratch, DepthCamera, DepthFrame};
use mavfi_sim::world::World;

/// Flies a prefix of a Dense mission and returns the occupancy grid the
/// vehicle observed plus its position — a realistic replan problem (the
/// straight line to the goal is blocked by observed voxels).
fn observed_replan_problem() -> (OccupancyGrid, Vec3, Vec3) {
    let env = EnvironmentKind::Dense.build(8);
    let goal = env.goal();
    let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 8);
    let mut pipeline = PpcPipeline::new(config, env.start(), goal);
    let camera = DepthCamera::default();
    let mut world = World::new(
        env,
        QuadrotorParams::default(),
        PowerModel::default(),
        MissionConfig::default(),
    );
    let mut frame = DepthFrame::default();
    let mut scratch = CaptureScratch::new();
    for _ in 0..150 {
        camera.capture_into(world.environment(), &world.vehicle().pose(), &mut scratch, &mut frame);
        let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
        world.step(&tick.command, 0.1);
    }
    let position = world.vehicle().state().position;
    (pipeline.occupancy().clone(), position, goal)
}

/// Times per-planner replans on the observed grid: the pooled `plan_into`
/// path and the allocating `plan` wrapper, both on a warm planner instance.
fn measure_planner_latency(grid: &OccupancyGrid, start: Vec3, goal: Vec3) {
    const ITERS: u32 = 24;
    let bounds = EnvironmentKind::Dense.build(8).bounds();
    let config = PlannerConfig::for_bounds(bounds).with_seed(8);
    for algorithm in PlannerAlgorithm::EXTENDED {
        let label = format!("{algorithm:?}").to_lowercase();

        let mut pooled = algorithm.instantiate(config);
        let mut out = PlannedPath::default();
        for _ in 0..3 {
            pooled.plan_into(grid, start, goal, &mut out);
        }
        let begin = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(pooled.plan_into(grid, start, goal, &mut out));
        }
        let pooled_ns = begin.elapsed().as_nanos() as f64 / f64::from(ITERS);
        bench_log::record(
            "replan_micro",
            &format!("{label}_plan_into"),
            pooled_ns,
            "ns/replan",
            &bench_log::note_or("observed Dense seed-8 grid, warm planner"),
        );

        let mut allocating = algorithm.instantiate(config);
        for _ in 0..3 {
            std::hint::black_box(allocating.plan(grid, start, goal));
        }
        let begin = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(allocating.plan(grid, start, goal));
        }
        let allocating_ns = begin.elapsed().as_nanos() as f64 / f64::from(ITERS);
        bench_log::record(
            "replan_micro",
            &format!("{label}_plan"),
            allocating_ns,
            "ns/replan",
            &bench_log::note_or("observed Dense seed-8 grid, warm planner"),
        );
    }
}

/// A tap that requests a planning recomputation on every tick — the
/// deterministic core of the detector's fault-triggered recovery replan.
struct ReplanEveryTick;

impl StageTap for ReplanEveryTick {
    fn after_planning(&mut self, _trajectory: &mut Trajectory, _active_index: usize) -> TapAction {
        TapAction::Recompute
    }
}

/// Times the end-to-end recovery workload: a stationary pipeline replanning
/// (A*, deterministic search) on every tick, capture included.
fn measure_forced_replan_throughput() {
    let env = Environment::new(
        "replan-bench",
        Aabb::new(Vec3::new(-10.0, -20.0, 0.0), Vec3::new(40.0, 20.0, 10.0)),
        vec![Obstacle::from_center(Vec3::new(12.0, 0.0, 2.0), Vec3::new(4.0, 12.0, 6.0))],
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::new(30.0, 0.0, 2.0),
    );
    let config = PpcConfig::new(PlannerAlgorithm::AStar, env.bounds(), 3);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();
    let pose = Pose::new(env.start(), 0.0);
    let vehicle = QuadrotorState { position: env.start(), ..QuadrotorState::default() };
    let mut frame = DepthFrame::default();
    let mut scratch = CaptureScratch::new();
    let mut tap = ReplanEveryTick;

    const TICKS: u32 = 2_000;
    for _ in 0..50 {
        camera.capture_into(&env, &pose, &mut scratch, &mut frame);
        std::hint::black_box(pipeline.tick(&frame, &vehicle, 0.1, &mut tap));
    }
    let begin = Instant::now();
    for _ in 0..TICKS {
        camera.capture_into(&env, &pose, &mut scratch, &mut frame);
        std::hint::black_box(pipeline.tick(&frame, &vehicle, 0.1, &mut tap));
    }
    let elapsed = begin.elapsed().as_secs_f64();
    bench_log::record(
        "replan_micro",
        "forced_replan_ticks_per_sec",
        f64::from(TICKS) / elapsed.max(1e-9),
        "ticks/s",
        &bench_log::note_or("A* replan every tick, stationary walled world"),
    );
}

fn bench(c: &mut Criterion) {
    let (grid, position, goal) = observed_replan_problem();
    measure_planner_latency(&grid, position, goal);
    measure_forced_replan_throughput();
    // MAVFI_BENCH_QUICK=1 records the metrics above and skips the Criterion
    // group (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    let mut group = c.benchmark_group("replan");
    group.sample_size(10);
    group.bench_function("rrt_star_plan_into_observed_grid", |b| {
        let config = PlannerConfig::for_bounds(EnvironmentKind::Dense.build(8).bounds());
        let mut planner = PlannerAlgorithm::RrtStar.instantiate(config.with_seed(8));
        let mut out = PlannedPath::default();
        b.iter(|| planner.plan_into(&grid, position, goal, &mut out))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
