//! Microbenchmarks of the replan path: per-planner `plan_into` latency on a
//! mission-observed occupancy grid (vs the allocating `plan` wrapper, and —
//! for the RRT family — vs the O(n) linear nearest/radius scans the pooled
//! spatial index replaced), and the end-to-end throughput of a pipeline
//! forced to replan on every tick — the fault-triggered recovery workload
//! of the paper's §VI-C.
//!
//! Records `ns/replan` and `ticks/s` entries to the bench log
//! (`BENCH_8.json` by default).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::prelude::*;
use mavfi_bench::bench_log;
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline};
use mavfi_ppc::planning::{MotionPlanner, PlannedPath, PlannerAlgorithm, PlannerConfig};
use mavfi_ppc::states::Trajectory;
use mavfi_ppc::tap::{NoopTap, StageTap, TapAction};
use mavfi_sim::sensors::{CaptureScratch, DepthCamera, DepthFrame};
use mavfi_sim::world::World;

/// Flies a prefix of a Dense mission and returns the occupancy grid the
/// vehicle observed plus its position — a realistic replan problem (the
/// straight line to the goal is blocked by observed voxels).
fn observed_replan_problem() -> (OccupancyGrid, Vec3, Vec3) {
    let env = EnvironmentKind::Dense.build(8);
    let goal = env.goal();
    let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 8);
    let mut pipeline = PpcPipeline::new(config, env.start(), goal);
    let camera = DepthCamera::default();
    let mut world = World::new(
        env,
        QuadrotorParams::default(),
        PowerModel::default(),
        MissionConfig::default(),
    );
    let mut frame = DepthFrame::default();
    let mut scratch = CaptureScratch::new();
    for _ in 0..150 {
        camera.capture_into(world.environment(), &world.vehicle().pose(), &mut scratch, &mut frame);
        let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
        world.step(&tick.command, 0.1);
    }
    let position = world.vehicle().state().position;
    (pipeline.occupancy().clone(), position, goal)
}

/// Times `iters` warm replans through `plan_into` on one planner instance.
fn time_plan_into(
    planner: &mut Box<dyn MotionPlanner + Send>,
    grid: &OccupancyGrid,
    start: Vec3,
    goal: Vec3,
    warmups: u32,
    iters: u32,
) -> f64 {
    let mut out = PlannedPath::default();
    for _ in 0..warmups {
        planner.plan_into(grid, start, goal, &mut out);
    }
    let begin = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(planner.plan_into(grid, start, goal, &mut out));
    }
    begin.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Times per-planner replans on the observed grid: the pooled `plan_into`
/// path (spatial index on, the default), the allocating `plan` wrapper, and
/// — for the three RRT-family planners — `plan_into` with the spatial index
/// disabled, i.e. the O(n) linear nearest/radius scans it replaced, so the
/// indexed-vs-linear speedup is part of the committed perf trajectory.
fn measure_planner_latency(grid: &OccupancyGrid, start: Vec3, goal: Vec3) {
    const ITERS: u32 = 24;
    /// Linear RRT* replans cost close to a second each; a few iterations
    /// are enough for a stable mean without stalling the bench run.
    const LINEAR_STAR_ITERS: u32 = 4;
    let bounds = EnvironmentKind::Dense.build(8).bounds();
    let config = PlannerConfig::for_bounds(bounds).with_seed(8);
    let note = bench_log::note_or("observed Dense seed-8 grid, warm planner");
    for algorithm in PlannerAlgorithm::EXTENDED {
        let label = format!("{algorithm:?}").to_lowercase();

        let mut pooled = algorithm.instantiate(config);
        let pooled_ns = time_plan_into(&mut pooled, grid, start, goal, 3, ITERS);
        bench_log::record(
            "replan_micro",
            &format!("{label}_plan_into"),
            pooled_ns,
            "ns/replan",
            &note,
        );

        let mut allocating = algorithm.instantiate(config);
        for _ in 0..3 {
            std::hint::black_box(allocating.plan(grid, start, goal));
        }
        let begin = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(allocating.plan(grid, start, goal));
        }
        let allocating_ns = begin.elapsed().as_nanos() as f64 / f64::from(ITERS);
        bench_log::record(
            "replan_micro",
            &format!("{label}_plan"),
            allocating_ns,
            "ns/replan",
            &note,
        );

        if matches!(
            algorithm,
            PlannerAlgorithm::Rrt | PlannerAlgorithm::RrtConnect | PlannerAlgorithm::RrtStar
        ) {
            let iters =
                if algorithm == PlannerAlgorithm::RrtStar { LINEAR_STAR_ITERS } else { ITERS };
            let mut linear = algorithm.instantiate(config);
            linear.set_spatial_index_enabled(false);
            let linear_ns = time_plan_into(&mut linear, grid, start, goal, 1, iters);
            bench_log::record(
                "replan_micro",
                &format!("{label}_plan_into_linear"),
                linear_ns,
                "ns/replan",
                &note,
            );
        }
    }
}

/// A tap that requests a planning recomputation on every tick — the
/// deterministic core of the detector's fault-triggered recovery replan.
struct ReplanEveryTick;

impl StageTap for ReplanEveryTick {
    fn after_planning(&mut self, _trajectory: &mut Trajectory, _active_index: usize) -> TapAction {
        TapAction::Recompute
    }
}

/// Times the end-to-end recovery workload: a stationary pipeline replanning
/// (A*, deterministic search) on every tick, capture included.
fn measure_forced_replan_throughput() {
    let env = Environment::new(
        "replan-bench",
        Aabb::new(Vec3::new(-10.0, -20.0, 0.0), Vec3::new(40.0, 20.0, 10.0)),
        vec![Obstacle::from_center(Vec3::new(12.0, 0.0, 2.0), Vec3::new(4.0, 12.0, 6.0))],
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::new(30.0, 0.0, 2.0),
    );
    let config = PpcConfig::new(PlannerAlgorithm::AStar, env.bounds(), 3);
    let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
    let camera = DepthCamera::default();
    let pose = Pose::new(env.start(), 0.0);
    let vehicle = QuadrotorState { position: env.start(), ..QuadrotorState::default() };
    let mut frame = DepthFrame::default();
    let mut scratch = CaptureScratch::new();
    let mut tap = ReplanEveryTick;

    const TICKS: u32 = 2_000;
    for _ in 0..50 {
        camera.capture_into(&env, &pose, &mut scratch, &mut frame);
        std::hint::black_box(pipeline.tick(&frame, &vehicle, 0.1, &mut tap));
    }
    let begin = Instant::now();
    for _ in 0..TICKS {
        camera.capture_into(&env, &pose, &mut scratch, &mut frame);
        std::hint::black_box(pipeline.tick(&frame, &vehicle, 0.1, &mut tap));
    }
    let elapsed = begin.elapsed().as_secs_f64();
    bench_log::record(
        "replan_micro",
        "forced_replan_ticks_per_sec",
        f64::from(TICKS) / elapsed.max(1e-9),
        "ticks/s",
        &bench_log::note_or("A* replan every tick, stationary walled world"),
    );
}

fn bench(c: &mut Criterion) {
    let (grid, position, goal) = observed_replan_problem();
    measure_planner_latency(&grid, position, goal);
    measure_forced_replan_throughput();
    // MAVFI_BENCH_QUICK=1 records the metrics above and skips the Criterion
    // group (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    let mut group = c.benchmark_group("replan");
    group.sample_size(10);
    group.bench_function("rrt_star_plan_into_observed_grid", |b| {
        let config = PlannerConfig::for_bounds(EnvironmentKind::Dense.build(8).bounds());
        let mut planner = PlannerAlgorithm::RrtStar.instantiate(config.with_seed(8));
        let mut out = PlannedPath::default();
        b.iter(|| planner.plan_into(&grid, position, goal, &mut out))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
