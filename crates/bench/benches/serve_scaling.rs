//! Served-campaign scaling: the same campaign submitted to a
//! [`CampaignServer`] whose executor has 1/2/4/8 workers, driven to
//! completion through the full service path — bus submission, chunked
//! strides, per-stride checkpoint writes and progress publication.
//! Records to the bench log (`BENCH_10.json` by default):
//!
//! * `served_jobs_per_sec_{1,2,4,8}w` — campaign jobs completed per second
//!   through the served path at that worker count (the per-worker scaling
//!   curve; the checkpoint stride is sized to the worker count so every
//!   worker has a chunk in flight between checkpoints — the curve is still
//!   flat on a single-core host, which is itself worth recording);
//! * `library_jobs_per_sec_1w` — the same campaign through plain
//!   `run_campaign`, the no-service baseline;
//! * `serve_overhead_pct_1w` — what the service layer (checkpointing,
//!   progress streaming, bus hops) costs over the library call at one
//!   worker, in percent of wall time.
//!
//! Results are byte-identical across worker counts and to the library call
//! (`tests/server_determinism.rs`); only the wall clock moves here.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::prelude::*;
use mavfi::serve::{CampaignClient, CampaignRequest, CampaignServer};
use mavfi_middleware::Bus;

fn bench_request() -> CampaignRequest {
    let mut request = CampaignRequest::quick(EnvironmentKind::Sparse, 640);
    // 4 golden + 12 injections = 16 jobs in 8 chunks of 2: enough strides
    // to exercise the checkpoint cadence at one worker and enough chunks to
    // keep all 8 workers busy within a stride at the top of the curve.
    request.config.golden_runs = 4;
    request.config.injections_per_stage = 4;
    request.config.mission_time_budget = 25.0;
    request.batch_size = 2;
    request
}

fn job_count(request: &CampaignRequest) -> f64 {
    (request.config.golden_runs + 3 * request.config.injections_per_stage) as f64
}

/// Serves `request` once on a fresh server and returns elapsed seconds.
fn serve_once(request: &CampaignRequest, workers: usize, dir: &std::path::Path) -> f64 {
    let _ = std::fs::remove_dir_all(dir);
    let begin = Instant::now();
    let bus = Bus::new();
    // Stride = worker count: each checkpointed stride spans enough chunks
    // for every worker to run one, so the curve measures pool scaling
    // rather than the stride-1 chunk-at-a-time cadence.
    let server = CampaignServer::new(CampaignExecutor::new(workers), dir)
        .expect("create server")
        .with_checkpoint_stride(workers);
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let ticket = client.submit(request).expect("submit");
    while client.result(ticket.job_id).expect("job is known").is_none() {
        server.step_once(&bus).expect("server step");
    }
    begin.elapsed().as_secs_f64()
}

/// One library `run_campaign` pass; returns elapsed seconds.
fn library_once(request: &CampaignRequest) -> f64 {
    let scheme = SchemeConfig::cached(request.training_environment, request.training);
    let begin = Instant::now();
    CampaignExecutor::new(1)
        .with_batch_size(request.batch_size)
        .run_campaign(&request.config, &scheme)
        .expect("library campaign");
    begin.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall time: each repetition is bit-identical work, so the
/// fastest one is the least-perturbed measurement (same de-noiser as
/// `batch_throughput`).
fn best_secs(reps: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| run()).fold(f64::MAX, f64::min)
}

fn measure() {
    let note = mavfi_bench::bench_log::note_or("served Sparse campaign, 16 jobs, 25 s budget");
    const REPS: usize = 3;
    let request = bench_request();
    let jobs = job_count(&request);
    let dir = std::env::temp_dir().join(format!("mavfi_serve_bench_{}", std::process::id()));

    // Warm-up outside every timed window: detector training (shared cache)
    // plus plan/scratch first-touch costs.
    let _ = serve_once(&request, 1, &dir);

    for workers in [1_usize, 2, 4, 8] {
        let secs = best_secs(REPS, || serve_once(&request, workers, &dir));
        mavfi_bench::bench_log::record(
            "serve_scaling",
            &format!("served_jobs_per_sec_{workers}w"),
            jobs / secs.max(1e-9),
            "jobs/s",
            &note,
        );
    }

    let library_secs = best_secs(REPS, || library_once(&request));
    mavfi_bench::bench_log::record(
        "serve_scaling",
        "library_jobs_per_sec_1w",
        jobs / library_secs.max(1e-9),
        "jobs/s",
        &note,
    );
    let served_secs = best_secs(REPS, || serve_once(&request, 1, &dir));
    mavfi_bench::bench_log::record(
        "serve_scaling",
        "serve_overhead_pct_1w",
        (served_secs / library_secs.max(1e-9) - 1.0) * 100.0,
        "%",
        &note,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench(c: &mut Criterion) {
    measure();
    // MAVFI_BENCH_QUICK=1 records the metrics above and skips the Criterion
    // group (used by scripts/bench.sh).
    if std::env::var("MAVFI_BENCH_QUICK").is_ok() {
        return;
    }
    let request = bench_request();
    let dir = std::env::temp_dir().join(format!("mavfi_serve_crit_{}", std::process::id()));
    let mut group = c.benchmark_group("serve_scaling");
    group.sample_size(2);
    group.bench_function("served_1w", |b| {
        b.iter(|| std::hint::black_box(serve_once(&request, 1, &dir)))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
