//! Microbenchmarks of the detection path itself: preprocessing, the
//! Gaussian range checks and the autoencoder forward pass.  These are the
//! per-tick costs behind the Table II overhead percentages.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi_bench::bench_log;
use mavfi_detect::prelude::*;
use mavfi_nn::train::TrainConfig;
use mavfi_ppc::states::{MonitoredStates, StateField};

fn sample_states(step: usize) -> MonitoredStates {
    let t = step as f64 * 0.1;
    let mut states = MonitoredStates::default();
    states.set_field(StateField::TimeToCollision, 4.0 + (t * 0.1).sin());
    states.set_field(StateField::WaypointX, 5.0 + 2.0 * t);
    states.set_field(StateField::WaypointY, -3.0 + 1.5 * t);
    states.set_field(StateField::CommandVx, 2.0 + 0.3 * (t * 0.5).sin());
    states.set_field(StateField::CommandVy, 1.5 + 0.3 * (t * 0.5).cos());
    states
}

fn trained_parts() -> (GadBank, AadDetector) {
    let mut telemetry = TelemetrySet::new();
    for step in 0..400 {
        telemetry.record(&sample_states(step));
    }
    let gad = telemetry.build_gad(CgadConfig::default());
    let (aad, _) = telemetry
        .train_aad(AadConfig::default(), &TrainConfig { epochs: 10, ..TrainConfig::default() });
    (gad, aad)
}

/// Times the AAD reconstruction-error score — the per-tick detection cost —
/// and logs ns/score to `BENCH_4.json`: both the allocating compat path
/// (`aad_score`, comparable with pre-refactor baselines) and the
/// scratch-buffer path the detector tap actually runs every tick
/// (`aad_score_scratch`).
fn measure_score_latency(aad: &AadDetector, deltas: &[f64; MonitoredStates::DIM]) {
    const ITERS: u32 = 20_000;
    let time_it = |mut score: Box<dyn FnMut() -> f64>, metric: &str, note: &str| {
        let mut sink = 0.0;
        for _ in 0..ITERS / 10 {
            sink += score();
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            sink += score();
        }
        let nanos = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
        std::hint::black_box(sink);
        bench_log::record("detector_micro", metric, nanos, "ns/score", &bench_log::note_or(note));
    };
    time_it(
        Box::new(|| aad.score(std::hint::black_box(deltas))),
        "aad_score",
        "13-6-3-13 reconstruction error (allocating path)",
    );
    let mut scratch = AadScratch::new();
    time_it(
        Box::new(move || aad.score_with(std::hint::black_box(deltas), &mut scratch)),
        "aad_score_scratch",
        "13-6-3-13 reconstruction error (per-tick scratch path)",
    );
}

fn bench(c: &mut Criterion) {
    let (mut gad, mut aad) = trained_parts();
    let mut preprocessor = Preprocessor::new();
    let deltas = preprocessor.process(&sample_states(0));
    measure_score_latency(&aad, &deltas);

    c.bench_function("preprocess_one_tick", |b| {
        let mut preprocessor = Preprocessor::new();
        let mut step = 0usize;
        b.iter(|| {
            step += 1;
            preprocessor.process(&sample_states(step))
        })
    });

    c.bench_function("gad_observe_13_states", |b| b.iter(|| gad.observe_all(&deltas)));

    c.bench_function("aad_forward_pass", |b| b.iter(|| aad.observe(&deltas)));

    c.bench_function("magnitude_code", |b| {
        b.iter(|| magnitude_code(std::hint::black_box(123.456)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
