//! Microbenchmarks of the detection path itself: preprocessing, the
//! Gaussian range checks and the autoencoder forward pass.  These are the
//! per-tick costs behind the Table II overhead percentages.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi_detect::prelude::*;
use mavfi_nn::train::TrainConfig;
use mavfi_ppc::states::{MonitoredStates, StateField};

fn sample_states(step: usize) -> MonitoredStates {
    let t = step as f64 * 0.1;
    let mut states = MonitoredStates::default();
    states.set_field(StateField::TimeToCollision, 4.0 + (t * 0.1).sin());
    states.set_field(StateField::WaypointX, 5.0 + 2.0 * t);
    states.set_field(StateField::WaypointY, -3.0 + 1.5 * t);
    states.set_field(StateField::CommandVx, 2.0 + 0.3 * (t * 0.5).sin());
    states.set_field(StateField::CommandVy, 1.5 + 0.3 * (t * 0.5).cos());
    states
}

fn trained_parts() -> (GadBank, AadDetector) {
    let mut telemetry = TelemetrySet::new();
    for step in 0..400 {
        telemetry.record(&sample_states(step));
    }
    let gad = telemetry.build_gad(CgadConfig::default());
    let (aad, _) = telemetry.train_aad(
        AadConfig::default(),
        &TrainConfig { epochs: 10, ..TrainConfig::default() },
    );
    (gad, aad)
}

fn bench(c: &mut Criterion) {
    let (mut gad, mut aad) = trained_parts();
    let mut preprocessor = Preprocessor::new();
    let deltas = preprocessor.process(&sample_states(0));

    c.bench_function("preprocess_one_tick", |b| {
        let mut preprocessor = Preprocessor::new();
        let mut step = 0usize;
        b.iter(|| {
            step += 1;
            preprocessor.process(&sample_states(step))
        })
    });

    c.bench_function("gad_observe_13_states", |b| b.iter(|| gad.observe_all(&deltas)));

    c.bench_function("aad_forward_pass", |b| b.iter(|| aad.observe(&deltas)));

    c.bench_function("magnitude_code", |b| b.iter(|| magnitude_code(std::hint::black_box(123.456))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
