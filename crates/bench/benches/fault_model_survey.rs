//! §III-B fault-model characterisation: per-bit-field severity of single-bit
//! flips over the operand values an actual mission produces.  Reproduces the
//! finding that sign/exponent flips dominate the harmful corruptions while
//! the mantissa (where most random flips land) is largely benign.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fault_model::{self, FaultModelConfig};
use mavfi_bench::print_experiment;
use mavfi_fault::severity::{FlipSurvey, SeverityThresholds};

fn run_experiment() {
    let config = FaultModelConfig { mission_time_budget: 60.0, ..FaultModelConfig::default() };
    let result = fault_model::run(&config).expect("fault-model experiment");
    print_experiment(
        &format!(
            "§III-B — bit-field sensitivity ({} operand values surveyed, sign/exponent dominate: {})",
            result.values_surveyed,
            result.sign_exponent_dominate()
        ),
        &result.to_table(),
    );
}

fn bench(c: &mut Criterion) {
    run_experiment();

    let values: Vec<f64> =
        (1..200).map(|i| (i as f64) * 0.37 - 20.0).filter(|v| *v != 0.0).collect();
    let mut group = c.benchmark_group("fault_model");
    group.bench_function("flip_survey_200_values", |b| {
        b.iter(|| FlipSurvey::over_values(&values, SeverityThresholds::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
