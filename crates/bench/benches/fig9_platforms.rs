//! Fig. 9: desktop (i9) versus embedded (Cortex-A57/TX2) companion
//! computer: specification table, modelled flight time/energy, and measured
//! recovery from a reduced Sparse fault-injection campaign.
//!
//! Set `MAVFI_RUNS=100` for paper-scale counts.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::fig9::{self, Fig9Config};
use mavfi::experiments::table1::{self, Table1Config};
use mavfi::prelude::*;
use mavfi_bench::{print_campaign_experiment, runs_per_target};

fn run_experiment() {
    // A reduced Sparse campaign supplies the measured recovery percentages.
    let runs = runs_per_target(1);
    let config = Table1Config {
        golden_runs: runs.max(1) * 2,
        injections_per_stage: runs,
        mission_time_budget: 300.0,
        training: TrainingSpec {
            missions: 2,
            mission_time_budget: 40.0,
            epochs: 15,
            ..TrainingSpec::default()
        },
        ..Table1Config::default()
    };
    let (table1_result, _) = table1::run_environments(&config, &[EnvironmentKind::Sparse], None)
        .expect("sparse campaign");
    let campaign = table1_result.campaign(EnvironmentKind::Sparse);

    let result = fig9::run(&Fig9Config::default(), campaign);
    print_campaign_experiment(
        "Fig. 9 — computing platform comparison (i9 vs Cortex-A57)",
        &result.to_table(),
    );
    println!(
        "Embedded platform flies {:.1}x slower than the desktop platform (paper: ~2.8x).",
        result.embedded_slowdown()
    );
}

fn bench(c: &mut Criterion) {
    run_experiment();
    let mut group = c.benchmark_group("fig9");
    group.bench_function("platform_model_evaluation", |b| {
        b.iter(|| fig9::run(&Fig9Config::default(), None))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
