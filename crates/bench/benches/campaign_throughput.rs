//! Campaign throughput: sequential versus sharded execution of the same
//! campaign, and cold versus cached detector training.
//!
//! This bench drives the two levers of `mavfi::exec`: the worker pool
//! (`MAVFI_WORKERS`, here pinned per measurement) and the trained-detector
//! cache.  It first verifies that the parallel path reproduces the
//! sequential results exactly, then reports wall times for:
//!
//! * `sequential` — the full campaign on one worker;
//! * `sharded` — the identical campaign sharded across workers;
//! * `train_cold` / `train_cached` — detector training from scratch versus
//!   a cache hit for the same `(environment, TrainingSpec)` key.
//!
//! Set `MAVFI_RUNS` to scale the campaign and `MAVFI_BENCH_WORKERS` to pick
//! the sharded worker count (default: available parallelism).

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::exec::{run_campaign, CampaignExecutor, SchemeConfig, TrainedDetectorCache};
use mavfi::prelude::*;
use mavfi_bench::{print_campaign_experiment, runs_per_target};

fn quick_training() -> TrainingSpec {
    TrainingSpec { missions: 1, base_seed: 4_812, mission_time_budget: 25.0, epochs: 5 }
}

fn quick_campaign() -> CampaignConfig {
    let runs = runs_per_target(1);
    let mut config = CampaignConfig::quick(EnvironmentKind::Sparse, 91);
    config.golden_runs = runs.max(1);
    config.injections_per_stage = runs;
    // Short budget, but long enough for a Sparse golden flight (~18 s of
    // sim time) to land: a campaign is 1 + 3×3 missions per measurement,
    // the Criterion stand-in re-runs each routine sample_size + 1 times,
    // and D&R missions pay real recomputation work on top of the mission
    // cost, so only runs that genuinely fail should burn the full budget.
    config.mission_time_budget = 25.0;
    config
}

fn sharded_workers() -> usize {
    std::env::var("MAVFI_BENCH_WORKERS")
        .ok()
        .and_then(|value| value.parse().ok())
        .filter(|&workers| workers > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        })
}

fn bench(c: &mut Criterion) {
    let cache = TrainedDetectorCache::global();
    let training = quick_training();
    let config = quick_campaign();
    let workers = sharded_workers();

    // Cold vs cached training: the first call below is the process's first
    // use of this configuration, so it trains; the bench loop afterwards
    // always hits.
    let train_start = std::time::Instant::now();
    let detectors = cache.get_or_train(EnvironmentKind::Randomized, &training);
    let cold_training = train_start.elapsed();
    let scheme = SchemeConfig::shared(detectors);

    // The two paths must agree bit for bit before their timing means
    // anything.
    let sequential = run_campaign(&config, &scheme, 1).expect("sequential campaign");
    let sharded = run_campaign(&config, &scheme, workers).expect("sharded campaign");
    assert_eq!(sequential, sharded, "sharded campaign must reproduce sequential results");

    print_campaign_experiment(
        &format!(
            "Campaign throughput — {} golden + {} injection runs, Sparse (cold training {:.2} s, \
             cache {:?})",
            config.golden_runs,
            3 * config.injections_per_stage,
            cold_training.as_secs_f64(),
            cache.stats(),
        ),
        &format!(
            "golden success {:.0}%, mean flight time {:.1} s\n",
            sequential.golden.summary.success_rate * 100.0,
            sequential.golden.summary.mean_flight_time_s
        ),
    );

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(2);
    group.bench_function("sequential", |b| {
        b.iter(|| run_campaign(&config, &scheme, 1).expect("sequential campaign"))
    });
    group.bench_function(&format!("sharded_{workers}_workers"), |b| {
        let executor = CampaignExecutor::new(workers);
        b.iter(|| executor.run_campaign(&config, &scheme).expect("sharded campaign"))
    });
    group.bench_function("train_cold", |b| {
        b.iter(|| {
            // A fresh cache per iteration forces real training.
            let cold = TrainedDetectorCache::new();
            cold.get_or_train(EnvironmentKind::Randomized, &training)
        })
    });
    group.bench_function("train_cached", |b| {
        b.iter(|| cache.get_or_train(EnvironmentKind::Randomized, &training))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
