//! Ablation benches: the Gaussian `n_sigma` sweep, the autoencoder
//! threshold-margin sweep, the detector-family comparison (GAD / EWMA /
//! static range / Mahalanobis / AAD) and the autoencoder architecture sweep.
//!
//! These are the design-choice ablations DESIGN.md calls out; they operate
//! on stream-level detection quality so they stay cheap.  Set
//! `MAVFI_RUNS` >= 3 to collect telemetry from more training missions.

use criterion::{criterion_group, criterion_main, Criterion};
use mavfi::experiments::ablation::{self, AblationConfig};
use mavfi_bench::{print_experiment, runs_per_target};
use mavfi_detect::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_experiment() {
    let config = AblationConfig {
        training_missions: runs_per_target(2),
        mission_time_budget: 40.0,
        epochs: 15,
        ..AblationConfig::default()
    };
    let result = ablation::run(&config).expect("ablation experiment");
    print_experiment("Ablation — detector calibration and design choices", &result.to_table());
}

/// Synthetic correlated telemetry for the micro-benchmarks.
fn synthetic_samples(count: usize, seed: u64) -> Vec<[f64; 13]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a: f64 = rng.gen_range(-8.0..8.0);
            std::array::from_fn(|i| if i < 7 { a } else { -a } + rng.gen_range(-0.5..0.5))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    run_experiment();

    let training = synthetic_samples(600, 1);
    let mut gad = GadBank::new(CgadConfig::default());
    gad.prime(&training);
    let mahalanobis = MahalanobisDetector::fit(&training, MahalanobisConfig::default());
    let (aad, _) = AadDetector::train(
        &training,
        AadConfig::default(),
        &mavfi_nn::train::TrainConfig { epochs: 10, ..Default::default() },
    );
    let sample = training[0];

    let mut group = c.benchmark_group("ablation_scoring");
    group.bench_function("gad_score", |b| b.iter(|| gad.score(&sample)));
    group.bench_function("mahalanobis_distance", |b| b.iter(|| mahalanobis.distance(&sample)));
    group.bench_function("aad_reconstruction_error", |b| b.iter(|| aad.score(&sample)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
