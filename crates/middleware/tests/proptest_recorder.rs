//! Property tests for the `Recorder` ring buffer (against a reference
//! model) and for the binary trace format's round-trip guarantees.

use std::collections::VecDeque;
use std::time::Duration;

use proptest::prelude::*;

use mavfi_middleware::trace::{
    compress, compress_container, decompress, decompress_container, read_summary, TopicDecl,
    TraceReader, TraceWriter,
};
use mavfi_middleware::Recorder;

/// An unbounded reference model of the recorder: same observable behaviour,
/// trivially correct bookkeeping.
struct ModelRecorder {
    entries: VecDeque<(u64, String)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl ModelRecorder {
    fn new(capacity: usize) -> Self {
        Self { entries: VecDeque::new(), capacity: capacity.max(1), next_seq: 0, dropped: 0 }
    }

    fn record(&mut self, topic: &str) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((self.next_seq, topic.to_owned()));
        self.next_seq += 1;
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

const TOPICS: [&str; 3] = ["imu", "cmd", "λ/мульти"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random record/clear interleavings keep the ring aligned with the
    /// reference model: same retained (seq, topic) entries, same dropped
    /// count, sequence numbers contiguous across wraps, capacity respected.
    #[test]
    fn ring_matches_reference_model(
        capacity in 0usize..9,
        ops in proptest::collection::vec(0u8..8, 1..120),
    ) {
        let recorder = Recorder::with_capacity(capacity);
        let mut model = ModelRecorder::new(capacity);
        for op in ops {
            match op {
                7 => {
                    recorder.clear();
                    model.clear();
                }
                n => {
                    let topic = TOPICS[(n as usize) % TOPICS.len()];
                    recorder.record(topic, Duration::ZERO, format!("payload-{n}-λλλ"));
                    model.record(topic);
                }
            }
            prop_assert!(recorder.len() <= recorder.capacity());
            prop_assert_eq!(recorder.len(), model.entries.len());
            prop_assert_eq!(recorder.dropped(), model.dropped);
            prop_assert_eq!(recorder.total_recorded(), model.next_seq);
            let actual: Vec<(u64, String)> = recorder.with_entries(|entries| {
                entries.map(|e| (e.seq, e.topic.clone())).collect()
            });
            let expected: Vec<(u64, String)> = model.entries.iter().cloned().collect();
            prop_assert_eq!(&actual, &expected);
            // Retained sequence numbers are contiguous even across wraps.
            for pair in expected.windows(2) {
                prop_assert_eq!(pair[1].0, pair[0].0 + 1);
            }
            for entry in recorder.entries() {
                prop_assert!(entry.summary.len() <= 160);
            }
        }
    }

    /// Arbitrary record sequences survive a write→read round trip with every
    /// stamp and payload intact and the footer digest verifying.
    #[test]
    fn trace_stream_round_trips(
        records in proptest::collection::vec(
            (0u8..3, 0u64..50, -1.0e6f64..1.0e6, proptest::collection::vec(any::<u8>(), 0..40)),
            0..60,
        ),
        meta in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let topics =
            vec![TopicDecl::new(1, "a", 1), TopicDecl::new(2, "b", 2), TopicDecl::new(9, "c", 1)];
        let ids = [1u8, 2, 9];
        let mut writer = TraceWriter::new(&meta, &topics);
        let mut tick = 0u64;
        let mut written = Vec::new();
        for (slot, advance, sim_time, payload) in records {
            tick += advance;
            let topic = ids[slot as usize];
            writer.record(topic, tick, sim_time, &payload);
            written.push((topic, tick, sim_time.to_bits(), payload));
        }
        let stream = writer.finish();

        let mut reader = TraceReader::new(&stream).unwrap();
        prop_assert_eq!(reader.meta(), &meta[..]);
        let mut read_back = Vec::new();
        while let Some(record) = reader.next_record().unwrap() {
            read_back.push((
                record.topic,
                record.tick,
                record.sim_time.to_bits(),
                record.payload.to_vec(),
            ));
        }
        prop_assert_eq!(&read_back, &written);
        let summary = reader.summary().unwrap();
        prop_assert_eq!(summary.records, written.len() as u64);
        prop_assert_eq!(read_summary(&stream).unwrap(), summary.clone());
    }

    /// LZSS inverts exactly on arbitrary bytes, and the container wrapper
    /// restores the original stream byte-for-byte.
    #[test]
    fn lzss_and_container_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let packed = compress(&bytes);
        prop_assert_eq!(&decompress(&packed, bytes.len()).unwrap(), &bytes);
        prop_assert_eq!(&decompress_container(&compress_container(&bytes)).unwrap(), &bytes);
    }

    /// Flipping any single byte of a finished stream never panics the
    /// reader: it either fails with a typed error or (for bytes the digest
    /// does not witness, e.g. inside the meta blob) still parses.
    #[test]
    fn corrupted_streams_never_panic(flip_at in 0usize..200, flip_with in 1u8..=255) {
        let topics = vec![TopicDecl::new(1, "pose", 1)];
        let mut writer = TraceWriter::new(b"{\"seed\":3}", &topics);
        for tick in 0..12u64 {
            writer.record(1, tick, tick as f64 * 0.1, &[tick as u8, 0xAB]);
        }
        let mut stream = writer.finish();
        let index = flip_at % stream.len();
        stream[index] ^= flip_with;
        if let Ok(mut reader) = TraceReader::new(&stream) {
            while let Ok(Some(_)) = reader.next_record() {}
        }
    }
}
