//! Typed, compact binary mission traces: [`TraceWriter`] / [`TraceReader`].
//!
//! Where [`Recorder`](crate::record::Recorder) keeps a bounded,
//! human-readable tail of `Debug`-rendered publications, the trace layer is
//! the lossless capture path: a versioned binary stream of per-topic records
//! with varint-delta tick / sim-time stamps and an FNV-1a stream digest, so
//! a full mission can be re-driven bit-identically from its trace (see
//! `docs/REPLAY.md` in the repository root).
//!
//! The layer is deliberately schema-agnostic: topics are declared by `(id,
//! name, schema version)` and payloads are opaque byte strings encoded by
//! the caller (the `mavfi` core crate owns the per-topic schemas).  What the
//! middleware guarantees is framing, stamp compression, integrity (digest
//! verification on read) and typed errors — a corrupted or foreign file
//! yields a [`TraceError`], never a panic.
//!
//! # Stream layout (version 1)
//!
//! ```text
//! header:  magic "MVFT" · u16 version · varint meta_len · meta bytes
//!          · u8 topic_count · per topic: u8 id, u8 name_len, name,
//!            u8 schema_version
//! record:  u8 topic_id (≠ 0xFF) · varint tick_delta
//!          · varint sim_time_bits_xor · varint payload_len · payload
//! footer:  0xFF · varint record_count · u64 stream_digest
//!          · u8 topic_count · per topic: u8 id, varint records, u64 digest
//! ```
//!
//! Tick stamps are non-decreasing and delta-encoded; sim-time stamps are
//! stored as the XOR of consecutive `f64` bit patterns (close timestamps
//! share high bits, so the varint stays short).  On-disk traces additionally
//! go through [`compress_container`] (an LZSS byte compressor, offline and
//! dependency-free).
//!
//! # Examples
//!
//! ```
//! use mavfi_middleware::trace::{TopicDecl, TraceReader, TraceWriter};
//!
//! let topics = vec![TopicDecl::new(1, "pose", 1)];
//! let mut writer = TraceWriter::new(b"{\"mission\":7}", &topics);
//! writer.record(1, 0, 0.0, &[1, 2, 3]);
//! writer.record(1, 1, 0.1, &[4, 5, 6]);
//! let stream = writer.finish();
//!
//! let mut reader = TraceReader::new(&stream).unwrap();
//! assert_eq!(reader.meta(), b"{\"mission\":7}");
//! let first = reader.next_record().unwrap().unwrap();
//! assert_eq!((first.topic, first.tick, first.payload), (1, 0, &[1u8, 2, 3][..]));
//! ```

use std::error::Error;
use std::fmt;

/// Magic bytes opening an uncompressed trace stream.
pub const STREAM_MAGIC: [u8; 4] = *b"MVFT";
/// Magic bytes opening an on-disk (container) trace file.
pub const CONTAINER_MAGIC: [u8; 4] = *b"MVTZ";
/// Current trace stream format version.
pub const TRACE_VERSION: u16 = 1;

/// Reserved record tag marking the stream footer (never a valid topic id).
const FOOTER_TAG: u8 = 0xFF;

/// FNV-1a 64-bit offset basis — the same digest family the telemetry
/// timeline uses, so digests are comparable across observability layers.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one byte into an FNV-1a digest.
#[inline]
pub fn fold_digest_byte(digest: u64, byte: u8) -> u64 {
    (digest ^ u64::from(byte)).wrapping_mul(DIGEST_PRIME)
}

/// Folds a byte slice into an FNV-1a digest.
#[inline]
pub fn fold_digest(mut digest: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        digest = fold_digest_byte(digest, byte);
    }
    digest
}

/// Errors raised while parsing, verifying or decompressing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The stream does not start with the trace magic — a foreign file.
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The stream's format version is newer than this reader understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The stream ended before a complete header, record or footer.
    Truncated,
    /// The recomputed stream digest does not match the footer's.
    DigestMismatch {
        /// Digest stored in the footer.
        expected: u64,
        /// Digest recomputed from the records actually read.
        found: u64,
    },
    /// A record references a topic id missing from the header's table.
    UnknownTopic {
        /// The undeclared topic id.
        id: u8,
    },
    /// The stream violates the format in some other way.
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "not a mavfi trace (magic {found:02x?}, expected {STREAM_MAGIC:02x?})")
            }
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found} (reader supports {TRACE_VERSION})")
            }
            Self::Truncated => write!(f, "trace ends mid-structure (truncated file?)"),
            Self::DigestMismatch { expected, found } => write!(
                f,
                "trace digest mismatch: footer {expected:#018x}, recomputed {found:#018x}"
            ),
            Self::UnknownTopic { id } => write!(f, "record references undeclared topic id {id}"),
            Self::Malformed { reason } => write!(f, "malformed trace: {reason}"),
        }
    }
}

impl Error for TraceError {}

/// Appends a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked cursor over a byte slice with the primitive readers the
/// trace format (and the core crate's payload schemas) are built from.
/// Every method returns [`TraceError::Truncated`] instead of panicking when
/// the input runs out.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset from the start of the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads `count` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if fewer than `count` bytes remain.
    pub fn read_exact(&mut self, count: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < count {
            return Err(TraceError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + count];
        self.pos += count;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.read_exact(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if fewer than two bytes remain.
    pub fn read_u16_le(&mut self) -> Result<u16, TraceError> {
        let bytes = self.read_exact(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if fewer than eight bytes remain.
    pub fn read_u64_le(&mut self) -> Result<u64, TraceError> {
        let bytes = self.read_exact(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(word))
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] at end of input and
    /// [`TraceError::Malformed`] on an over-long encoding.
    pub fn read_varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(TraceError::Malformed { reason: "varint exceeds 64 bits".into() });
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::Malformed { reason: "varint exceeds 64 bits".into() });
            }
        }
    }
}

/// Declaration of one topic carried by a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicDecl {
    /// Stream-unique topic id (anything but `0xFF`, which tags the footer).
    pub id: u8,
    /// Human-readable topic name, at most 255 bytes of UTF-8.
    pub name: String,
    /// Version of this topic's payload schema.
    pub schema_version: u8,
}

impl TopicDecl {
    /// Creates a topic declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `0xFF` (reserved for the footer) or the name
    /// exceeds 255 bytes — both are programming errors in the recorder, not
    /// runtime conditions.
    pub fn new(id: u8, name: impl Into<String>, schema_version: u8) -> Self {
        let name = name.into();
        assert!(id != FOOTER_TAG, "topic id 0xFF is reserved for the stream footer");
        assert!(name.len() <= 255, "topic names are limited to 255 bytes");
        Self { id, name, schema_version }
    }
}

/// Per-topic accounting reported by a trace footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicSummary {
    /// The topic id.
    pub id: u8,
    /// Number of records carried on this topic.
    pub records: u64,
    /// FNV-1a digest over this topic's stamped payloads.
    pub digest: u64,
}

/// The verified footer of a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total records in the stream.
    pub records: u64,
    /// FNV-1a digest over every stamped record.
    pub stream_digest: u64,
    /// Per-topic record counts and digests, in declaration order.
    pub topics: Vec<TopicSummary>,
}

impl TraceSummary {
    /// The summary of `topic`, if the stream declared it.
    pub fn topic(&self, id: u8) -> Option<&TopicSummary> {
        self.topics.iter().find(|summary| summary.id == id)
    }
}

/// Streaming writer of the binary trace format.
///
/// The header is emitted at construction; each [`TraceWriter::record`]
/// appends one stamped record, and [`TraceWriter::finish`] appends the
/// digest footer and returns the completed stream.
#[derive(Debug)]
pub struct TraceWriter {
    buf: Vec<u8>,
    topics: Vec<TopicDecl>,
    accounting: Vec<(u64, u64)>, // (records, digest) per declared topic
    prev_tick: u64,
    prev_sim_bits: u64,
    records: u64,
    stream_digest: u64,
}

impl TraceWriter {
    /// Starts a stream carrying the caller-defined `meta` blob and the given
    /// topic table.
    ///
    /// # Panics
    ///
    /// Panics if two topics share an id — a recorder configuration error.
    pub fn new(meta: &[u8], topics: &[TopicDecl]) -> Self {
        for (index, topic) in topics.iter().enumerate() {
            assert!(
                !topics[..index].iter().any(|other| other.id == topic.id),
                "duplicate topic id {} in trace declaration",
                topic.id
            );
        }
        let mut buf = Vec::with_capacity(256 + meta.len());
        buf.extend_from_slice(&STREAM_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        write_varint(&mut buf, meta.len() as u64);
        buf.extend_from_slice(meta);
        buf.push(topics.len() as u8);
        for topic in topics {
            buf.push(topic.id);
            buf.push(topic.name.len() as u8);
            buf.extend_from_slice(topic.name.as_bytes());
            buf.push(topic.schema_version);
        }
        Self {
            buf,
            topics: topics.to_vec(),
            accounting: vec![(0, DIGEST_SEED); topics.len()],
            prev_tick: 0,
            prev_sim_bits: 0,
            records: 0,
            stream_digest: DIGEST_SEED,
        }
    }

    /// Appends one record.  `tick` must be non-decreasing across calls (the
    /// stamp is delta-encoded).
    ///
    /// # Panics
    ///
    /// Panics if `topic` was not declared or `tick` regresses — both are
    /// recorder bugs, not data conditions.
    pub fn record(&mut self, topic: u8, tick: u64, sim_time: f64, payload: &[u8]) {
        let slot = self
            .topics
            .iter()
            .position(|decl| decl.id == topic)
            .unwrap_or_else(|| panic!("record on undeclared topic id {topic}"));
        assert!(tick >= self.prev_tick, "trace ticks must be non-decreasing");
        let sim_bits = sim_time.to_bits();
        self.buf.push(topic);
        write_varint(&mut self.buf, tick - self.prev_tick);
        write_varint(&mut self.buf, sim_bits ^ self.prev_sim_bits);
        write_varint(&mut self.buf, payload.len() as u64);
        self.buf.extend_from_slice(payload);
        self.prev_tick = tick;
        self.prev_sim_bits = sim_bits;
        self.records += 1;

        let stamp = Self::stamp_digest(topic, tick, sim_bits, payload);
        self.stream_digest = Self::fold_stamped(self.stream_digest, stamp, payload);
        let (count, digest) = &mut self.accounting[slot];
        *count += 1;
        *digest = Self::fold_stamped(*digest, stamp, payload);
    }

    fn stamp_digest(topic: u8, tick: u64, sim_bits: u64, _payload: &[u8]) -> [u8; 17] {
        let mut stamp = [0u8; 17];
        stamp[0] = topic;
        stamp[1..9].copy_from_slice(&tick.to_le_bytes());
        stamp[9..17].copy_from_slice(&sim_bits.to_le_bytes());
        stamp
    }

    fn fold_stamped(digest: u64, stamp: [u8; 17], payload: &[u8]) -> u64 {
        fold_digest(fold_digest(digest, &stamp), payload)
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The running FNV-1a digest over every stamped record so far.
    pub fn stream_digest(&self) -> u64 {
        self.stream_digest
    }

    /// Appends the footer and returns the completed stream bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(FOOTER_TAG);
        write_varint(&mut self.buf, self.records);
        self.buf.extend_from_slice(&self.stream_digest.to_le_bytes());
        self.buf.push(self.topics.len() as u8);
        for (topic, (count, digest)) in self.topics.iter().zip(&self.accounting) {
            self.buf.push(topic.id);
            write_varint(&mut self.buf, *count);
            self.buf.extend_from_slice(&digest.to_le_bytes());
        }
        self.buf
    }
}

/// One record yielded by [`TraceReader::next_record`], borrowing its payload
/// from the underlying stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecordRef<'a> {
    /// Topic id (declared in the header).
    pub topic: u8,
    /// Absolute pipeline tick of the record.
    pub tick: u64,
    /// Absolute simulated time of the record (seconds).
    pub sim_time: f64,
    /// The schema-typed payload bytes.
    pub payload: &'a [u8],
}

/// Streaming reader of the binary trace format.
///
/// Construction parses and validates the header; [`TraceReader::next_record`]
/// yields records in stream order and, on reaching the footer, verifies the
/// stream digest against the recomputed one.
#[derive(Debug, Clone)]
pub struct TraceReader<'a> {
    reader: ByteReader<'a>,
    meta: &'a [u8],
    topics: Vec<TopicDecl>,
    prev_tick: u64,
    prev_sim_bits: u64,
    records_read: u64,
    stream_digest: u64,
    topic_digests: Vec<(u64, u64)>,
    summary: Option<TraceSummary>,
}

impl<'a> TraceReader<'a> {
    /// Parses the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMagic`] for a foreign file,
    /// [`TraceError::UnsupportedVersion`] for a future format version and
    /// [`TraceError::Truncated`] / [`TraceError::Malformed`] for a damaged
    /// header.
    pub fn new(stream: &'a [u8]) -> Result<Self, TraceError> {
        let mut reader = ByteReader::new(stream);
        let magic = reader.read_exact(4)?;
        if magic != STREAM_MAGIC {
            return Err(TraceError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
        }
        let version = reader.read_u16_le()?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let meta_len = reader.read_varint()? as usize;
        let meta = reader.read_exact(meta_len)?;
        let topic_count = reader.read_u8()? as usize;
        let mut topics = Vec::with_capacity(topic_count);
        for _ in 0..topic_count {
            let id = reader.read_u8()?;
            if id == FOOTER_TAG {
                return Err(TraceError::Malformed {
                    reason: "topic table declares the reserved footer id".into(),
                });
            }
            let name_len = reader.read_u8()? as usize;
            let name = std::str::from_utf8(reader.read_exact(name_len)?)
                .map_err(|_| TraceError::Malformed { reason: "topic name is not UTF-8".into() })?
                .to_owned();
            let schema_version = reader.read_u8()?;
            if topics.iter().any(|decl: &TopicDecl| decl.id == id) {
                return Err(TraceError::Malformed {
                    reason: format!("duplicate topic id {id} in header"),
                });
            }
            topics.push(TopicDecl { id, name, schema_version });
        }
        let topic_digests = vec![(0, DIGEST_SEED); topics.len()];
        Ok(Self {
            reader,
            meta,
            topics,
            prev_tick: 0,
            prev_sim_bits: 0,
            records_read: 0,
            stream_digest: DIGEST_SEED,
            topic_digests,
            summary: None,
        })
    }

    /// The caller-defined metadata blob from the header.
    pub fn meta(&self) -> &'a [u8] {
        self.meta
    }

    /// The declared topic table, in header order.
    pub fn topics(&self) -> &[TopicDecl] {
        &self.topics
    }

    /// The verified footer summary — available once [`Self::next_record`]
    /// has returned `Ok(None)`.
    pub fn summary(&self) -> Option<&TraceSummary> {
        self.summary.as_ref()
    }

    /// Records read so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Yields the next record, or `Ok(None)` once the footer has been
    /// reached and verified.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if the stream ends mid-record or
    /// without a footer, [`TraceError::UnknownTopic`] for an undeclared
    /// topic id and [`TraceError::DigestMismatch`] when the footer digest
    /// disagrees with the records actually read.
    pub fn next_record(&mut self) -> Result<Option<TraceRecordRef<'a>>, TraceError> {
        if self.summary.is_some() {
            return Ok(None);
        }
        let tag = self.reader.read_u8()?;
        if tag == FOOTER_TAG {
            return self.read_footer().map(|()| None);
        }
        let slot = self
            .topics
            .iter()
            .position(|decl| decl.id == tag)
            .ok_or(TraceError::UnknownTopic { id: tag })?;
        let tick = self
            .prev_tick
            .checked_add(self.reader.read_varint()?)
            .ok_or_else(|| TraceError::Malformed { reason: "tick stamp overflows".into() })?;
        let sim_bits = self.prev_sim_bits ^ self.reader.read_varint()?;
        let payload_len = self.reader.read_varint()? as usize;
        let payload = self.reader.read_exact(payload_len)?;
        self.prev_tick = tick;
        self.prev_sim_bits = sim_bits;
        self.records_read += 1;

        let stamp = TraceWriter::stamp_digest(tag, tick, sim_bits, payload);
        self.stream_digest = TraceWriter::fold_stamped(self.stream_digest, stamp, payload);
        let (count, digest) = &mut self.topic_digests[slot];
        *count += 1;
        *digest = TraceWriter::fold_stamped(*digest, stamp, payload);

        Ok(Some(TraceRecordRef { topic: tag, tick, sim_time: f64::from_bits(sim_bits), payload }))
    }

    fn read_footer(&mut self) -> Result<(), TraceError> {
        let records = self.reader.read_varint()?;
        let stream_digest = self.reader.read_u64_le()?;
        let topic_count = self.reader.read_u8()? as usize;
        let mut topics = Vec::with_capacity(topic_count);
        for _ in 0..topic_count {
            let id = self.reader.read_u8()?;
            let count = self.reader.read_varint()?;
            let digest = self.reader.read_u64_le()?;
            topics.push(TopicSummary { id, records: count, digest });
        }
        if records != self.records_read {
            return Err(TraceError::Malformed {
                reason: format!(
                    "footer claims {records} records, stream carried {}",
                    self.records_read
                ),
            });
        }
        if stream_digest != self.stream_digest {
            return Err(TraceError::DigestMismatch {
                expected: stream_digest,
                found: self.stream_digest,
            });
        }
        for (slot, summary) in topics.iter().enumerate() {
            let declared = self.topics.get(slot).map(|decl| decl.id);
            let (count, digest) = self.topic_digests.get(slot).copied().unwrap_or((0, 0));
            if declared != Some(summary.id) || count != summary.records {
                return Err(TraceError::Malformed {
                    reason: format!(
                        "footer topic table disagrees with header for id {}",
                        summary.id
                    ),
                });
            }
            if digest != summary.digest {
                return Err(TraceError::DigestMismatch { expected: summary.digest, found: digest });
            }
        }
        self.summary = Some(TraceSummary { records, stream_digest, topics });
        Ok(())
    }
}

/// Reads a whole stream, verifying every record and digest, and returns its
/// footer summary.
///
/// # Errors
///
/// Propagates any [`TraceError`] from parsing or verification.
pub fn read_summary(stream: &[u8]) -> Result<TraceSummary, TraceError> {
    let mut reader = TraceReader::new(stream)?;
    while reader.next_record()?.is_some() {}
    Ok(reader.summary().cloned().expect("summary is set once next_record returns None"))
}

// --- LZSS byte compression -------------------------------------------------
//
// Committed golden traces should be small, and the workspace vendors no
// compression crate, so the trace layer carries its own: a classic LZSS with
// a 4 KiB window, 3..=18 byte matches packed into two bytes (12-bit offset,
// 4-bit length) and 8-token flag groups.  Greedy matching over a hash chain
// keeps compression deterministic and fast; decompression is a strict
// inverse and validates offsets.

const LZ_WINDOW: usize = 4096;
const LZ_MIN_MATCH: usize = 3;
const LZ_MAX_MATCH: usize = 18;
const LZ_MAX_CHAIN: usize = 64;
const LZ_HASH_BITS: u32 = 13;

#[inline]
fn lz_hash(bytes: &[u8]) -> usize {
    let key = u32::from(bytes[0]) | u32::from(bytes[1]) << 8 | u32::from(bytes[2]) << 16;
    (key.wrapping_mul(2_654_435_761) >> (32 - LZ_HASH_BITS)) as usize
}

/// LZSS-compresses `input`.  Deterministic: identical input yields identical
/// output on every platform.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << LZ_HASH_BITS];
    let mut chain = vec![usize::MAX; input.len()];
    let mut flags_at = usize::MAX;
    let mut flag_bit = 8;
    let mut pos = 0;
    while pos < input.len() {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        let mut best_len = 0;
        let mut best_offset = 0;
        if pos + LZ_MIN_MATCH <= input.len() {
            let mut candidate = head[lz_hash(&input[pos..])];
            let mut steps = 0;
            while candidate != usize::MAX && steps < LZ_MAX_CHAIN {
                if pos - candidate <= LZ_WINDOW {
                    let limit = (input.len() - pos).min(LZ_MAX_MATCH);
                    let mut length = 0;
                    while length < limit && input[candidate + length] == input[pos + length] {
                        length += 1;
                    }
                    if length > best_len {
                        best_len = length;
                        best_offset = pos - candidate;
                        if length == LZ_MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break;
                }
                candidate = chain[candidate];
                steps += 1;
            }
        }
        if best_len >= LZ_MIN_MATCH {
            out[flags_at] |= 1 << flag_bit;
            let offset = best_offset - 1;
            out.push((offset & 0xFF) as u8);
            out.push((((offset >> 8) as u8) << 4) | (best_len - LZ_MIN_MATCH) as u8);
            for covered in pos..pos + best_len {
                if covered + LZ_MIN_MATCH <= input.len() {
                    let bucket = lz_hash(&input[covered..]);
                    chain[covered] = head[bucket];
                    head[bucket] = covered;
                }
            }
            pos += best_len;
        } else {
            out.push(input[pos]);
            if pos + LZ_MIN_MATCH <= input.len() {
                let bucket = lz_hash(&input[pos..]);
                chain[pos] = head[bucket];
                head[bucket] = pos;
            }
            pos += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Reverses [`compress`], producing exactly `expected_len` bytes.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] when the token stream is inconsistent
/// (bad offsets, wrong output length) and [`TraceError::Truncated`] when it
/// ends mid-token.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, TraceError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut reader = ByteReader::new(input);
    while out.len() < expected_len {
        let flags = reader.read_u8()?;
        for bit in 0..8 {
            if out.len() == expected_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let low = reader.read_u8()? as usize;
                let packed = reader.read_u8()? as usize;
                let offset = (low | (packed >> 4) << 8) + 1;
                let length = (packed & 0x0F) + LZ_MIN_MATCH;
                if offset > out.len() {
                    return Err(TraceError::Malformed {
                        reason: "match offset reaches before the output start".into(),
                    });
                }
                for _ in 0..length {
                    let byte = out[out.len() - offset];
                    out.push(byte);
                }
            } else {
                out.push(reader.read_u8()?);
            }
        }
    }
    if out.len() != expected_len || !reader.is_empty() {
        return Err(TraceError::Malformed {
            reason: "decompressed length disagrees with the container header".into(),
        });
    }
    Ok(out)
}

/// Codec byte: the container payload is the raw stream.
const CODEC_RAW: u8 = 0;
/// Codec byte: the container payload is LZSS-compressed.
const CODEC_LZSS: u8 = 1;

/// Wraps a trace stream in the on-disk container format, compressing it with
/// LZSS when that actually shrinks it.
pub fn compress_container(stream: &[u8]) -> Vec<u8> {
    let packed = compress(stream);
    let (codec, payload): (u8, &[u8]) =
        if packed.len() < stream.len() { (CODEC_LZSS, &packed) } else { (CODEC_RAW, stream) };
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(codec);
    write_varint(&mut out, stream.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Unwraps an on-disk container back into the raw trace stream.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`] for a foreign file and
/// [`TraceError::Malformed`] / [`TraceError::Truncated`] for a damaged one.
pub fn decompress_container(data: &[u8]) -> Result<Vec<u8>, TraceError> {
    let mut reader = ByteReader::new(data);
    let magic = reader.read_exact(4)?;
    if magic != CONTAINER_MAGIC {
        return Err(TraceError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
    }
    let codec = reader.read_u8()?;
    let raw_len = reader.read_varint()? as usize;
    let payload = reader.read_exact(reader.remaining())?;
    match codec {
        CODEC_RAW => {
            if payload.len() != raw_len {
                return Err(TraceError::Malformed {
                    reason: "raw container length disagrees with header".into(),
                });
            }
            Ok(payload.to_vec())
        }
        CODEC_LZSS => decompress(payload, raw_len),
        other => Err(TraceError::Malformed { reason: format!("unknown container codec {other}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<u8> {
        let topics = vec![TopicDecl::new(1, "pose", 1), TopicDecl::new(2, "cmd", 1)];
        let mut writer = TraceWriter::new(b"meta", &topics);
        writer.record(1, 0, 0.0, &[10, 11]);
        writer.record(2, 0, 0.0, &[20]);
        writer.record(1, 1, 0.1, &[12, 13]);
        writer.record(2, 1, 0.1, &[21]);
        writer.finish()
    }

    #[test]
    fn round_trips_records_and_stamps() {
        let stream = sample_stream();
        let mut reader = TraceReader::new(&stream).unwrap();
        assert_eq!(reader.meta(), b"meta");
        assert_eq!(reader.topics().len(), 2);
        let mut seen = Vec::new();
        while let Some(record) = reader.next_record().unwrap() {
            seen.push((record.topic, record.tick, record.sim_time, record.payload.to_vec()));
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (1, 0, 0.0, vec![10, 11]));
        assert_eq!(seen[3], (2, 1, 0.1, vec![21]));
        let summary = reader.summary().unwrap();
        assert_eq!(summary.records, 4);
        assert_eq!(summary.topic(1).unwrap().records, 2);
        // Subsequent calls stay at end-of-stream.
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn summary_matches_writer_digest() {
        let topics = vec![TopicDecl::new(3, "t", 1)];
        let mut writer = TraceWriter::new(&[], &topics);
        writer.record(3, 5, 0.5, b"abc");
        let digest = writer.stream_digest();
        let stream = writer.finish();
        let summary = read_summary(&stream).unwrap();
        assert_eq!(summary.stream_digest, digest);
        assert_eq!(summary.records, 1);
    }

    #[test]
    fn foreign_magic_is_a_typed_error() {
        let err = TraceReader::new(b"PNG\x0d rest of file").unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut stream = sample_stream();
        stream[4] = 0xEE; // bump the version word
        let err = TraceReader::new(&stream).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { .. }), "{err}");
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let stream = sample_stream();
        for cut in [stream.len() - 1, stream.len() - 9, 8, 5] {
            let mut reader = match TraceReader::new(&stream[..cut]) {
                Ok(reader) => reader,
                Err(err) => {
                    assert!(matches!(err, TraceError::Truncated), "{err}");
                    continue;
                }
            };
            let result = loop {
                match reader.next_record() {
                    Ok(Some(_)) => continue,
                    other => break other,
                }
            };
            assert!(result.is_err(), "cut at {cut} must not verify");
        }
    }

    #[test]
    fn corrupted_payload_fails_digest_verification() {
        let mut stream = sample_stream();
        let index = stream.len() - 40; // somewhere in the record region
        stream[index] ^= 0x01;
        let mut reader = match TraceReader::new(&stream) {
            Ok(reader) => reader,
            Err(_) => return, // corrupting the header is also a typed error
        };
        let result = loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "bit flip must be detected");
    }

    #[test]
    fn varint_round_trip_bounds() {
        let mut buf = Vec::new();
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, value);
            let mut reader = ByteReader::new(&buf);
            assert_eq!(reader.read_varint().unwrap(), value);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn overlong_varint_is_malformed() {
        let bytes = [0xFFu8; 11];
        let mut reader = ByteReader::new(&bytes);
        assert!(matches!(reader.read_varint(), Err(TraceError::Malformed { .. })));
    }

    #[test]
    fn lzss_round_trips_structured_and_incompressible_data() {
        let repetitive: Vec<u8> = (0..4096u32).map(|i| (i % 7) as u8).collect();
        let mut noisy = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..2048 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            noisy.push((state >> 56) as u8);
        }
        for input in [&repetitive, &noisy, &Vec::new(), &vec![0u8; 1]] {
            let packed = compress(input);
            let unpacked = decompress(&packed, input.len()).unwrap();
            assert_eq!(&unpacked, input);
        }
        assert!(compress(&repetitive).len() < repetitive.len() / 4);
    }

    #[test]
    fn container_round_trip_and_foreign_rejection() {
        let stream = sample_stream();
        let container = compress_container(&stream);
        assert_eq!(decompress_container(&container).unwrap(), stream);
        let err = decompress_container(b"ELF\x7f junk").unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }));
        let mut damaged = container.clone();
        let last = damaged.len() - 1;
        damaged.truncate(last);
        assert!(decompress_container(&damaged).is_err());
    }

    #[test]
    fn writer_rejects_duplicate_topics_and_regressing_ticks() {
        let result = std::panic::catch_unwind(|| {
            TraceWriter::new(&[], &[TopicDecl::new(1, "a", 1), TopicDecl::new(1, "b", 1)])
        });
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| {
            let mut writer = TraceWriter::new(&[], &[TopicDecl::new(1, "a", 1)]);
            writer.record(1, 5, 0.0, &[]);
            writer.record(1, 4, 0.0, &[]);
        });
        assert!(result.is_err());
    }
}
