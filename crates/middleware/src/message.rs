//! The [`Message`] trait implemented by every payload carried on a topic.

use std::fmt::Debug;

/// Marker trait for types that can be published on a [`Bus`](crate::Bus)
/// topic or exchanged through a service.
///
/// The trait is blanket-implemented for every `Clone + Send + Debug +
/// 'static` type, mirroring how any serialisable struct can be a ROS
/// message.  Cloning is required because a single publication is delivered
/// to every subscriber.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::Message;
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct Imu {
///     acceleration: [f64; 3],
/// }
///
/// fn assert_message<T: Message>() {}
/// assert_message::<Imu>();
/// ```
pub trait Message: Clone + Send + Debug + 'static {}

impl<T> Message for T where T: Clone + Send + Debug + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Custom {
        #[allow(dead_code)]
        value: u32,
    }

    fn assert_message<T: Message>() {}

    #[test]
    fn primitives_are_messages() {
        assert_message::<f64>();
        assert_message::<u8>();
        assert_message::<String>();
        assert_message::<Vec<f32>>();
    }

    #[test]
    fn custom_struct_is_message() {
        assert_message::<Custom>();
    }
}
