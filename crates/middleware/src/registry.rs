//! Node bookkeeping: step counts, crashes and restarts, in the role of the
//! ROS master's node registry.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Per-node statistics tracked by the [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeInfo {
    /// Node name.
    pub name: String,
    /// Number of completed steps (successful or crashed).
    pub steps: u64,
    /// Number of steps that ended in a crash.
    pub crashes: u64,
    /// Number of times the node was restarted after a crash.
    pub restarts: u64,
    /// Reason of the most recent crash, when one was reported.  A node
    /// stuck in a crash loop is diagnosable from [`Registry::infos`]
    /// without re-running it under a debugger.
    pub last_error: Option<String>,
}

/// Shared registry of node statistics.
///
/// Cloning a `Registry` clones a handle to the same underlying table, so the
/// executor and observers (for example the mission report) see the same
/// numbers.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::Registry;
///
/// let registry = Registry::new();
/// registry.record_step("planner");
/// registry.record_crash("planner");
/// let info = registry.info("planner").expect("registered on first step");
/// assert_eq!(info.steps, 1);
/// assert_eq!(info.crashes, 1);
/// assert_eq!(info.restarts, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    nodes: Arc<Mutex<HashMap<String, NodeInfo>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed step for `name`, creating the entry on first
    /// use.
    pub fn record_step(&self, name: &str) {
        let mut nodes = self.nodes.lock();
        let info = nodes
            .entry(name.to_owned())
            .or_insert_with(|| NodeInfo { name: name.to_owned(), ..NodeInfo::default() });
        info.steps += 1;
    }

    /// Records a crash (and the implied automatic restart) for `name`.
    pub fn record_crash(&self, name: &str) {
        self.record_crash_entry(name, None);
    }

    /// Records a crash together with its reason, which becomes the node's
    /// [`NodeInfo::last_error`].
    pub fn record_crash_with_reason(&self, name: &str, reason: &str) {
        self.record_crash_entry(name, Some(reason));
    }

    fn record_crash_entry(&self, name: &str, reason: Option<&str>) {
        let mut nodes = self.nodes.lock();
        let info = nodes
            .entry(name.to_owned())
            .or_insert_with(|| NodeInfo { name: name.to_owned(), ..NodeInfo::default() });
        info.crashes += 1;
        info.restarts += 1;
        if let Some(reason) = reason {
            info.last_error = Some(reason.to_owned());
        }
    }

    /// Returns a copy of the statistics for `name`, if the node is known.
    pub fn info(&self, name: &str) -> Option<NodeInfo> {
        self.nodes.lock().get(name).cloned()
    }

    /// Returns statistics for every node, sorted by name.
    pub fn infos(&self) -> Vec<NodeInfo> {
        let mut infos: Vec<NodeInfo> = self.nodes.lock().values().cloned().collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Total number of steps recorded across all nodes.
    pub fn total_steps(&self) -> u64 {
        self.nodes.lock().values().map(|info| info.steps).sum()
    }

    /// Total number of crashes recorded across all nodes.
    pub fn total_crashes(&self) -> u64 {
        self.nodes.lock().values().map(|info| info.crashes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_node_is_none() {
        assert!(Registry::new().info("ghost").is_none());
    }

    #[test]
    fn steps_and_crashes_accumulate() {
        let registry = Registry::new();
        registry.record_step("pid");
        registry.record_step("pid");
        registry.record_crash("pid");
        let info = registry.info("pid").unwrap();
        assert_eq!(info.steps, 2);
        assert_eq!(info.crashes, 1);
        assert_eq!(info.restarts, 1);
        assert_eq!(registry.total_steps(), 2);
        assert_eq!(registry.total_crashes(), 1);
    }

    #[test]
    fn crash_reasons_surface_in_infos() {
        let registry = Registry::new();
        registry.record_step("server");
        assert_eq!(registry.info("server").unwrap().last_error, None);
        registry.record_crash("server");
        // A reason-less crash keeps whatever reason was known before.
        assert_eq!(registry.info("server").unwrap().last_error, None);
        registry.record_crash_with_reason("server", "checkpoint digest mismatch");
        registry.record_crash_with_reason("server", "checkpoint directory unwritable");
        let infos = registry.infos();
        let info = infos.iter().find(|info| info.name == "server").unwrap();
        assert_eq!(info.crashes, 3);
        // The latest reason wins: the loop's current failure is what the
        // operator needs, not its first.
        assert_eq!(info.last_error.as_deref(), Some("checkpoint directory unwritable"));
        registry.record_crash("server");
        assert_eq!(
            registry.info("server").unwrap().last_error.as_deref(),
            Some("checkpoint directory unwritable")
        );
    }

    #[test]
    fn infos_are_sorted() {
        let registry = Registry::new();
        registry.record_step("zeta");
        registry.record_step("alpha");
        let names: Vec<String> = registry.infos().into_iter().map(|info| info.name).collect();
        assert_eq!(names, vec!["alpha".to_owned(), "zeta".to_owned()]);
    }

    #[test]
    fn clones_share_state() {
        let registry = Registry::new();
        registry.clone().record_step("shared");
        assert_eq!(registry.info("shared").unwrap().steps, 1);
    }
}
