//! Deterministic rate-driven executor stepping nodes on the simulated clock.

use std::time::Duration;

use crate::clock::SimClock;
use crate::error::MiddlewareError;
use crate::node::{Node, NodeContext};
use crate::registry::Registry;
use crate::topic::Bus;

struct Entry {
    node: Box<dyn Node>,
    next_due: Duration,
    step_index: u64,
}

/// Summary of one executor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorReport {
    /// Number of node steps executed.
    pub steps: u64,
    /// Number of node crashes observed (each followed by a restart).
    pub crashes: u64,
    /// Simulated time at the end of the run.
    pub end_time: Duration,
}

/// Schedules [`Node`]s at their declared periods against the bus clock.
///
/// Scheduling is fully deterministic: nodes due at the same instant run in
/// the order they were added, and the clock only advances to instants at
/// which some node is due.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mavfi_middleware::{Bus, Executor, Node, NodeContext, NodeError};
///
/// struct Ticker;
///
/// impl Node for Ticker {
///     fn name(&self) -> &str {
///         "ticker"
///     }
///     fn period(&self) -> Duration {
///         Duration::from_millis(100)
///     }
///     fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
///         ctx.bus.advertise::<u64>("tick").publish(ctx.step_index);
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), mavfi_middleware::MiddlewareError> {
/// let bus = Bus::new();
/// let ticks = bus.subscribe::<u64>("tick");
/// let mut executor = Executor::new(bus);
/// executor.add_node(Box::new(Ticker));
/// let report = executor.run_for(Duration::from_secs(1))?;
/// assert_eq!(report.steps, 11); // t = 0.0, 0.1, ..., 1.0
/// assert_eq!(ticks.len(), 11);
/// # Ok(())
/// # }
/// ```
pub struct Executor {
    bus: Bus,
    clock: SimClock,
    registry: Registry,
    entries: Vec<Entry>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field(
                "nodes",
                &self.entries.iter().map(|e| e.node.name().to_owned()).collect::<Vec<_>>(),
            )
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Executor {
    /// Creates an executor driving nodes on the given bus and its clock.
    pub fn new(bus: Bus) -> Self {
        let clock = bus.clock();
        Self { bus, clock, registry: Registry::new(), entries: Vec::new() }
    }

    /// Adds a node; its first step is scheduled at the current simulated
    /// time.
    pub fn add_node(&mut self, node: Box<dyn Node>) {
        let next_due = self.clock.now();
        self.entries.push(Entry { node, next_due, step_index: 0 });
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// The registry of per-node statistics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The bus nodes communicate on.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Runs all nodes for an additional `duration` of simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::EmptyExecutor`] if no nodes are
    /// registered.  Node crashes are not errors; they are recorded and the
    /// node is restarted.
    pub fn run_for(&mut self, duration: Duration) -> Result<ExecutorReport, MiddlewareError> {
        let deadline = self.clock.now() + duration;
        self.run_until(deadline)
    }

    /// Runs all nodes until the simulated clock reaches `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::EmptyExecutor`] if no nodes are
    /// registered.
    pub fn run_until(&mut self, deadline: Duration) -> Result<ExecutorReport, MiddlewareError> {
        if self.entries.is_empty() {
            return Err(MiddlewareError::EmptyExecutor);
        }
        let mut report = ExecutorReport::default();
        loop {
            let next_due = self
                .entries
                .iter()
                .map(|entry| entry.next_due)
                .min()
                .expect("entries checked non-empty");
            if next_due > deadline {
                break;
            }
            if next_due > self.clock.now() {
                self.clock.set(next_due);
            }
            let now = self.clock.now();
            for entry in &mut self.entries {
                if entry.next_due != next_due {
                    continue;
                }
                let mut ctx = NodeContext { bus: &self.bus, now, step_index: entry.step_index };
                let outcome = entry.node.step(&mut ctx);
                entry.step_index += 1;
                entry.next_due = now + entry.node.period().max(Duration::from_nanos(1));
                report.steps += 1;
                self.registry.record_step(entry.node.name());
                if let Err(error) = outcome {
                    report.crashes += 1;
                    self.registry.record_crash_with_reason(entry.node.name(), error.reason());
                    entry.node.on_restart();
                }
            }
        }
        if deadline > self.clock.now() {
            self.clock.set(deadline);
        }
        report.end_time = self.clock.now();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeError;

    struct Periodic {
        name: String,
        period: Duration,
        fail_on: Option<u64>,
        restarts_seen: u64,
    }

    impl Periodic {
        fn new(name: &str, millis: u64) -> Self {
            Self {
                name: name.to_owned(),
                period: Duration::from_millis(millis),
                fail_on: None,
                restarts_seen: 0,
            }
        }
    }

    impl Node for Periodic {
        fn name(&self) -> &str {
            &self.name
        }
        fn period(&self) -> Duration {
            self.period
        }
        fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
            ctx.bus.advertise::<String>("trace").publish(format!(
                "{}@{}",
                self.name,
                ctx.now.as_millis()
            ));
            if self.fail_on == Some(ctx.step_index) {
                return Err(NodeError::new("intentional failure"));
            }
            Ok(())
        }
        fn on_restart(&mut self) {
            self.restarts_seen += 1;
        }
    }

    #[test]
    fn empty_executor_is_an_error() {
        let mut executor = Executor::new(Bus::new());
        assert_eq!(
            executor.run_for(Duration::from_secs(1)).unwrap_err(),
            MiddlewareError::EmptyExecutor
        );
    }

    #[test]
    fn step_counts_match_periods() {
        let bus = Bus::new();
        let mut executor = Executor::new(bus);
        executor.add_node(Box::new(Periodic::new("fast", 100)));
        executor.add_node(Box::new(Periodic::new("slow", 250)));
        let report = executor.run_for(Duration::from_secs(1)).unwrap();
        // fast: t=0,100,...,1000 -> 11 steps; slow: t=0,250,500,750,1000 -> 5 steps.
        assert_eq!(report.steps, 16);
        assert_eq!(executor.registry().info("fast").unwrap().steps, 11);
        assert_eq!(executor.registry().info("slow").unwrap().steps, 5);
        assert_eq!(report.end_time, Duration::from_secs(1));
    }

    #[test]
    fn deterministic_order_for_simultaneous_nodes() {
        let bus = Bus::new();
        let trace = bus.subscribe::<String>("trace");
        let mut executor = Executor::new(bus);
        executor.add_node(Box::new(Periodic::new("first", 100)));
        executor.add_node(Box::new(Periodic::new("second", 100)));
        executor.run_for(Duration::from_millis(100)).unwrap();
        let messages = trace.drain();
        assert_eq!(messages[0], "first@0");
        assert_eq!(messages[1], "second@0");
        assert_eq!(messages[2], "first@100");
        assert_eq!(messages[3], "second@100");
    }

    #[test]
    fn crashes_trigger_restart_and_continue() {
        let bus = Bus::new();
        let mut node = Periodic::new("flaky", 100);
        node.fail_on = Some(1);
        let mut executor = Executor::new(bus);
        executor.add_node(Box::new(node));
        let report = executor.run_for(Duration::from_millis(500)).unwrap();
        assert_eq!(report.crashes, 1);
        let info = executor.registry().info("flaky").unwrap();
        assert_eq!(info.crashes, 1);
        assert_eq!(info.steps, 6);
        assert_eq!(info.last_error.as_deref(), Some("intentional failure"));
    }

    #[test]
    fn clock_advances_to_deadline_even_past_last_step() {
        let bus = Bus::new();
        let clock = bus.clock();
        let mut executor = Executor::new(bus);
        executor.add_node(Box::new(Periodic::new("only", 300)));
        executor.run_for(Duration::from_millis(700)).unwrap();
        assert_eq!(clock.now(), Duration::from_millis(700));
    }
}
