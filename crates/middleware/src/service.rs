//! One-to-one request/response services, the ROS `service` analogue.

use std::any::{Any, TypeId};
use std::fmt;
use std::marker::PhantomData;

use crate::error::MiddlewareError;
use crate::message::Message;
use crate::topic::Bus;

type ErasedHandler = Box<dyn FnMut(Box<dyn Any>) -> Box<dyn Any> + Send>;

pub(crate) struct ServiceEntry {
    pub(crate) request_type: TypeId,
    pub(crate) response_type: TypeId,
    pub(crate) handler: ErasedHandler,
    pub(crate) call_count: u64,
}

/// Handle returned when a service is advertised; exposes call statistics.
#[derive(Debug, Clone)]
pub struct ServiceServer {
    bus: Bus,
    name: String,
}

impl ServiceServer {
    /// Name the service was advertised under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of calls handled so far.
    pub fn call_count(&self) -> u64 {
        self.bus.services().lock().get(&self.name).map_or(0, |entry| entry.call_count)
    }
}

/// Typed client handle for calling a service repeatedly without re-checking
/// its name.
pub struct ServiceClient<Req, Resp> {
    bus: Bus,
    name: String,
    _marker: PhantomData<fn(Req) -> Resp>,
}

impl<Req, Resp> fmt::Debug for ServiceClient<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceClient").field("service", &self.name).finish()
    }
}

impl<Req: Message, Resp: Message> ServiceClient<Req, Resp> {
    /// Calls the service.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::NoSuchService`] when no server is
    /// registered and [`MiddlewareError::ServiceTypeMismatch`] when the
    /// request/response types differ from the server's.
    pub fn call(&self, request: Req) -> Result<Resp, MiddlewareError> {
        self.bus.call_service(&self.name, request)
    }

    /// Name of the target service.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Bus {
    /// Registers a service handler under `name`, replacing any previous
    /// server for that name (as a restarted ROS node would).
    pub fn advertise_service<Req, Resp, F>(&self, name: &str, mut handler: F) -> ServiceServer
    where
        Req: Message,
        Resp: Message,
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        let erased: ErasedHandler = Box::new(move |request: Box<dyn Any>| {
            let request = request.downcast::<Req>().expect("request type validated by caller");
            Box::new(handler(*request)) as Box<dyn Any>
        });
        self.services().lock().insert(
            name.to_owned(),
            ServiceEntry {
                request_type: TypeId::of::<Req>(),
                response_type: TypeId::of::<Resp>(),
                handler: erased,
                call_count: 0,
            },
        );
        ServiceServer { bus: self.clone(), name: name.to_owned() }
    }

    /// Creates a typed client for the service `name`.  The service does not
    /// need to exist yet; existence is checked on every call.
    pub fn service_client<Req: Message, Resp: Message>(
        &self,
        name: &str,
    ) -> ServiceClient<Req, Resp> {
        ServiceClient { bus: self.clone(), name: name.to_owned(), _marker: PhantomData }
    }

    /// Calls the service `name` synchronously.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::NoSuchService`] when no server is
    /// registered and [`MiddlewareError::ServiceTypeMismatch`] when the
    /// request/response types differ from the server's.
    pub fn call_service<Req: Message, Resp: Message>(
        &self,
        name: &str,
        request: Req,
    ) -> Result<Resp, MiddlewareError> {
        let mut services = self.services().lock();
        let entry = services
            .get_mut(name)
            .ok_or_else(|| MiddlewareError::NoSuchService { service: name.to_owned() })?;
        if entry.request_type != TypeId::of::<Req>() || entry.response_type != TypeId::of::<Resp>()
        {
            return Err(MiddlewareError::ServiceTypeMismatch { service: name.to_owned() });
        }
        entry.call_count += 1;
        let response = (entry.handler)(Box::new(request));
        let response = response.downcast::<Resp>().expect("response type validated above");
        Ok(*response)
    }

    /// Removes the server registered for `name`, if any, so later calls
    /// fail with [`MiddlewareError::NoSuchService`] — the analogue of a
    /// node shutting down and unregistering from the master.  Returns
    /// `true` when a server was removed.
    pub fn remove_service(&self, name: &str) -> bool {
        self.services().lock().remove(name).is_some()
    }

    /// Returns `true` if a server is currently registered for `name`.
    pub fn has_service(&self, name: &str) -> bool {
        self.services().lock().contains_key(name)
    }

    /// Names of every registered service, sorted.
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services().lock().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let bus = Bus::new();
        let server = bus.advertise_service::<u32, u32, _>("double", |x| x * 2);
        let result: u32 = bus.call_service("double", 21u32).unwrap();
        assert_eq!(result, 42);
        assert_eq!(server.call_count(), 1);
        assert_eq!(server.name(), "double");
    }

    #[test]
    fn missing_service_is_an_error() {
        let bus = Bus::new();
        let err = bus.call_service::<u32, u32>("absent", 1).unwrap_err();
        assert_eq!(err, MiddlewareError::NoSuchService { service: "absent".into() });
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let bus = Bus::new();
        let _server = bus.advertise_service::<u32, u32, _>("id", |x| x);
        let err = bus.call_service::<f64, u32>("id", 1.0).unwrap_err();
        assert_eq!(err, MiddlewareError::ServiceTypeMismatch { service: "id".into() });
    }

    #[test]
    fn client_handle_calls_repeatedly() {
        let bus = Bus::new();
        let mut total = 0u32;
        bus.advertise_service::<u32, u32, _>("accumulate", move |x| {
            total += x;
            total
        });
        let client = bus.service_client::<u32, u32>("accumulate");
        assert_eq!(client.call(2).unwrap(), 2);
        assert_eq!(client.call(3).unwrap(), 5);
        assert_eq!(client.name(), "accumulate");
    }

    #[test]
    fn removed_services_stop_answering() {
        let bus = Bus::new();
        bus.advertise_service::<u32, u32, _>("ephemeral", |x| x);
        assert!(bus.remove_service("ephemeral"));
        assert!(!bus.remove_service("ephemeral"));
        assert!(!bus.has_service("ephemeral"));
        let err = bus.call_service::<u32, u32>("ephemeral", 1).unwrap_err();
        assert_eq!(err, MiddlewareError::NoSuchService { service: "ephemeral".into() });
    }

    #[test]
    fn readvertising_replaces_handler() {
        let bus = Bus::new();
        bus.advertise_service::<u32, u32, _>("f", |x| x + 1);
        bus.advertise_service::<u32, u32, _>("f", |x| x + 100);
        assert_eq!(bus.call_service::<u32, u32>("f", 1).unwrap(), 101);
        assert!(bus.has_service("f"));
        assert_eq!(bus.service_names(), vec!["f".to_owned()]);
    }
}
