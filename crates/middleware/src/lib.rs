//! `mavfi-middleware` is a small, deterministic, in-process publish/subscribe
//! middleware modelled after the subset of ROS 1 that the MAVFI paper relies
//! on: named *topics* carrying typed messages between *nodes*, one-to-one
//! *services*, a master-like registry that restarts crashed nodes, and a
//! rate-driven executor running on a simulated clock.
//!
//! The fault-injection framework of the paper attaches to the ROS
//! communication layer to corrupt inter-kernel states in flight; this crate
//! reproduces that hook with per-topic [interceptors](topic::Publisher) that
//! may mutate messages between publication and delivery.
//!
//! # Examples
//!
//! ```
//! use mavfi_middleware::prelude::*;
//!
//! let bus = Bus::new();
//! let publisher = bus.advertise::<f64>("altitude");
//! let subscriber = bus.subscribe::<f64>("altitude");
//!
//! publisher.publish(12.5);
//! assert_eq!(subscriber.try_recv(), Some(12.5));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod error;
pub mod executor;
pub mod message;
pub mod node;
pub mod record;
pub mod registry;
pub mod service;
pub mod topic;
pub mod trace;

pub use clock::SimClock;
pub use error::MiddlewareError;
pub use executor::{Executor, ExecutorReport};
pub use message::Message;
pub use node::{Node, NodeContext, NodeError};
pub use record::{RecordEntry, Recorder, DEFAULT_RECORD_CAPACITY};
pub use registry::{NodeInfo, Registry};
pub use service::{ServiceClient, ServiceServer};
pub use topic::{Bus, Publisher, Subscriber};
pub use trace::{TopicDecl, TraceError, TraceReader, TraceRecordRef, TraceSummary, TraceWriter};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::clock::SimClock;
    pub use crate::error::MiddlewareError;
    pub use crate::executor::{Executor, ExecutorReport};
    pub use crate::message::Message;
    pub use crate::node::{Node, NodeContext, NodeError};
    pub use crate::record::{RecordEntry, Recorder};
    pub use crate::registry::{NodeInfo, Registry};
    pub use crate::topic::{Bus, Publisher, Subscriber};
    pub use crate::trace::{TopicDecl, TraceError, TraceReader, TraceWriter};
}
