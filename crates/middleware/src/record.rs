//! A rosbag-like recorder capturing every publication on a [`Bus`](crate::Bus).
//!
//! [`Recorder`] keeps a bounded, human-readable tail for interactive
//! inspection.  The lossless capture path — [`TraceWriter`]/[`TraceReader`]
//! with a versioned binary format and digest verification — lives in
//! [`crate::trace`] and is re-exported here.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

pub use crate::trace::{TraceReader, TraceWriter};

/// One recorded publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEntry {
    /// Monotonically increasing sequence number across the whole bus.
    /// Sequence numbers are assigned at publication time and survive
    /// eviction: after the ring wraps, the oldest retained entry's `seq`
    /// tells you exactly how many earlier publications were dropped.
    pub seq: u64,
    /// Topic the message was published on.
    pub topic: String,
    /// Simulated time of publication.
    pub stamp: Duration,
    /// `Debug` rendering of the message, truncated to a bounded length.
    pub summary: String,
}

/// Maximum number of characters kept from a message's `Debug` rendering.
const SUMMARY_LIMIT: usize = 160;

/// Default ring capacity: at 50 Hz and a handful of topics this comfortably
/// holds the tail of a mission without letting an unattended recorder grow
/// without bound.
pub const DEFAULT_RECORD_CAPACITY: usize = 16_384;

#[derive(Debug)]
struct RecorderState {
    entries: VecDeque<RecordEntry>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// Records topic publications for post-mission analysis, in the same spirit
/// as `rosbag record`.
///
/// Storage is a **bounded ring buffer** ([`DEFAULT_RECORD_CAPACITY`] entries
/// by default, configurable via [`Recorder::with_capacity`]): once full, the
/// *oldest* entry is evicted per new publication, so a long mission keeps
/// its most recent tail rather than growing without bound.  Evictions are
/// counted ([`Recorder::dropped`]) and sequence numbers keep counting across
/// them, so gaps are always attributable.
///
/// Attach a recorder with [`Bus::set_recorder`](crate::Bus::set_recorder);
/// every subsequent publication is captured.  Cloning a `Recorder` clones a
/// handle to the same underlying storage.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::{Bus, Recorder};
///
/// let bus = Bus::new();
/// let recorder = Recorder::new();
/// bus.set_recorder(recorder.clone());
///
/// bus.advertise::<u32>("ticks").publish(7);
/// assert_eq!(recorder.len(), 1);
/// assert_eq!(recorder.entries()[0].topic, "ticks");
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    state: Arc<Mutex<RecorderState>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder holding up to [`DEFAULT_RECORD_CAPACITY`]
    /// entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RECORD_CAPACITY)
    }

    /// Creates an empty recorder holding up to `capacity` entries (at least
    /// one).  The ring is preallocated, so it never grows past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Arc::new(Mutex::new(RecorderState {
                entries: VecDeque::with_capacity(capacity),
                capacity,
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Appends one entry, evicting the oldest if the ring is full.  Intended
    /// to be called by the bus, but public so that custom transports can
    /// participate in recording.
    pub fn record(&self, topic: &str, stamp: Duration, summary: impl Into<String>) {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() == state.capacity {
            state.entries.pop_front();
            state.dropped += 1;
        }
        let mut summary = summary.into();
        if summary.len() > SUMMARY_LIMIT {
            // `String::truncate` panics off a char boundary, and `Debug`
            // renderings routinely carry multi-byte glyphs — back off to the
            // nearest boundary at or below the limit instead.
            let mut end = SUMMARY_LIMIT;
            while !summary.is_char_boundary(end) {
                end -= 1;
            }
            summary.truncate(end);
        }
        state.entries.push_back(RecordEntry { seq, topic: topic.to_owned(), stamp, summary });
    }

    /// Returns a copy of every retained entry in publication order (oldest
    /// retained first).
    ///
    /// This clones the whole ring; prefer [`Recorder::for_each_entry`] or
    /// [`Recorder::with_entries`] when inspecting without keeping a copy.
    pub fn entries(&self) -> Vec<RecordEntry> {
        self.with_entries(|entries| entries.cloned().collect())
    }

    /// Visits every retained entry by reference, oldest retained first,
    /// without cloning the ring.
    ///
    /// The ring's lock is held for the duration of the walk (the lock is not
    /// reentrant, so don't call back into this recorder from `visit`).
    pub fn for_each_entry(&self, mut visit: impl FnMut(&RecordEntry)) {
        self.with_entries(|entries| entries.for_each(&mut visit));
    }

    /// Runs `inspect` over an iterator of the retained entries (oldest
    /// retained first) under the ring's lock and returns its result —
    /// allocation-free snapshot access for counts, scans and folds.
    ///
    /// The lock is held while `inspect` runs (not reentrant: don't call back
    /// into this recorder from the closure).
    pub fn with_entries<R>(
        &self,
        inspect: impl FnOnce(&mut dyn Iterator<Item = &RecordEntry>) -> R,
    ) -> R {
        let state = self.state.lock();
        inspect(&mut state.entries.iter())
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Returns `true` when nothing is currently retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total publications seen, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Entries evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Number of retained entries recorded for a single topic.
    pub fn count_for_topic(&self, topic: &str) -> usize {
        self.with_entries(|entries| entries.filter(|entry| entry.topic == topic).count())
    }

    /// Removes all retained entries.  Sequence numbering and the dropped
    /// count continue from where they were.
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let recorder = Recorder::new();
        recorder.record("a", Duration::from_secs(1), "x");
        recorder.record("b", Duration::from_secs(2), "y");
        let entries = recorder.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert_eq!(entries[1].topic, "b");
    }

    #[test]
    fn truncates_long_summaries() {
        let recorder = Recorder::new();
        recorder.record("t", Duration::ZERO, "z".repeat(1000));
        assert_eq!(recorder.entries()[0].summary.len(), SUMMARY_LIMIT);
    }

    #[test]
    fn truncates_multibyte_summaries_on_char_boundaries() {
        let recorder = Recorder::new();
        // 'λ' is two bytes: 120 of them put byte SUMMARY_LIMIT (160) mid-char,
        // which used to panic in String::truncate.
        recorder.record("t", Duration::ZERO, "λ".repeat(120));
        let summary = &recorder.entries()[0].summary;
        assert!(summary.len() <= SUMMARY_LIMIT);
        assert_eq!(summary.chars().count(), 80);
        // Four-byte glyphs back off further than one byte.
        recorder.record("t", Duration::ZERO, "🛸".repeat(50));
        let summary = &recorder.entries()[1].summary;
        assert!(summary.len() <= SUMMARY_LIMIT);
        assert!(summary.chars().all(|c| c == '🛸'));
    }

    #[test]
    fn by_ref_accessors_match_cloned_entries() {
        let recorder = Recorder::with_capacity(4);
        for index in 0..6u64 {
            let topic = if index % 2 == 0 { "imu" } else { "cmd" };
            recorder.record(topic, Duration::from_secs(index), format!("m{index}"));
        }
        let cloned = recorder.entries();
        let mut walked = Vec::new();
        recorder.for_each_entry(|entry| walked.push(entry.clone()));
        assert_eq!(walked, cloned);
        let first_seq = recorder.with_entries(|entries| entries.next().map(|e| e.seq));
        assert_eq!(first_seq, Some(cloned[0].seq));
        assert_eq!(recorder.count_for_topic("imu"), 2);
        assert_eq!(recorder.count_for_topic("cmd"), 2);
    }

    #[test]
    fn counts_per_topic_and_clears() {
        let recorder = Recorder::new();
        for _ in 0..3 {
            recorder.record("imu", Duration::ZERO, "m");
        }
        recorder.record("cmd", Duration::ZERO, "c");
        assert_eq!(recorder.count_for_topic("imu"), 3);
        assert_eq!(recorder.count_for_topic("cmd"), 1);
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.total_recorded(), 4);
    }

    #[test]
    fn clones_share_storage() {
        let recorder = Recorder::new();
        let other = recorder.clone();
        other.record("t", Duration::ZERO, "m");
        assert_eq!(recorder.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence_numbers() {
        let recorder = Recorder::with_capacity(3);
        assert_eq!(recorder.capacity(), 3);
        for index in 0..5u64 {
            recorder.record("t", Duration::from_secs(index), format!("m{index}"));
        }
        let entries = recorder.entries();
        assert_eq!(entries.len(), 3);
        // The two oldest entries were evicted; the retained tail keeps its
        // original sequence numbers so the gap is visible.
        assert_eq!(entries[0].seq, 2);
        assert_eq!(entries[2].seq, 4);
        assert_eq!(recorder.dropped(), 2);
        assert_eq!(recorder.total_recorded(), 5);
    }

    #[test]
    fn capacity_floor_is_one() {
        let recorder = Recorder::with_capacity(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record("a", Duration::ZERO, "x");
        recorder.record("b", Duration::ZERO, "y");
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.entries()[0].topic, "b");
        assert_eq!(recorder.dropped(), 1);
    }
}
