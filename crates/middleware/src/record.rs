//! A rosbag-like recorder capturing every publication on a [`Bus`](crate::Bus).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One recorded publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEntry {
    /// Monotonically increasing sequence number across the whole bus.
    /// Sequence numbers are assigned at publication time and survive
    /// eviction: after the ring wraps, the oldest retained entry's `seq`
    /// tells you exactly how many earlier publications were dropped.
    pub seq: u64,
    /// Topic the message was published on.
    pub topic: String,
    /// Simulated time of publication.
    pub stamp: Duration,
    /// `Debug` rendering of the message, truncated to a bounded length.
    pub summary: String,
}

/// Maximum number of characters kept from a message's `Debug` rendering.
const SUMMARY_LIMIT: usize = 160;

/// Default ring capacity: at 50 Hz and a handful of topics this comfortably
/// holds the tail of a mission without letting an unattended recorder grow
/// without bound.
pub const DEFAULT_RECORD_CAPACITY: usize = 16_384;

#[derive(Debug)]
struct RecorderState {
    entries: VecDeque<RecordEntry>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// Records topic publications for post-mission analysis, in the same spirit
/// as `rosbag record`.
///
/// Storage is a **bounded ring buffer** ([`DEFAULT_RECORD_CAPACITY`] entries
/// by default, configurable via [`Recorder::with_capacity`]): once full, the
/// *oldest* entry is evicted per new publication, so a long mission keeps
/// its most recent tail rather than growing without bound.  Evictions are
/// counted ([`Recorder::dropped`]) and sequence numbers keep counting across
/// them, so gaps are always attributable.
///
/// Attach a recorder with [`Bus::set_recorder`](crate::Bus::set_recorder);
/// every subsequent publication is captured.  Cloning a `Recorder` clones a
/// handle to the same underlying storage.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::{Bus, Recorder};
///
/// let bus = Bus::new();
/// let recorder = Recorder::new();
/// bus.set_recorder(recorder.clone());
///
/// bus.advertise::<u32>("ticks").publish(7);
/// assert_eq!(recorder.len(), 1);
/// assert_eq!(recorder.entries()[0].topic, "ticks");
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    state: Arc<Mutex<RecorderState>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder holding up to [`DEFAULT_RECORD_CAPACITY`]
    /// entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RECORD_CAPACITY)
    }

    /// Creates an empty recorder holding up to `capacity` entries (at least
    /// one).  The ring is preallocated, so it never grows past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Arc::new(Mutex::new(RecorderState {
                entries: VecDeque::with_capacity(capacity),
                capacity,
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Appends one entry, evicting the oldest if the ring is full.  Intended
    /// to be called by the bus, but public so that custom transports can
    /// participate in recording.
    pub fn record(&self, topic: &str, stamp: Duration, summary: impl Into<String>) {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() == state.capacity {
            state.entries.pop_front();
            state.dropped += 1;
        }
        let mut summary = summary.into();
        if summary.len() > SUMMARY_LIMIT {
            summary.truncate(SUMMARY_LIMIT);
        }
        state.entries.push_back(RecordEntry { seq, topic: topic.to_owned(), stamp, summary });
    }

    /// Returns a copy of every retained entry in publication order (oldest
    /// retained first).
    pub fn entries(&self) -> Vec<RecordEntry> {
        self.state.lock().entries.iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Returns `true` when nothing is currently retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total publications seen, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Entries evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Number of retained entries recorded for a single topic.
    pub fn count_for_topic(&self, topic: &str) -> usize {
        self.state.lock().entries.iter().filter(|entry| entry.topic == topic).count()
    }

    /// Removes all retained entries.  Sequence numbering and the dropped
    /// count continue from where they were.
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let recorder = Recorder::new();
        recorder.record("a", Duration::from_secs(1), "x");
        recorder.record("b", Duration::from_secs(2), "y");
        let entries = recorder.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert_eq!(entries[1].topic, "b");
    }

    #[test]
    fn truncates_long_summaries() {
        let recorder = Recorder::new();
        recorder.record("t", Duration::ZERO, "z".repeat(1000));
        assert_eq!(recorder.entries()[0].summary.len(), SUMMARY_LIMIT);
    }

    #[test]
    fn counts_per_topic_and_clears() {
        let recorder = Recorder::new();
        for _ in 0..3 {
            recorder.record("imu", Duration::ZERO, "m");
        }
        recorder.record("cmd", Duration::ZERO, "c");
        assert_eq!(recorder.count_for_topic("imu"), 3);
        assert_eq!(recorder.count_for_topic("cmd"), 1);
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.total_recorded(), 4);
    }

    #[test]
    fn clones_share_storage() {
        let recorder = Recorder::new();
        let other = recorder.clone();
        other.record("t", Duration::ZERO, "m");
        assert_eq!(recorder.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence_numbers() {
        let recorder = Recorder::with_capacity(3);
        assert_eq!(recorder.capacity(), 3);
        for index in 0..5u64 {
            recorder.record("t", Duration::from_secs(index), format!("m{index}"));
        }
        let entries = recorder.entries();
        assert_eq!(entries.len(), 3);
        // The two oldest entries were evicted; the retained tail keeps its
        // original sequence numbers so the gap is visible.
        assert_eq!(entries[0].seq, 2);
        assert_eq!(entries[2].seq, 4);
        assert_eq!(recorder.dropped(), 2);
        assert_eq!(recorder.total_recorded(), 5);
    }

    #[test]
    fn capacity_floor_is_one() {
        let recorder = Recorder::with_capacity(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record("a", Duration::ZERO, "x");
        recorder.record("b", Duration::ZERO, "y");
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.entries()[0].topic, "b");
        assert_eq!(recorder.dropped(), 1);
    }
}
