//! A rosbag-like recorder capturing every publication on a [`Bus`](crate::Bus).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One recorded publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEntry {
    /// Monotonically increasing sequence number across the whole bus.
    pub seq: u64,
    /// Topic the message was published on.
    pub topic: String,
    /// Simulated time of publication.
    pub stamp: Duration,
    /// `Debug` rendering of the message, truncated to a bounded length.
    pub summary: String,
}

/// Maximum number of characters kept from a message's `Debug` rendering.
const SUMMARY_LIMIT: usize = 160;

/// Records topic publications for post-mission analysis, in the same spirit
/// as `rosbag record`.
///
/// Attach a recorder with [`Bus::set_recorder`](crate::Bus::set_recorder);
/// every subsequent publication is captured.  Cloning a `Recorder` clones a
/// handle to the same underlying storage.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::{Bus, Recorder};
///
/// let bus = Bus::new();
/// let recorder = Recorder::new();
/// bus.set_recorder(recorder.clone());
///
/// bus.advertise::<u32>("ticks").publish(7);
/// assert_eq!(recorder.len(), 1);
/// assert_eq!(recorder.entries()[0].topic, "ticks");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    entries: Arc<Mutex<Vec<RecordEntry>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry.  Intended to be called by the bus, but public so
    /// that custom transports can participate in recording.
    pub fn record(&self, topic: &str, stamp: Duration, summary: impl Into<String>) {
        let mut entries = self.entries.lock();
        let seq = entries.len() as u64;
        let mut summary = summary.into();
        if summary.len() > SUMMARY_LIMIT {
            summary.truncate(SUMMARY_LIMIT);
        }
        entries.push(RecordEntry { seq, topic: topic.to_owned(), stamp, summary });
    }

    /// Returns a copy of every recorded entry in publication order.
    pub fn entries(&self) -> Vec<RecordEntry> {
        self.entries.lock().clone()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Returns `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries recorded for a single topic.
    pub fn count_for_topic(&self, topic: &str) -> usize {
        self.entries.lock().iter().filter(|entry| entry.topic == topic).count()
    }

    /// Removes all recorded entries.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let recorder = Recorder::new();
        recorder.record("a", Duration::from_secs(1), "x");
        recorder.record("b", Duration::from_secs(2), "y");
        let entries = recorder.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert_eq!(entries[1].topic, "b");
    }

    #[test]
    fn truncates_long_summaries() {
        let recorder = Recorder::new();
        recorder.record("t", Duration::ZERO, "z".repeat(1000));
        assert_eq!(recorder.entries()[0].summary.len(), SUMMARY_LIMIT);
    }

    #[test]
    fn counts_per_topic_and_clears() {
        let recorder = Recorder::new();
        for _ in 0..3 {
            recorder.record("imu", Duration::ZERO, "m");
        }
        recorder.record("cmd", Duration::ZERO, "c");
        assert_eq!(recorder.count_for_topic("imu"), 3);
        assert_eq!(recorder.count_for_topic("cmd"), 1);
        recorder.clear();
        assert!(recorder.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let recorder = Recorder::new();
        let other = recorder.clone();
        other.record("t", Duration::ZERO, "m");
        assert_eq!(recorder.len(), 1);
    }
}
