//! Error types shared across the middleware.

use std::error::Error;
use std::fmt;

/// Errors raised by bus, service and executor operations.
///
/// Every public fallible middleware API returns this type.  The variants are
/// intentionally coarse: the middleware is an in-process substrate, so the
/// only failure modes are programming errors (type mismatches, unknown
/// names) and node crashes surfaced by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MiddlewareError {
    /// A topic was accessed with a message type different from the type it
    /// was first advertised or subscribed with.
    TopicTypeMismatch {
        /// Name of the offending topic.
        topic: String,
    },
    /// A service call referenced a service that no server has advertised.
    NoSuchService {
        /// Name of the missing service.
        service: String,
    },
    /// A service was called with request/response types different from the
    /// types registered by its server.
    ServiceTypeMismatch {
        /// Name of the offending service.
        service: String,
    },
    /// A node registered with the executor panicked or returned an error
    /// from its `step` function.
    NodeCrashed {
        /// Name of the crashed node.
        node: String,
        /// Human-readable crash reason.
        reason: String,
    },
    /// An executor was asked to run but owns no nodes.
    EmptyExecutor,
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TopicTypeMismatch { topic } => {
                write!(f, "topic `{topic}` accessed with mismatched message type")
            }
            Self::NoSuchService { service } => {
                write!(f, "no server advertised for service `{service}`")
            }
            Self::ServiceTypeMismatch { service } => {
                write!(f, "service `{service}` called with mismatched request or response type")
            }
            Self::NodeCrashed { node, reason } => {
                write!(f, "node `{node}` crashed: {reason}")
            }
            Self::EmptyExecutor => write!(f, "executor has no registered nodes"),
        }
    }
}

impl Error for MiddlewareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            MiddlewareError::TopicTypeMismatch { topic: "imu".into() },
            MiddlewareError::NoSuchService { service: "plan".into() },
            MiddlewareError::ServiceTypeMismatch { service: "plan".into() },
            MiddlewareError::NodeCrashed { node: "pid".into(), reason: "panic".into() },
            MiddlewareError::EmptyExecutor,
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MiddlewareError>();
    }
}
