//! The [`Node`] trait: the unit of computation scheduled by the executor.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use crate::topic::Bus;

/// Error returned by a node's [`step`](Node::step), interpreted by the
/// executor as a crash of that node.
///
/// In MAVFI, ROS node crashes are outside the silent-data-corruption threat
/// model because the ROS master restarts crashed nodes automatically; the
/// executor reproduces that behaviour by calling [`Node::on_restart`] and
/// continuing the mission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeError {
    reason: String,
}

impl NodeError {
    /// Creates a node error with a human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self { reason: reason.into() }
    }

    /// The crash reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node step failed: {}", self.reason)
    }
}

impl Error for NodeError {}

/// Execution context handed to a node on every step.
#[derive(Debug)]
pub struct NodeContext<'a> {
    /// The shared message bus.
    pub bus: &'a Bus,
    /// Current simulated time.
    pub now: Duration,
    /// Number of times this node has been stepped before (0 on the first
    /// step, monotonically increasing, not reset by restarts).
    pub step_index: u64,
}

/// A periodically scheduled unit of computation, the analogue of a ROS node
/// wrapping a single compute kernel.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mavfi_middleware::{Node, NodeContext, NodeError};
///
/// struct Heartbeat {
///     count: u64,
/// }
///
/// impl Node for Heartbeat {
///     fn name(&self) -> &str {
///         "heartbeat"
///     }
///
///     fn period(&self) -> Duration {
///         Duration::from_millis(100)
///     }
///
///     fn step(&mut self, _ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
///         self.count += 1;
///         Ok(())
///     }
/// }
/// ```
pub trait Node: Send {
    /// Unique, stable name of the node (used by the registry).
    fn name(&self) -> &str;

    /// Interval between consecutive steps in simulated time.
    fn period(&self) -> Duration;

    /// Performs one unit of work.
    ///
    /// # Errors
    ///
    /// Returning an error marks the node as crashed for this step; the
    /// executor records the crash, invokes [`Node::on_restart`] and resumes
    /// scheduling the node, mirroring the ROS master restart behaviour.
    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError>;

    /// Hook invoked after a crash, before the node is rescheduled.  The
    /// default implementation does nothing.
    fn on_restart(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        steps: u64,
    }

    impl Node for Counter {
        fn name(&self) -> &str {
            "counter"
        }

        fn period(&self) -> Duration {
            Duration::from_millis(10)
        }

        fn step(&mut self, _ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
            self.steps += 1;
            Ok(())
        }
    }

    #[test]
    fn node_error_displays_reason() {
        let err = NodeError::new("division by zero");
        assert!(err.to_string().contains("division by zero"));
        assert_eq!(err.reason(), "division by zero");
    }

    #[test]
    fn manual_step_through_context() {
        let bus = Bus::new();
        let mut node = Counter { steps: 0 };
        let mut ctx = NodeContext { bus: &bus, now: Duration::ZERO, step_index: 0 };
        node.step(&mut ctx).unwrap();
        node.step(&mut ctx).unwrap();
        assert_eq!(node.steps, 2);
    }

    #[test]
    fn node_trait_is_object_safe() {
        let node: Box<dyn Node> = Box::new(Counter { steps: 0 });
        assert_eq!(node.name(), "counter");
        assert_eq!(node.period(), Duration::from_millis(10));
    }
}
