//! The typed publish/subscribe bus: topics, publishers, subscribers and
//! in-flight message interceptors.

use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::error::MiddlewareError;
use crate::message::Message;
use crate::record::Recorder;

/// Default bounded queue depth per subscriber, mirroring a typical ROS
/// `queue_size`.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Mutating hook applied to every message on a topic between publication and
/// delivery.  This is the attachment point used by the fault injector.
type Interceptor<T> = Box<dyn FnMut(&mut T) + Send>;

struct SubscriberQueue<T> {
    queue: VecDeque<T>,
    latest: Option<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> SubscriberQueue<T> {
    fn new(capacity: usize) -> Self {
        Self { queue: VecDeque::new(), latest: None, capacity, dropped: 0 }
    }
}

struct TopicChannel<T> {
    subscribers: Vec<Arc<Mutex<SubscriberQueue<T>>>>,
    interceptors: Vec<Interceptor<T>>,
}

impl<T> TopicChannel<T> {
    fn new() -> Self {
        Self { subscribers: Vec::new(), interceptors: Vec::new() }
    }
}

struct TopicEntry {
    type_id: TypeId,
    type_name: &'static str,
    publish_count: u64,
    channel: Box<dyn Any + Send>,
}

#[derive(Default)]
struct BusInner {
    topics: Mutex<HashMap<String, TopicEntry>>,
    services: Mutex<HashMap<String, crate::service::ServiceEntry>>,
    recorder: Mutex<Option<Recorder>>,
}

/// The central message bus: a deterministic, in-process stand-in for the ROS
/// topic graph.
///
/// A `Bus` is cheap to clone; clones share the same topic table, service
/// table, clock and recorder.
///
/// # Examples
///
/// ```
/// use mavfi_middleware::Bus;
///
/// let bus = Bus::new();
/// let tx = bus.advertise::<Vec<f64>>("point_cloud");
/// let rx = bus.subscribe::<Vec<f64>>("point_cloud");
/// tx.publish(vec![1.0, 2.0, 3.0]);
/// assert_eq!(rx.try_recv(), Some(vec![1.0, 2.0, 3.0]));
/// ```
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
    clock: SimClock,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus")
            .field("topics", &self.topic_names())
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Bus {
    /// Creates an empty bus with a fresh clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bus driven by an existing simulated clock.
    pub fn with_clock(clock: SimClock) -> Self {
        Self { inner: Arc::new(BusInner::default()), clock }
    }

    /// Returns a handle to the bus clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Attaches a recorder that captures every subsequent publication.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.inner.recorder.lock() = Some(recorder);
    }

    /// Removes the active recorder, if any, and returns it.
    pub fn take_recorder(&self) -> Option<Recorder> {
        self.inner.recorder.lock().take()
    }

    /// Creates a publisher for `topic`, registering the topic on first use.
    ///
    /// # Panics
    ///
    /// Panics if `topic` already exists with a different message type; use
    /// [`Bus::try_advertise`] to handle that case gracefully.
    pub fn advertise<T: Message>(&self, topic: &str) -> Publisher<T> {
        self.try_advertise(topic).expect("topic advertised with mismatched message type")
    }

    /// Fallible variant of [`Bus::advertise`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::TopicTypeMismatch`] if the topic exists
    /// with a different message type.
    pub fn try_advertise<T: Message>(&self, topic: &str) -> Result<Publisher<T>, MiddlewareError> {
        self.ensure_topic::<T>(topic)?;
        Ok(Publisher { bus: self.clone(), topic: topic.to_owned(), _marker: PhantomData })
    }

    /// Creates a subscriber on `topic` with the default queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `topic` already exists with a different message type; use
    /// [`Bus::try_subscribe`] to handle that case gracefully.
    pub fn subscribe<T: Message>(&self, topic: &str) -> Subscriber<T> {
        self.try_subscribe(topic).expect("topic subscribed with mismatched message type")
    }

    /// Fallible variant of [`Bus::subscribe`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::TopicTypeMismatch`] if the topic exists
    /// with a different message type.
    pub fn try_subscribe<T: Message>(&self, topic: &str) -> Result<Subscriber<T>, MiddlewareError> {
        self.try_subscribe_with_capacity(topic, DEFAULT_QUEUE_CAPACITY)
    }

    /// Creates a subscriber with an explicit bounded queue capacity.  When
    /// the queue is full the oldest message is dropped, as with a ROS
    /// `queue_size`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::TopicTypeMismatch`] if the topic exists
    /// with a different message type.
    pub fn try_subscribe_with_capacity<T: Message>(
        &self,
        topic: &str,
        capacity: usize,
    ) -> Result<Subscriber<T>, MiddlewareError> {
        self.ensure_topic::<T>(topic)?;
        let queue = Arc::new(Mutex::new(SubscriberQueue::new(capacity.max(1))));
        let mut topics = self.inner.topics.lock();
        let entry = topics.get_mut(topic).expect("topic just ensured");
        let channel =
            entry.channel.downcast_mut::<TopicChannel<T>>().expect("type id already validated");
        channel.subscribers.push(Arc::clone(&queue));
        Ok(Subscriber { queue, topic: topic.to_owned() })
    }

    /// Registers an interceptor that may mutate every message published on
    /// `topic` before delivery.  Interceptors run in registration order.
    ///
    /// This is the hook the MAVFI fault injector uses to corrupt inter-kernel
    /// states in flight.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::TopicTypeMismatch`] if the topic exists
    /// with a different message type.
    pub fn add_interceptor<T, F>(&self, topic: &str, interceptor: F) -> Result<(), MiddlewareError>
    where
        T: Message,
        F: FnMut(&mut T) + Send + 'static,
    {
        self.ensure_topic::<T>(topic)?;
        let mut topics = self.inner.topics.lock();
        let entry = topics.get_mut(topic).expect("topic just ensured");
        let channel =
            entry.channel.downcast_mut::<TopicChannel<T>>().expect("type id already validated");
        channel.interceptors.push(Box::new(interceptor));
        Ok(())
    }

    /// Removes every interceptor registered on `topic`.  Unknown topics are
    /// ignored.
    pub fn clear_interceptors<T: Message>(&self, topic: &str) {
        let mut topics = self.inner.topics.lock();
        if let Some(entry) = topics.get_mut(topic) {
            if let Some(channel) = entry.channel.downcast_mut::<TopicChannel<T>>() {
                channel.interceptors.clear();
            }
        }
    }

    /// Number of messages published on `topic` since bus creation.
    pub fn publish_count(&self, topic: &str) -> u64 {
        self.inner.topics.lock().get(topic).map_or(0, |entry| entry.publish_count)
    }

    /// Names of every advertised or subscribed topic, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Registered message type name for `topic`, if the topic exists.
    pub fn topic_type_name(&self, topic: &str) -> Option<&'static str> {
        self.inner.topics.lock().get(topic).map(|entry| entry.type_name)
    }

    pub(crate) fn services(&self) -> &Mutex<HashMap<String, crate::service::ServiceEntry>> {
        &self.inner.services
    }

    fn ensure_topic<T: Message>(&self, topic: &str) -> Result<(), MiddlewareError> {
        let mut topics = self.inner.topics.lock();
        match topics.get(topic) {
            Some(entry) if entry.type_id == TypeId::of::<T>() => Ok(()),
            Some(_) => Err(MiddlewareError::TopicTypeMismatch { topic: topic.to_owned() }),
            None => {
                topics.insert(
                    topic.to_owned(),
                    TopicEntry {
                        type_id: TypeId::of::<T>(),
                        type_name: std::any::type_name::<T>(),
                        publish_count: 0,
                        channel: Box::new(TopicChannel::<T>::new()),
                    },
                );
                Ok(())
            }
        }
    }

    fn publish_inner<T: Message>(&self, topic: &str, mut message: T) -> usize {
        let delivered;
        {
            let mut topics = self.inner.topics.lock();
            let entry = match topics.get_mut(topic) {
                Some(entry) if entry.type_id == TypeId::of::<T>() => entry,
                _ => return 0,
            };
            entry.publish_count += 1;
            let channel =
                entry.channel.downcast_mut::<TopicChannel<T>>().expect("type id already validated");
            for interceptor in channel.interceptors.iter_mut() {
                interceptor(&mut message);
            }
            delivered = channel.subscribers.len();
            for subscriber in &channel.subscribers {
                let mut queue = subscriber.lock();
                if queue.queue.len() >= queue.capacity {
                    queue.queue.pop_front();
                    queue.dropped += 1;
                }
                queue.queue.push_back(message.clone());
                queue.latest = Some(message.clone());
            }
        }
        if let Some(recorder) = self.inner.recorder.lock().as_ref() {
            recorder.record(topic, self.clock.now(), format!("{message:?}"));
        }
        delivered
    }
}

/// Typed handle for publishing messages on one topic.
///
/// Created by [`Bus::advertise`].  Cloning is cheap and publishes to the same
/// topic.
pub struct Publisher<T: Message> {
    bus: Bus,
    topic: String,
    _marker: PhantomData<fn(T)>,
}

impl<T: Message> Clone for Publisher<T> {
    fn clone(&self) -> Self {
        Self { bus: self.bus.clone(), topic: self.topic.clone(), _marker: PhantomData }
    }
}

impl<T: Message> fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Publisher")
            .field("topic", &self.topic)
            .field("message_type", &std::any::type_name::<T>())
            .finish()
    }
}

impl<T: Message> Publisher<T> {
    /// Publishes one message, returning the number of subscribers it was
    /// delivered to (after interceptors ran).
    pub fn publish(&self, message: T) -> usize {
        self.bus.publish_inner(&self.topic, message)
    }

    /// The topic this publisher writes to.
    pub fn topic(&self) -> &str {
        &self.topic
    }
}

/// Typed handle for receiving messages from one topic.
///
/// Created by [`Bus::subscribe`].  Each subscriber owns an independent
/// bounded queue; slow subscribers drop their oldest messages.
pub struct Subscriber<T: Message> {
    queue: Arc<Mutex<SubscriberQueue<T>>>,
    topic: String,
}

impl<T: Message> fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscriber")
            .field("topic", &self.topic)
            .field("queued", &self.len())
            .finish()
    }
}

impl<T: Message> Subscriber<T> {
    /// Pops the oldest queued message, if any.
    pub fn try_recv(&self) -> Option<T> {
        self.queue.lock().queue.pop_front()
    }

    /// Drains every queued message in arrival order.
    pub fn drain(&self) -> Vec<T> {
        self.queue.lock().queue.drain(..).collect()
    }

    /// Returns a clone of the most recently delivered message without
    /// consuming the queue.  This mirrors latched "latest value" access that
    /// control loops use.
    pub fn latest(&self) -> Option<T> {
        self.queue.lock().latest.clone()
    }

    /// Number of currently queued messages.
    pub fn len(&self) -> usize {
        self.queue.lock().queue.len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of messages dropped because the bounded queue was full.
    pub fn dropped(&self) -> u64 {
        self.queue.lock().dropped
    }

    /// The topic this subscriber reads from.
    pub fn topic(&self) -> &str {
        &self.topic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_without_subscribers_is_counted() {
        let bus = Bus::new();
        let publisher = bus.advertise::<u32>("lonely");
        assert_eq!(publisher.publish(1), 0);
        assert_eq!(bus.publish_count("lonely"), 1);
    }

    #[test]
    fn multiple_subscribers_each_receive_a_copy() {
        let bus = Bus::new();
        let publisher = bus.advertise::<String>("chat");
        let first = bus.subscribe::<String>("chat");
        let second = bus.subscribe::<String>("chat");
        assert_eq!(publisher.publish("hello".to_owned()), 2);
        assert_eq!(first.try_recv().as_deref(), Some("hello"));
        assert_eq!(second.try_recv().as_deref(), Some("hello"));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let bus = Bus::new();
        let _tx = bus.advertise::<u32>("count");
        let err = bus.try_subscribe::<f64>("count").unwrap_err();
        assert_eq!(err, MiddlewareError::TopicTypeMismatch { topic: "count".into() });
    }

    #[test]
    fn interceptor_mutates_in_flight_messages() {
        let bus = Bus::new();
        let publisher = bus.advertise::<f64>("velocity");
        let subscriber = bus.subscribe::<f64>("velocity");
        bus.add_interceptor::<f64, _>("velocity", |value| *value *= -1.0).unwrap();
        publisher.publish(3.5);
        assert_eq!(subscriber.try_recv(), Some(-3.5));
        bus.clear_interceptors::<f64>("velocity");
        publisher.publish(3.5);
        assert_eq!(subscriber.try_recv(), Some(3.5));
    }

    #[test]
    fn bounded_queue_drops_oldest() {
        let bus = Bus::new();
        let publisher = bus.advertise::<u32>("burst");
        let subscriber = bus.try_subscribe_with_capacity::<u32>("burst", 2).unwrap();
        for value in 0..5 {
            publisher.publish(value);
        }
        assert_eq!(subscriber.len(), 2);
        assert_eq!(subscriber.dropped(), 3);
        assert_eq!(subscriber.drain(), vec![3, 4]);
        assert_eq!(subscriber.latest(), Some(4));
    }

    #[test]
    fn latest_survives_drain() {
        let bus = Bus::new();
        let publisher = bus.advertise::<u32>("state");
        let subscriber = bus.subscribe::<u32>("state");
        publisher.publish(9);
        let _ = subscriber.drain();
        assert_eq!(subscriber.latest(), Some(9));
        assert!(subscriber.is_empty());
    }

    #[test]
    fn topic_names_are_sorted_and_typed() {
        let bus = Bus::new();
        let _b = bus.advertise::<u32>("b");
        let _a = bus.advertise::<f32>("a");
        assert_eq!(bus.topic_names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(bus.topic_type_name("a"), Some(std::any::type_name::<f32>()));
        assert_eq!(bus.topic_type_name("missing"), None);
    }

    #[test]
    fn recorder_captures_publications() {
        let bus = Bus::new();
        let recorder = Recorder::new();
        bus.set_recorder(recorder.clone());
        bus.advertise::<u8>("beat").publish(1);
        bus.advertise::<u8>("beat").publish(2);
        assert_eq!(recorder.count_for_topic("beat"), 2);
        assert!(bus.take_recorder().is_some());
        bus.advertise::<u8>("beat").publish(3);
        assert_eq!(recorder.count_for_topic("beat"), 2);
    }
}
