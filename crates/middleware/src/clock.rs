//! Simulated time source shared by the bus, executor and recorder.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// A monotonically advancing simulated clock.
///
/// MAVFI campaigns must be deterministic and much faster than real time, so
/// every timestamp in the middleware comes from this clock rather than the
/// operating system.  Cloning a `SimClock` yields a handle to the *same*
/// underlying time source.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mavfi_middleware::SimClock;
///
/// let clock = SimClock::new();
/// assert_eq!(clock.now(), Duration::ZERO);
/// clock.advance(Duration::from_millis(20));
/// assert_eq!(clock.now(), Duration::from_millis(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<RwLock<Duration>>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at the given offset.
    pub fn starting_at(offset: Duration) -> Self {
        Self { now: Arc::new(RwLock::new(offset)) }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> Duration {
        *self.now.read()
    }

    /// Advances the clock by `delta` and returns the new time.
    pub fn advance(&self, delta: Duration) -> Duration {
        let mut guard = self.now.write();
        *guard += delta;
        *guard
    }

    /// Sets the clock to an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time; simulated time never
    /// flows backwards.
    pub fn set(&self, to: Duration) {
        let mut guard = self.now.write();
        assert!(to >= *guard, "simulated time must not move backwards");
        *guard = to;
    }

    /// Returns the current time expressed in seconds as `f64`.
    pub fn now_secs(&self) -> f64 {
        self.now().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), Duration::ZERO);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(Duration::from_secs(3));
        assert_eq!(other.now(), Duration::from_secs(3));
    }

    #[test]
    fn starting_at_offset() {
        let clock = SimClock::starting_at(Duration::from_secs(5));
        assert_eq!(clock.now_secs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn set_backwards_panics() {
        let clock = SimClock::starting_at(Duration::from_secs(5));
        clock.set(Duration::from_secs(1));
    }

    #[test]
    fn advance_returns_new_time() {
        let clock = SimClock::new();
        let new = clock.advance(Duration::from_millis(250));
        assert_eq!(new, Duration::from_millis(250));
    }
}
