//! Stage taps: the hook points between PPC stages where the fault injector
//! corrupts inter-kernel states and the anomaly detectors observe them and
//! request recomputation.

use mavfi_sim::vehicle::FlightCommand;

use crate::perception::occupancy::OccupancyGrid;
use crate::states::{CollisionEstimate, PointCloud, Trajectory};

/// The verdict a tap returns after inspecting (and possibly mutating) a
/// stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TapAction {
    /// Let the value flow to the next stage unchanged.
    #[default]
    Continue,
    /// Discard the value and recompute the producing stage (the recovery
    /// feedback loop of the paper's Fig. 5a).
    Recompute,
}

impl TapAction {
    /// Combines two verdicts: recomputation wins.
    pub fn merge(self, other: Self) -> Self {
        if self == Self::Recompute || other == Self::Recompute {
            Self::Recompute
        } else {
            Self::Continue
        }
    }
}

/// Observer/mutator of inter-kernel states, called by
/// [`PpcPipeline::tick`](crate::pipeline::PpcPipeline::tick) between stages.
///
/// All methods default to "do nothing"; implementors override only the hooks
/// they need.  The fault injector mutates values; the detection-and-recovery
/// node observes them and may return [`TapAction::Recompute`].
pub trait StageTap {
    /// Called after the point-cloud generation kernel.
    fn after_point_cloud(&mut self, _cloud: &mut PointCloud) {}

    /// Called after the occupancy map has been updated with the latest
    /// cloud.
    fn after_occupancy(&mut self, _grid: &mut OccupancyGrid) {}

    /// Called after the collision-check kernel (end of the perception
    /// stage).
    fn after_perception(&mut self, _estimate: &mut CollisionEstimate) -> TapAction {
        TapAction::Continue
    }

    /// Called after the planning stage with the *stored* trajectory;
    /// mutations persist until the pipeline replans.  `active_index` is the
    /// index of the way-point the controller is currently tracking.
    fn after_planning(&mut self, _trajectory: &mut Trajectory, _active_index: usize) -> TapAction {
        TapAction::Continue
    }

    /// Called after the control stage with the flight command about to be
    /// issued to the actuator.
    fn after_control(&mut self, _command: &mut FlightCommand) -> TapAction {
        TapAction::Continue
    }
}

/// A tap that does nothing; useful as a default and in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTap;

impl StageTap for NoopTap {}

impl<T: StageTap + ?Sized> StageTap for &mut T {
    fn after_point_cloud(&mut self, cloud: &mut PointCloud) {
        (**self).after_point_cloud(cloud);
    }

    fn after_occupancy(&mut self, grid: &mut OccupancyGrid) {
        (**self).after_occupancy(grid);
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        (**self).after_perception(estimate)
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        (**self).after_planning(trajectory, active_index)
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        (**self).after_control(command)
    }
}

/// Runs two taps in sequence (first `A`, then `B`) and merges their
/// verdicts.  The mission runner composes the fault injector (first) with
/// the detector (second) this way, so the detector observes already
/// corrupted values exactly as it would on the ROS graph.
#[derive(Debug, Default)]
pub struct ChainTap<A, B> {
    /// The tap that runs first.
    pub first: A,
    /// The tap that runs second.
    pub second: B,
}

impl<A, B> ChainTap<A, B> {
    /// Creates a chained tap.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

impl<A: StageTap, B: StageTap> StageTap for ChainTap<A, B> {
    fn after_point_cloud(&mut self, cloud: &mut PointCloud) {
        self.first.after_point_cloud(cloud);
        self.second.after_point_cloud(cloud);
    }

    fn after_occupancy(&mut self, grid: &mut OccupancyGrid) {
        self.first.after_occupancy(grid);
        self.second.after_occupancy(grid);
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        let a = self.first.after_perception(estimate);
        let b = self.second.after_perception(estimate);
        a.merge(b)
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        let a = self.first.after_planning(trajectory, active_index);
        let b = self.second.after_planning(trajectory, active_index);
        a.merge(b)
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        let a = self.first.after_control(command);
        let b = self.second.after_control(command);
        a.merge(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::geometry::Vec3;

    struct Doubler;
    impl StageTap for Doubler {
        fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
            command.velocity = command.velocity * 2.0;
            TapAction::Continue
        }
    }

    struct AlwaysRecompute;
    impl StageTap for AlwaysRecompute {
        fn after_control(&mut self, _command: &mut FlightCommand) -> TapAction {
            TapAction::Recompute
        }
    }

    #[test]
    fn merge_prefers_recompute() {
        assert_eq!(TapAction::Continue.merge(TapAction::Continue), TapAction::Continue);
        assert_eq!(TapAction::Continue.merge(TapAction::Recompute), TapAction::Recompute);
        assert_eq!(TapAction::Recompute.merge(TapAction::Continue), TapAction::Recompute);
    }

    #[test]
    fn chain_runs_both_in_order_and_merges() {
        let mut chain = ChainTap::new(Doubler, AlwaysRecompute);
        let mut command = FlightCommand::new(Vec3::new(1.0, 0.0, 0.0), 0.0);
        let action = chain.after_control(&mut command);
        assert_eq!(command.velocity.x, 2.0);
        assert_eq!(action, TapAction::Recompute);
    }

    #[test]
    fn noop_tap_does_nothing() {
        let mut tap = NoopTap;
        let mut command = FlightCommand::HOLD;
        assert_eq!(tap.after_control(&mut command), TapAction::Continue);
        assert_eq!(command, FlightCommand::HOLD);
    }
}
