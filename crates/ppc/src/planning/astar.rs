//! Grid-based A* motion planning.
//!
//! The paper evaluates three sampling-based planners (RRT, RRT-Connect,
//! RRT*).  A deterministic lattice A* makes a useful fourth point in the
//! planner-sensitivity studies: it has no internal randomness, so any spread
//! in its quality-of-flight metrics under fault injection is attributable to
//! the fault alone.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::BuildHasherDefault;

use mavfi_sim::geometry::Vec3;

use crate::kernel::KernelId;
use crate::perception::occupancy::VoxelHasher;
use crate::planning::space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerConfig};

/// Integer lattice coordinates of an A* node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Cell {
    x: i64,
    y: i64,
    z: i64,
}

/// Priority-queue entry ordered by ascending f-cost.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    f_cost: f64,
    cell: Cell,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest f-cost pops first.
        other.f_cost.partial_cmp(&self.f_cost).unwrap_or(Ordering::Equal).then_with(|| {
            (self.cell.x, self.cell.y, self.cell.z).cmp(&(other.cell.x, other.cell.y, other.cell.z))
        })
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic lattice A* planner.
///
/// The lattice spacing is the planner's `step_size`, search is bounded by
/// the configured sampling bounds, and expansion stops after
/// `max_iterations` node pops.
///
/// The open list, bookkeeping maps and the reconstruction cell buffer are
/// pooled on the planner and reused across replans, so repeated planning
/// does not re-grow them from empty; with
/// [`plan_into`](MotionPlanner::plan_into) a replan touches no allocator at
/// all once every buffer is at capacity.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::astar::AStarPlanner;
/// use mavfi_ppc::planning::{MotionPlanner, PlannerConfig};
/// use mavfi_ppc::perception::OccupancyGrid;
/// use mavfi_sim::geometry::{Aabb, Vec3};
///
/// let bounds = Aabb::new(Vec3::new(-5.0, -5.0, 0.0), Vec3::new(25.0, 25.0, 10.0));
/// let mut planner = AStarPlanner::new(PlannerConfig::for_bounds(bounds));
/// let grid = OccupancyGrid::new(0.5);
/// let path = planner
///     .plan(&grid, Vec3::new(0.0, 0.0, 2.0), Vec3::new(20.0, 20.0, 2.0))
///     .expect("free space is trivially plannable");
/// assert!(path.length() >= 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct AStarPlanner {
    config: PlannerConfig,
    // Search state pooled across `plan` calls.  The maps are lookup-only
    // (iteration order never observed), so they share the occupancy grid's
    // cheap deterministic hasher instead of SipHash — the keys have the
    // same three-i64 shape.
    open: BinaryHeap<QueueEntry>,
    g_cost: HashMap<Cell, f64, BuildHasherDefault<VoxelHasher>>,
    came_from: HashMap<Cell, Cell, BuildHasherDefault<VoxelHasher>>,
    cells: Vec<Cell>,
}

impl AStarPlanner {
    /// Creates an A* planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Self {
        Self {
            config,
            open: BinaryHeap::new(),
            g_cost: HashMap::default(),
            came_from: HashMap::default(),
            cells: Vec::new(),
        }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    fn spacing(&self) -> f64 {
        self.config.step_size.max(1e-3)
    }

    fn cell_of(&self, point: Vec3, origin: Vec3) -> Cell {
        let spacing = self.spacing();
        Cell {
            x: ((point.x - origin.x) / spacing).round() as i64,
            y: ((point.y - origin.y) / spacing).round() as i64,
            z: ((point.z - origin.z) / spacing).round() as i64,
        }
    }

    fn point_of(&self, cell: Cell, origin: Vec3) -> Vec3 {
        let spacing = self.spacing();
        Vec3::new(
            origin.x + cell.x as f64 * spacing,
            origin.y + cell.y as f64 * spacing,
            origin.z + cell.z as f64 * spacing,
        )
    }

    fn in_bounds(&self, point: Vec3) -> bool {
        let bounds = self.config.bounds;
        point.x >= bounds.min.x
            && point.x <= bounds.max.x
            && point.y >= bounds.min.y
            && point.y <= bounds.max.y
            && point.z >= bounds.min.z
            && point.z <= bounds.max.z
    }

    /// The 26-connected neighbourhood offsets, in the same (dx, dy, dz)
    /// lexicographic order the previous generated list used — expansion
    /// order is part of the deterministic search result.
    const NEIGHBOUR_OFFSETS: [(i64, i64, i64); 26] = [
        (-1, -1, -1),
        (-1, -1, 0),
        (-1, -1, 1),
        (-1, 0, -1),
        (-1, 0, 0),
        (-1, 0, 1),
        (-1, 1, -1),
        (-1, 1, 0),
        (-1, 1, 1),
        (0, -1, -1),
        (0, -1, 0),
        (0, -1, 1),
        (0, 0, -1),
        (0, 0, 1),
        (0, 1, -1),
        (0, 1, 0),
        (0, 1, 1),
        (1, -1, -1),
        (1, -1, 0),
        (1, -1, 1),
        (1, 0, -1),
        (1, 0, 0),
        (1, 0, 1),
        (1, 1, -1),
        (1, 1, 0),
        (1, 1, 1),
    ];

    fn reconstruct_into(
        &mut self,
        mut cell: Cell,
        origin: Vec3,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) {
        self.cells.clear();
        self.cells.push(cell);
        while let Some(&parent) = self.came_from.get(&cell) {
            cell = parent;
            self.cells.push(cell);
        }
        self.cells.reverse();
        out.waypoints.clear();
        out.waypoints.extend(self.cells.iter().map(|&c| self.point_of(c, origin)));
        if let Some(first) = out.waypoints.first_mut() {
            *first = start;
        }
        out.waypoints.push(goal);
    }
}

impl MotionPlanner for AStarPlanner {
    fn kernel(&self) -> KernelId {
        KernelId::AStar
    }

    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath> {
        let mut out = PlannedPath::default();
        self.plan_into(model, start, goal, &mut out).then_some(out)
    }

    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        out.waypoints.clear();
        let margin = self.config.margin;
        if model.segment_free(start, goal, margin) {
            out.waypoints.push(start);
            out.waypoints.push(goal);
            return true;
        }

        let origin = start;
        let start_cell = self.cell_of(start, origin);
        let goal_tolerance = self.config.goal_tolerance.max(self.spacing());

        self.open.clear();
        self.g_cost.clear();
        self.came_from.clear();

        self.g_cost.insert(start_cell, 0.0);
        self.open.push(QueueEntry { f_cost: start.distance(goal), cell: start_cell });

        let mut expansions = 0;
        while let Some(QueueEntry { cell, .. }) = self.open.pop() {
            expansions += 1;
            if expansions > self.config.max_iterations {
                return false;
            }
            let point = self.point_of(cell, origin);
            if point.distance(goal) <= goal_tolerance && model.segment_free(point, goal, margin) {
                self.reconstruct_into(cell, origin, start, goal, out);
                return true;
            }

            let current_g = self.g_cost[&cell];
            for &(dx, dy, dz) in &Self::NEIGHBOUR_OFFSETS {
                let neighbour = Cell { x: cell.x + dx, y: cell.y + dy, z: cell.z + dz };
                let neighbour_point = self.point_of(neighbour, origin);
                if !self.in_bounds(neighbour_point) {
                    continue;
                }
                if !model.segment_free(point, neighbour_point, margin) {
                    continue;
                }
                let tentative_g = current_g + point.distance(neighbour_point);
                if tentative_g < *self.g_cost.get(&neighbour).unwrap_or(&f64::INFINITY) {
                    self.g_cost.insert(neighbour, tentative_g);
                    self.came_from.insert(neighbour, cell);
                    self.open.push(QueueEntry {
                        f_cost: tentative_g + neighbour_point.distance(goal),
                        cell: neighbour,
                    });
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perception::occupancy::OccupancyGrid;
    use mavfi_sim::env::EnvironmentKind;
    use mavfi_sim::geometry::Aabb;

    fn open_bounds() -> Aabb {
        Aabb::new(Vec3::new(-10.0, -10.0, 0.0), Vec3::new(60.0, 60.0, 12.0))
    }

    #[test]
    fn trivial_straight_line_when_free() {
        let mut planner = AStarPlanner::new(PlannerConfig::for_bounds(open_bounds()));
        let grid = OccupancyGrid::new(0.5);
        let path =
            planner.plan(&grid, Vec3::new(0.0, 0.0, 2.0), Vec3::new(30.0, 0.0, 2.0)).unwrap();
        assert_eq!(path.len(), 2);
        assert!((path.length() - 30.0).abs() < 1e-9);
        assert_eq!(planner.kernel(), KernelId::AStar);
    }

    #[test]
    fn routes_around_a_wall() {
        // A wall of occupied voxels across the straight-line path.
        let mut grid = OccupancyGrid::new(0.5);
        for y in -20..=20 {
            for z in 0..=16 {
                grid.insert_point(Vec3::new(10.0, y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        let mut planner = AStarPlanner::new(PlannerConfig::for_bounds(open_bounds()));
        let start = Vec3::new(0.0, 0.0, 2.0);
        let goal = Vec3::new(20.0, 0.0, 2.0);
        let path = planner.plan(&grid, start, goal).expect("a detour exists");
        assert!(path.length() > start.distance(goal));
        assert!(path.is_collision_free(&grid, 0.4));
        assert_eq!(path.waypoints[0], start);
        assert_eq!(*path.waypoints.last().unwrap(), goal);
    }

    #[test]
    fn plans_in_a_generated_environment_against_ground_truth() {
        let env = EnvironmentKind::Sparse.build(7);
        let config = PlannerConfig::for_bounds(env.bounds());
        let mut planner = AStarPlanner::new(config);
        let path = planner.plan(&env, env.start(), env.goal());
        let path = path.expect("sparse environments are plannable");
        assert!(path.is_collision_free(&env, config.margin * 0.9));
    }

    #[test]
    fn unreachable_goal_returns_none() {
        // Completely box in the start position.
        let mut grid = OccupancyGrid::new(0.5);
        for dx in -8i64..=8 {
            for dy in -8i64..=8 {
                for dz in -4i64..=8 {
                    let p = Vec3::new(dx as f64 * 0.5, dy as f64 * 0.5, 2.0 + dz as f64 * 0.5);
                    if dx.abs().max(dy.abs()) >= 6 || dz <= -3 || dz >= 7 {
                        grid.insert_point(p);
                    }
                }
            }
        }
        let config =
            PlannerConfig { max_iterations: 2000, ..PlannerConfig::for_bounds(open_bounds()) };
        let mut planner = AStarPlanner::new(config);
        let path = planner.plan(&grid, Vec3::new(0.0, 0.0, 2.0), Vec3::new(40.0, 40.0, 2.0));
        assert!(path.is_none());
    }

    #[test]
    fn planning_is_deterministic() {
        let env = EnvironmentKind::Dense.build(3);
        let config = PlannerConfig::for_bounds(env.bounds());
        let plan = |mut planner: AStarPlanner| planner.plan(&env, env.start(), env.goal());
        let a = plan(AStarPlanner::new(config));
        let b = plan(AStarPlanner::new(config));
        assert_eq!(a, b);
    }

    #[test]
    fn queue_entry_orders_by_ascending_cost() {
        let a = QueueEntry { f_cost: 1.0, cell: Cell { x: 0, y: 0, z: 0 } };
        let b = QueueEntry { f_cost: 2.0, cell: Cell { x: 1, y: 0, z: 0 } };
        let mut heap = BinaryHeap::new();
        heap.push(b);
        heap.push(a);
        assert_eq!(heap.pop().unwrap().f_cost, 1.0);
    }
}
