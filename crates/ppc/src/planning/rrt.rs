//! Baseline rapidly-exploring random tree (RRT) planner.

use mavfi_sim::geometry::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernel::KernelId;
use crate::planning::nn_index::NnIndex;
use crate::planning::space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerConfig};

#[derive(Debug, Clone, Copy)]
pub(crate) struct TreeNode {
    pub(crate) position: Vec3,
    pub(crate) parent: Option<usize>,
}

/// A tree node addressable by the shared path-tracing helpers: every
/// RRT-family node type is a position plus an optional parent index
/// (RRT* adds a cost, which tracing does not need).
pub(crate) trait ParentLinked {
    /// The node's position.
    fn position(&self) -> Vec3;
    /// Index of the parent node; `None` for the root.
    fn parent(&self) -> Option<usize>;
}

impl ParentLinked for TreeNode {
    fn position(&self) -> Vec3 {
        self.position
    }

    fn parent(&self) -> Option<usize> {
        self.parent
    }
}

/// Samples a point in the configuration-space bounds, with goal biasing.
pub(crate) fn sample_point(rng: &mut StdRng, config: &PlannerConfig, goal: Vec3) -> Vec3 {
    if rng.gen_bool(config.goal_bias.clamp(0.0, 1.0)) {
        return goal;
    }
    let bounds = config.bounds;
    Vec3::new(
        rng.gen_range(bounds.min.x..=bounds.max.x),
        rng.gen_range(bounds.min.y..=bounds.max.y),
        rng.gen_range(bounds.min.z..=bounds.max.z),
    )
}

/// Index of the tree node nearest to `point`.
pub(crate) fn nearest(nodes: &[TreeNode], point: Vec3) -> usize {
    nodes
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.position
                .distance(point)
                .partial_cmp(&b.position.distance(point))
                .expect("distances are finite")
        })
        .map(|(index, _)| index)
        .expect("tree is never empty")
}

/// Moves from `from` towards `to` by at most `step`.
pub(crate) fn steer(from: Vec3, to: Vec3, step: f64) -> Vec3 {
    let delta = to - from;
    let distance = delta.norm();
    if distance <= step || distance <= f64::EPSILON {
        to
    } else {
        from + delta * (step / distance)
    }
}

/// Appends the `index`-to-root path to `out`, leaf first (the raw parent
/// walk; RRT-Connect wants its goal-tree half exactly in this order).
pub(crate) fn trace_leafward_into<N: ParentLinked>(
    nodes: &[N],
    mut index: usize,
    out: &mut Vec<Vec3>,
) {
    out.push(nodes[index].position());
    while let Some(parent) = nodes[index].parent() {
        out.push(nodes[parent].position());
        index = parent;
    }
}

/// Appends the root-to-`index` path to `out` (the in-place counterpart of
/// the old allocating `trace_path`): positions are pushed leaf-to-root and
/// the appended tail is then reversed, so the result is identical while the
/// caller's buffer is reused.
pub(crate) fn trace_path_into<N: ParentLinked>(nodes: &[N], index: usize, out: &mut Vec<Vec3>) {
    let base = out.len();
    trace_leafward_into(nodes, index, out);
    out[base..].reverse();
}

/// The baseline RRT planner.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::{MotionPlanner, PlannerConfig, Rrt};
/// use mavfi_sim::env::EnvironmentKind;
///
/// let env = EnvironmentKind::Sparse.build(3);
/// let mut planner = Rrt::new(PlannerConfig::for_bounds(env.bounds()).with_seed(1));
/// let path = planner.plan(&env, env.start(), env.goal()).expect("sparse world is solvable");
/// assert!(path.len() >= 2);
/// ```
#[derive(Debug)]
pub struct Rrt {
    config: PlannerConfig,
    rng: StdRng,
    // Tree storage pooled across `plan` calls (replans reuse the capacity).
    nodes: Vec<TreeNode>,
    // Pooled spatial index over the tree (bit-identical to the linear
    // `nearest` scan; `use_index` is the verification knob).
    index: NnIndex,
    use_index: bool,
}

impl Rrt {
    /// Creates an RRT planner.
    pub fn new(config: PlannerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self { config, rng, nodes: Vec::new(), index: NnIndex::new(), use_index: true }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }
}

impl MotionPlanner for Rrt {
    fn kernel(&self) -> KernelId {
        KernelId::Rrt
    }

    fn set_spatial_index_enabled(&mut self, enabled: bool) {
        self.use_index = enabled;
    }

    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath> {
        let mut out = PlannedPath::default();
        self.plan_into(model, start, goal, &mut out).then_some(out)
    }

    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        out.waypoints.clear();
        if !model.point_free(goal, self.config.margin) {
            return false;
        }
        // Direct connection shortcut.
        if model.segment_free(start, goal, self.config.margin) {
            out.waypoints.push(start);
            out.waypoints.push(goal);
            return true;
        }

        self.nodes.clear();
        self.nodes.push(TreeNode { position: start, parent: None });
        if self.use_index {
            self.index.reset(self.config.step_size);
            self.index.insert(start);
        }
        for _ in 0..self.config.max_iterations {
            let sample = sample_point(&mut self.rng, &self.config, goal);
            let nearest_index = if self.use_index {
                self.index.nearest(sample)
            } else {
                nearest(&self.nodes, sample)
            };
            let new_position =
                steer(self.nodes[nearest_index].position, sample, self.config.step_size);
            if !model.point_free(new_position, self.config.margin)
                || !model.segment_free(
                    self.nodes[nearest_index].position,
                    new_position,
                    self.config.margin,
                )
            {
                continue;
            }
            self.nodes.push(TreeNode { position: new_position, parent: Some(nearest_index) });
            if self.use_index {
                self.index.insert(new_position);
            }
            let new_index = self.nodes.len() - 1;

            if new_position.distance(goal) <= self.config.goal_tolerance
                && model.segment_free(new_position, goal, self.config.margin)
            {
                trace_path_into(&self.nodes, new_index, &mut out.waypoints);
                out.waypoints.push(goal);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn steer_respects_step_size() {
        let stepped = steer(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 2.0);
        assert_eq!(stepped, Vec3::new(2.0, 0.0, 0.0));
        let reached = steer(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 2.0);
        assert_eq!(reached, Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn plans_through_sparse_environment() {
        let env = EnvironmentKind::Sparse.build(11);
        let mut planner = Rrt::new(PlannerConfig::for_bounds(env.bounds()).with_seed(4));
        let path = planner.plan(&env, env.start(), env.goal()).expect("path exists");
        assert_eq!(path.waypoints[0], env.start());
        assert_eq!(*path.waypoints.last().unwrap(), env.goal());
        assert!(path.is_collision_free(&env, planner.config().margin * 0.9));
    }

    #[test]
    fn direct_shortcut_when_line_of_sight_exists() {
        let env = EnvironmentKind::Farm.build(0);
        let mut planner = Rrt::new(PlannerConfig::for_bounds(env.bounds()).with_seed(0));
        // Farm hedges are low; fly above them by planning at altitude 2.5 m,
        // but the start-goal diagonal crosses hedges laterally, so just check
        // that a short unobstructed segment takes the shortcut.
        let start = env.start();
        let nearby = start + Vec3::new(3.0, 0.0, 0.0);
        let path = planner.plan(&env, start, nearby).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn planning_is_deterministic_for_a_seed() {
        let env = EnvironmentKind::Sparse.build(7);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(21);
        let a = Rrt::new(config).plan(&env, env.start(), env.goal());
        let b = Rrt::new(config).plan(&env, env.start(), env.goal());
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_problem_returns_none() {
        let env = EnvironmentKind::Sparse.build(1);
        let mut config = PlannerConfig::for_bounds(env.bounds()).with_seed(1);
        config.max_iterations = 5;
        // Ask for a goal outside the bounds with a tiny budget: unreachable.
        let outside = env.bounds().max + Vec3::splat(100.0);
        let mut planner = Rrt::new(config);
        assert!(planner.plan(&env, env.start(), outside).is_none());
    }
}
