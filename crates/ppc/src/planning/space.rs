//! Planning-space abstractions shared by the sampling-based motion
//! planners: the obstacle model they query, their configuration and the
//! geometric path they produce.

use mavfi_sim::env::Environment;
use mavfi_sim::geometry::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

use crate::kernel::KernelId;
use crate::perception::occupancy::OccupancyGrid;

/// Anything the planners can ask "is this point / segment free?".
///
/// During missions the planners query the incrementally built
/// [`OccupancyGrid`]; tests and oracles may plan directly against the ground
/// truth [`Environment`].
pub trait ObstacleModel {
    /// Returns `true` if `point`, inflated by `margin`, is collision free.
    fn point_free(&self, point: Vec3, margin: f64) -> bool;

    /// Returns `true` if the straight segment between `a` and `b`, inflated
    /// by `margin`, is collision free.
    fn segment_free(&self, a: Vec3, b: Vec3, margin: f64) -> bool;
}

impl ObstacleModel for OccupancyGrid {
    fn point_free(&self, point: Vec3, margin: f64) -> bool {
        !self.is_occupied_near(point, margin)
    }

    fn segment_free(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        OccupancyGrid::segment_free(self, a, b, margin)
    }
}

impl ObstacleModel for Environment {
    fn point_free(&self, point: Vec3, margin: f64) -> bool {
        self.is_free(point, margin)
    }

    fn segment_free(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        self.segment_clear(a, b, margin)
    }
}

/// Configuration shared by the RRT-family planners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Sampling bounds.
    pub bounds: Aabb,
    /// Maximum number of sampling iterations before giving up.
    pub max_iterations: usize,
    /// Extension step size (m).
    pub step_size: f64,
    /// Probability of sampling the goal instead of a random point.
    pub goal_bias: f64,
    /// Distance at which the goal counts as reached (m).
    pub goal_tolerance: f64,
    /// Obstacle inflation margin used for collision queries (m).
    pub margin: f64,
    /// Neighbourhood radius used by RRT* rewiring (m).
    pub rewire_radius: f64,
    /// RNG seed; planning is fully deterministic given the seed.
    pub seed: u64,
}

impl PlannerConfig {
    /// A reasonable configuration for the generated environments.
    pub fn for_bounds(bounds: Aabb) -> Self {
        Self {
            bounds,
            max_iterations: 4000,
            step_size: 2.5,
            goal_bias: 0.15,
            goal_tolerance: 1.5,
            margin: 0.7,
            rewire_radius: 5.0,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A geometric path produced by a motion planner (before smoothing and
/// trajectory generation).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlannedPath {
    /// Way-points from start to goal inclusive.
    pub waypoints: Vec<Vec3>,
}

impl PlannedPath {
    /// Creates a path from way-points.
    pub fn new(waypoints: Vec<Vec3>) -> Self {
        Self { waypoints }
    }

    /// Number of way-points.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Returns `true` when the path has no way-points.
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// Total Euclidean length (m).
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|pair| pair[0].distance(pair[1])).sum()
    }

    /// Returns `true` if every consecutive segment is free in `model`.
    pub fn is_collision_free(&self, model: &dyn ObstacleModel, margin: f64) -> bool {
        self.waypoints.windows(2).all(|pair| model.segment_free(pair[0], pair[1], margin))
    }
}

/// Common interface of the three sampling-based planners.
pub trait MotionPlanner {
    /// The kernel identity of this planner (for reports and timing).
    fn kernel(&self) -> KernelId;

    /// Attempts to plan a collision-free path from `start` to `goal`.
    /// Returns `None` when the iteration budget is exhausted without
    /// reaching the goal.
    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath>;

    /// [`MotionPlanner::plan`] into a caller-owned path, reusing its
    /// way-point storage (allocation-free once at capacity).
    ///
    /// Returns `true` when a path was found, in which case `out` holds the
    /// way-points from `start` to `goal` inclusive; on `false` `out` is left
    /// empty.  Either way any previous content of `out` is discarded
    /// (clear-then-fill, like every `_into` API — see
    /// `docs/PERFORMANCE.md`).
    ///
    /// For a given planner state the result is bit-identical to
    /// [`MotionPlanner::plan`]: the four in-crate planners implement the
    /// search natively in terms of `plan_into` and derive `plan` from it;
    /// the default implementation below covers external implementors that
    /// only provide `plan`.
    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        match self.plan(model, start, goal) {
            Some(path) => {
                *out = path;
                true
            }
            None => {
                out.waypoints.clear();
                false
            }
        }
    }

    /// Enables or disables the planner's pooled spatial index
    /// ([`NnIndex`](crate::planning::NnIndex)) for nearest-neighbour and
    /// rewiring-radius queries.
    ///
    /// The index is on by default and **inert**: indexed queries are
    /// bit-identical to the O(n) linear scans they replace (same distances,
    /// same lowest-index tie-breaks), so toggling it never changes a planned
    /// path — only how fast it is found.  Disabling it is the verification
    /// knob used by the equivalence tests and the `replan_micro` bench's
    /// indexed-vs-linear records.  Takes effect at the next `plan` /
    /// `plan_into` call.  Planners without such an index (A*) ignore it.
    fn set_spatial_index_enabled(&mut self, _enabled: bool) {}
}

/// The planner algorithms evaluated by the paper, plus the deterministic A*
/// baseline added by this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PlannerAlgorithm {
    /// Baseline RRT.
    Rrt,
    /// Bidirectional RRT-Connect.
    RrtConnect,
    /// Asymptotically optimal RRT*.
    RrtStar,
    /// Grid-based A* (deterministic baseline, not part of the paper's
    /// evaluation set).
    AStar,
}

impl PlannerAlgorithm {
    /// The three planner algorithms the paper evaluates (Fig. 3).
    pub const ALL: [Self; 3] = [Self::Rrt, Self::RrtConnect, Self::RrtStar];

    /// Every planner available in this crate, including the A* extension.
    pub const EXTENDED: [Self; 4] = [Self::Rrt, Self::RrtConnect, Self::RrtStar, Self::AStar];

    /// The corresponding kernel identity.
    pub fn kernel(self) -> KernelId {
        match self {
            Self::Rrt => KernelId::Rrt,
            Self::RrtConnect => KernelId::RrtConnect,
            Self::RrtStar => KernelId::RrtStar,
            Self::AStar => KernelId::AStar,
        }
    }

    /// Instantiates the planner.
    pub fn instantiate(self, config: PlannerConfig) -> Box<dyn MotionPlanner + Send> {
        match self {
            Self::Rrt => Box::new(crate::planning::rrt::Rrt::new(config)),
            Self::RrtConnect => Box::new(crate::planning::rrt_connect::RrtConnect::new(config)),
            Self::RrtStar => Box::new(crate::planning::rrt_star::RrtStar::new(config)),
            Self::AStar => Box::new(crate::planning::astar::AStarPlanner::new(config)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn environment_and_grid_agree_on_empty_space() {
        let env = EnvironmentKind::Farm.build(1);
        let grid = OccupancyGrid::new(0.5);
        let a = Vec3::new(0.0, 0.0, 2.0);
        let b = Vec3::new(5.0, 5.0, 2.0);
        assert!(ObstacleModel::point_free(&grid, a, 0.5));
        assert!(ObstacleModel::segment_free(&grid, a, b, 0.5));
        assert!(env.is_free(a, 0.5) == ObstacleModel::point_free(&env, a, 0.5));
    }

    #[test]
    fn planned_path_length_and_freedom() {
        let path = PlannedPath::new(vec![Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0)]);
        assert_eq!(path.len(), 2);
        assert!((path.length() - 5.0).abs() < 1e-12);
        let grid = OccupancyGrid::new(0.5);
        assert!(path.is_collision_free(&grid, 0.5));
    }

    #[test]
    fn planner_algorithm_kernels_are_distinct() {
        let kernels: std::collections::HashSet<_> =
            PlannerAlgorithm::ALL.iter().map(|p| p.kernel()).collect();
        assert_eq!(kernels.len(), 3);
    }

    #[test]
    fn default_plan_into_delegates_to_plan() {
        /// A planner that only implements `plan`, exercising the provided
        /// `plan_into`.
        struct Straight;
        impl MotionPlanner for Straight {
            fn kernel(&self) -> KernelId {
                KernelId::Rrt
            }
            fn plan(
                &mut self,
                model: &dyn ObstacleModel,
                start: Vec3,
                goal: Vec3,
            ) -> Option<PlannedPath> {
                model.segment_free(start, goal, 0.0).then(|| PlannedPath::new(vec![start, goal]))
            }
        }

        let grid = OccupancyGrid::new(0.5);
        let start = Vec3::ZERO;
        let goal = Vec3::new(5.0, 0.0, 0.0);
        // Pre-populate `out` to check the clear-then-fill contract.
        let mut out = PlannedPath::new(vec![Vec3::splat(9.0); 7]);
        assert!(Straight.plan_into(&grid, start, goal, &mut out));
        assert_eq!(Some(out), Straight.plan(&grid, start, goal));

        let mut blocked = OccupancyGrid::new(0.5);
        blocked.insert_point(Vec3::new(2.5, 0.0, 0.0));
        let mut out = PlannedPath::new(vec![Vec3::splat(9.0); 7]);
        assert!(!Straight.plan_into(&blocked, start, goal, &mut out));
        assert!(out.is_empty(), "failed plan_into must leave `out` empty");
    }

    #[test]
    fn config_builder_sets_seed() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let config = PlannerConfig::for_bounds(bounds).with_seed(99);
        assert_eq!(config.seed, 99);
        assert_eq!(config.bounds, bounds);
    }
}
