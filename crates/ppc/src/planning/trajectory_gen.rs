//! Conversion of geometric paths into time-parameterised trajectories
//! ("multidoftraj" messages in the paper's ROS graph).

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::planning::space::PlannedPath;
use crate::states::{Trajectory, Waypoint};

/// Generates velocity- and yaw-annotated way-points from a geometric path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryGenerator {
    /// Cruise speed assigned to intermediate way-points (m/s).
    pub cruise_speed: f64,
    /// Spacing between resampled way-points (m).
    pub waypoint_spacing: f64,
}

impl Default for TrajectoryGenerator {
    fn default() -> Self {
        Self { cruise_speed: 4.0, waypoint_spacing: 2.0 }
    }
}

impl TrajectoryGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive and finite.
    pub fn new(cruise_speed: f64, waypoint_spacing: f64) -> Self {
        assert!(cruise_speed > 0.0 && cruise_speed.is_finite(), "cruise speed must be positive");
        assert!(
            waypoint_spacing > 0.0 && waypoint_spacing.is_finite(),
            "way-point spacing must be positive"
        );
        Self { cruise_speed, waypoint_spacing }
    }

    /// Converts a path into a trajectory.  Empty paths produce empty
    /// trajectories.
    pub fn run(&self, path: &PlannedPath) -> Trajectory {
        let mut trajectory = Trajectory::default();
        self.run_into(path, &mut Vec::new(), &mut trajectory);
        trajectory
    }

    /// [`TrajectoryGenerator::run`] into caller-provided buffers:
    /// `positions` is resampling scratch, `out` receives the trajectory.
    /// Both reuse their storage across calls (allocation-free once at
    /// capacity); the output is bit-identical to [`TrajectoryGenerator::run`].
    pub fn run_into(&self, path: &PlannedPath, positions: &mut Vec<Vec3>, out: &mut Trajectory) {
        out.waypoints.clear();
        if path.is_empty() {
            return;
        }
        // Resample the polyline at roughly uniform spacing.
        positions.clear();
        positions.push(path.waypoints[0]);
        for pair in path.waypoints.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let length = from.distance(to);
            let segments = (length / self.waypoint_spacing).ceil().max(1.0) as usize;
            for i in 1..=segments {
                positions.push(from.lerp(to, i as f64 / segments as f64));
            }
        }

        for (index, &position) in positions.iter().enumerate() {
            let direction = if index + 1 < positions.len() {
                positions[index + 1] - position
            } else if index > 0 {
                position - positions[index - 1]
            } else {
                Vec3::ZERO
            };
            let (velocity, yaw) = match direction.normalized() {
                Some(unit) => {
                    let speed = if index + 1 == positions.len() { 0.0 } else { self.cruise_speed };
                    (unit * speed, unit.heading())
                }
                None => (Vec3::ZERO, 0.0),
            };
            out.waypoints.push(Waypoint { position, yaw, velocity });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_gives_empty_trajectory() {
        let generator = TrajectoryGenerator::default();
        assert!(generator.run(&PlannedPath::default()).is_empty());
    }

    #[test]
    fn resampling_respects_spacing_and_endpoints() {
        let generator = TrajectoryGenerator::new(3.0, 2.0);
        let path = PlannedPath::new(vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
        let trajectory = generator.run(&path);
        assert_eq!(trajectory.waypoints.first().unwrap().position, Vec3::ZERO);
        assert_eq!(trajectory.waypoints.last().unwrap().position, Vec3::new(10.0, 0.0, 0.0));
        assert!(trajectory.len() >= 6);
        for pair in trajectory.waypoints.windows(2) {
            assert!(pair[0].position.distance(pair[1].position) <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn intermediate_waypoints_carry_cruise_speed_and_final_is_zero() {
        let generator = TrajectoryGenerator::new(4.0, 2.5);
        let path = PlannedPath::new(vec![Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0)]);
        let trajectory = generator.run(&path);
        let first = &trajectory.waypoints[0];
        assert!((first.velocity.norm() - 4.0).abs() < 1e-9);
        assert!((first.yaw - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert_eq!(trajectory.waypoints.last().unwrap().velocity, Vec3::ZERO);
    }

    #[test]
    fn path_length_is_preserved_by_resampling() {
        let generator = TrajectoryGenerator::default();
        let path =
            PlannedPath::new(vec![Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0), Vec3::new(5.0, 5.0, 0.0)]);
        let trajectory = generator.run(&path);
        assert!((trajectory.path_length() - path.length()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_spacing_panics() {
        let _ = TrajectoryGenerator::new(1.0, 0.0);
    }
}
