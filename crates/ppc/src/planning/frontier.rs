//! Frontier-based exploration (the "Frontier Exploration" kernel of the
//! paper's Fig. 1 pipeline overview).
//!
//! Package delivery flies to a known goal; exploration missions instead keep
//! choosing the nearest *frontier* — a cell the vehicle has observed to be
//! free that borders unobserved space — until the area of interest is
//! covered.  The [`ExplorationMap`] tracks what has been observed and the
//! [`FrontierPlanner`] turns it into successive exploration goals that the
//! normal motion-planning stack can fly to.

use std::collections::HashSet;

use mavfi_sim::geometry::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

use crate::perception::occupancy::OccupancyGrid;

/// Integer cell coordinates of the exploration map (a coarse 2-D lattice at
/// a fixed flight altitude).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExplorationCell {
    /// Cell index along X.
    pub x: i64,
    /// Cell index along Y.
    pub y: i64,
}

/// What the vehicle knows about one exploration cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellState {
    /// Never observed.
    Unknown,
    /// Observed and free.
    Free,
    /// Observed and occupied.
    Occupied,
}

/// Coverage map of an exploration mission over a bounded area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationMap {
    bounds: Aabb,
    cell_size: f64,
    free: HashSet<ExplorationCell>,
    occupied: HashSet<ExplorationCell>,
}

impl ExplorationMap {
    /// Creates a map over `bounds` with square cells of `cell_size` metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn new(bounds: Aabb, cell_size: f64) -> Self {
        assert!(cell_size > 0.0 && cell_size.is_finite(), "cell size must be positive");
        Self { bounds, cell_size, free: HashSet::new(), occupied: HashSet::new() }
    }

    /// The exploration bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Cell edge length in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The cell containing a world position.
    pub fn cell_of(&self, position: Vec3) -> ExplorationCell {
        ExplorationCell {
            x: ((position.x - self.bounds.min.x) / self.cell_size).floor() as i64,
            y: ((position.y - self.bounds.min.y) / self.cell_size).floor() as i64,
        }
    }

    /// World-space centre of a cell at the given flight altitude.
    pub fn cell_center(&self, cell: ExplorationCell, altitude: f64) -> Vec3 {
        Vec3::new(
            self.bounds.min.x + (cell.x as f64 + 0.5) * self.cell_size,
            self.bounds.min.y + (cell.y as f64 + 0.5) * self.cell_size,
            altitude,
        )
    }

    /// Returns `true` when the cell lies inside the exploration bounds.
    pub fn in_bounds(&self, cell: ExplorationCell) -> bool {
        let cells_x = ((self.bounds.max.x - self.bounds.min.x) / self.cell_size).ceil() as i64;
        let cells_y = ((self.bounds.max.y - self.bounds.min.y) / self.cell_size).ceil() as i64;
        (0..cells_x).contains(&cell.x) && (0..cells_y).contains(&cell.y)
    }

    /// The knowledge state of a cell.
    pub fn state(&self, cell: ExplorationCell) -> CellState {
        if self.occupied.contains(&cell) {
            CellState::Occupied
        } else if self.free.contains(&cell) {
            CellState::Free
        } else {
            CellState::Unknown
        }
    }

    /// Total number of cells inside the bounds.
    pub fn total_cells(&self) -> usize {
        let cells_x = ((self.bounds.max.x - self.bounds.min.x) / self.cell_size).ceil() as i64;
        let cells_y = ((self.bounds.max.y - self.bounds.min.y) / self.cell_size).ceil() as i64;
        (cells_x.max(0) * cells_y.max(0)) as usize
    }

    /// Fraction of cells observed (free or occupied).
    pub fn coverage(&self) -> f64 {
        let total = self.total_cells();
        if total == 0 {
            return 1.0;
        }
        (self.free.len() + self.occupied.len()) as f64 / total as f64
    }

    /// Marks every cell within `radius` metres of `position` as observed,
    /// classifying it as occupied when the occupancy grid has an obstacle in
    /// that cell near the flight altitude.
    pub fn observe(&mut self, position: Vec3, radius: f64, grid: &OccupancyGrid) {
        let reach = (radius / self.cell_size).ceil() as i64;
        let center = self.cell_of(position);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                let cell = ExplorationCell { x: center.x + dx, y: center.y + dy };
                if !self.in_bounds(cell) {
                    continue;
                }
                let world = self.cell_center(cell, position.z);
                if world.distance(Vec3::new(position.x, position.y, position.z)) > radius {
                    continue;
                }
                if grid.is_occupied_near(world, self.cell_size * 0.5) {
                    self.occupied.insert(cell);
                    self.free.remove(&cell);
                } else if !self.occupied.contains(&cell) {
                    self.free.insert(cell);
                }
            }
        }
    }

    /// Frontier cells: observed-free cells with at least one unknown
    /// 4-neighbour inside the bounds.
    pub fn frontiers(&self) -> Vec<ExplorationCell> {
        let mut frontiers: Vec<ExplorationCell> = self
            .free
            .iter()
            .copied()
            .filter(|cell| {
                [(1, 0), (-1, 0), (0, 1), (0, -1)].into_iter().any(|(dx, dy)| {
                    let neighbour = ExplorationCell { x: cell.x + dx, y: cell.y + dy };
                    self.in_bounds(neighbour) && self.state(neighbour) == CellState::Unknown
                })
            })
            .collect();
        frontiers.sort();
        frontiers
    }

    /// Returns `true` when no frontier remains (the reachable area has been
    /// fully observed).
    pub fn is_fully_explored(&self) -> bool {
        self.frontiers().is_empty() && !self.free.is_empty()
    }
}

/// Chooses successive exploration goals from an [`ExplorationMap`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPlanner {
    /// Flight altitude of the exploration goals (m).
    pub altitude: f64,
    /// Minimum distance between the vehicle and a chosen goal (m); closer
    /// frontiers are skipped to avoid oscillating around the current cell.
    pub min_goal_distance: f64,
}

impl Default for FrontierPlanner {
    fn default() -> Self {
        Self { altitude: 2.5, min_goal_distance: 3.0 }
    }
}

impl FrontierPlanner {
    /// Picks the nearest frontier (by straight-line distance from
    /// `position`) that is at least `min_goal_distance` away, returning its
    /// world-space centre.  Returns `None` when exploration is complete.
    pub fn next_goal(&self, map: &ExplorationMap, position: Vec3) -> Option<Vec3> {
        let candidates = map.frontiers();
        candidates
            .into_iter()
            .map(|cell| map.cell_center(cell, self.altitude))
            .filter(|goal| goal.distance(position) >= self.min_goal_distance)
            .min_by(|a, b| {
                a.distance(position)
                    .partial_cmp(&b.distance(position))
                    .expect("distances are finite")
            })
            .or_else(|| {
                // Fall back to any frontier when all of them are close.
                map.frontiers().first().map(|cell| map.cell_center(*cell, self.altitude))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Aabb {
        Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(40.0, 40.0, 8.0))
    }

    #[test]
    fn observation_marks_cells_and_coverage_grows() {
        let mut map = ExplorationMap::new(bounds(), 4.0);
        assert_eq!(map.coverage(), 0.0);
        let grid = OccupancyGrid::new(0.5);
        map.observe(Vec3::new(10.0, 10.0, 2.5), 8.0, &grid);
        assert!(map.coverage() > 0.0);
        assert_eq!(map.state(map.cell_of(Vec3::new(10.0, 10.0, 2.5))), CellState::Free);
    }

    #[test]
    fn obstacles_are_classified_as_occupied() {
        let mut map = ExplorationMap::new(bounds(), 4.0);
        let mut grid = OccupancyGrid::new(0.5);
        for z in 0..10 {
            grid.insert_point(Vec3::new(18.0, 18.0, z as f64 * 0.5));
        }
        map.observe(Vec3::new(18.0, 18.0, 2.5), 6.0, &grid);
        assert_eq!(map.state(map.cell_of(Vec3::new(18.0, 18.0, 2.5))), CellState::Occupied);
    }

    #[test]
    fn frontiers_border_unknown_space_and_shrink_with_coverage() {
        let mut map = ExplorationMap::new(bounds(), 4.0);
        let grid = OccupancyGrid::new(0.5);
        map.observe(Vec3::new(6.0, 6.0, 2.5), 10.0, &grid);
        let first_frontiers = map.frontiers();
        assert!(!first_frontiers.is_empty());
        for cell in &first_frontiers {
            assert_eq!(map.state(*cell), CellState::Free);
        }
        // Observe everything: no frontier remains.
        for x in 0..10 {
            for y in 0..10 {
                map.observe(Vec3::new(x as f64 * 4.0 + 2.0, y as f64 * 4.0 + 2.0, 2.5), 6.0, &grid);
            }
        }
        assert!(map.is_fully_explored());
        assert!((map.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planner_picks_the_nearest_sufficiently_far_frontier() {
        let mut map = ExplorationMap::new(bounds(), 4.0);
        let grid = OccupancyGrid::new(0.5);
        let position = Vec3::new(6.0, 6.0, 2.5);
        map.observe(position, 10.0, &grid);
        let planner = FrontierPlanner::default();
        let goal = planner.next_goal(&map, position).expect("frontiers exist");
        assert!(goal.distance(position) >= planner.min_goal_distance);
        assert!(map.in_bounds(map.cell_of(goal)));
        // The goal is a frontier cell centre.
        assert!(map.frontiers().contains(&map.cell_of(goal)));
    }

    #[test]
    fn exhausted_map_yields_no_goal() {
        let mut map = ExplorationMap::new(Aabb::new(Vec3::ZERO, Vec3::new(8.0, 8.0, 8.0)), 4.0);
        let grid = OccupancyGrid::new(0.5);
        for x in 0..2 {
            for y in 0..2 {
                map.observe(Vec3::new(x as f64 * 4.0 + 2.0, y as f64 * 4.0 + 2.0, 2.5), 6.0, &grid);
            }
        }
        assert!(map.is_fully_explored());
        assert_eq!(FrontierPlanner::default().next_goal(&map, Vec3::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = ExplorationMap::new(bounds(), 0.0);
    }
}
