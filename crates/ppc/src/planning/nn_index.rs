//! Pooled voxel-bucketed spatial index over RRT-family tree nodes.
//!
//! The three sampling-based planners ask two questions per iteration:
//! *which tree node is nearest to this sample?* (every planner) and *which
//! nodes lie within the rewiring radius of this new node?* (RRT*).  Both
//! used to be O(n) scans over the whole tree, which made RRT* quadratic in
//! its iteration budget — a major share (with collision checking) of the
//! ~856 ms it spent per replan on a mission-observed Dense grid
//! (`BENCH_5.json`; `BENCH_7.json` has the indexed-vs-linear numbers).
//!
//! [`NnIndex`] replaces the scans with a uniform voxel grid over node
//! positions, keyed by the same deterministic [`VoxelHasher`] convention as
//! the occupancy grid and sized so one cell edge is the planner's
//! `step_size` (new nodes land at most one step from an existing node, so
//! the nearest node is almost always within the first shell searched).  Its
//! contract is **bit-identical results** to the linear scans it replaces:
//!
//! * [`NnIndex::nearest`] returns the node index that minimises the exact
//!   same `Vec3::distance` the linear scan computes, breaking exact
//!   distance ties towards the **lowest node index** — precisely the
//!   "first minimum wins" semantics of `Iterator::min_by` over an
//!   index-ordered scan.  Cells are searched spiralling outward in
//!   Chebyshev shells and the search only stops once no unsearched shell
//!   can contain a strictly closer *or equal-distance lower-index* node.
//! * [`NnIndex::within_radius`] returns exactly the indices whose positions
//!   satisfy `position.distance(query) <= radius` (same inclusive
//!   comparison), sorted ascending — the order an index-ordered linear
//!   filter produces.
//!
//! Storage is pooled per the workspace scratch convention
//! (`docs/PERFORMANCE.md`): the planner owns one `NnIndex` for the lifetime
//! of the planner, [`NnIndex::reset`] clears it while keeping every
//! allocation, and inserts are incremental (no rebuilds, no rebalancing),
//! so a warm planner's replans touch the allocator only when a tree grows
//! past all previous high-water marks.  Buckets are intrusive singly-linked
//! lists (`head` per cell, `next` per node) rather than per-cell `Vec`s, so
//! clearing the index never drops bucket storage.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use mavfi_sim::geometry::Vec3;

use crate::perception::occupancy::{VoxelHasher, VoxelKey};

/// Sentinel for "no node" in the intrusive bucket lists.
const NONE: u32 = u32::MAX;

/// Trees smaller than this are scanned linearly inside [`NnIndex::nearest`]:
/// a linear scan is a branch-predictable ~1 ns/node sweep while a shell walk
/// costs a few microseconds of cell probing, so the walk only wins once the
/// tree outgrows the crossover (measured on the `replan_micro` Dense-grid
/// workload; planners that connect quickly, like RRT-Connect on open grids,
/// never leave the linear regime).  The result is bit-identical either way —
/// this is a latency knob, not a behaviour knob.
const LINEAR_NEAREST_CUTOFF: usize = 2048;

/// A pooled, incrementally built uniform-grid index over points, returning
/// nearest-neighbour and radius queries bit-identical to linear scans.
///
/// Node indices are assigned by insertion order (`0, 1, 2, …`), matching
/// the planners' tree `Vec` indices.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::NnIndex;
/// use mavfi_sim::geometry::Vec3;
///
/// let mut index = NnIndex::new();
/// index.reset(2.5);
/// index.insert(Vec3::ZERO);
/// index.insert(Vec3::new(10.0, 0.0, 0.0));
/// assert_eq!(index.nearest(Vec3::new(8.0, 0.0, 0.0)), 1);
/// let mut out = Vec::new();
/// index.within_radius(Vec3::ZERO, 1.0, &mut out);
/// assert_eq!(out, [0]);
/// ```
#[derive(Debug)]
pub struct NnIndex {
    /// Cell edge length (m); planners use their `step_size`.
    cell_size: f64,
    /// Cell → index of the most recently inserted node in that cell.
    heads: HashMap<VoxelKey, u32, BuildHasherDefault<VoxelHasher>>,
    /// Intrusive per-cell chain: `next[i]` is the node inserted into `i`'s
    /// cell just before `i` (or [`NONE`]).
    next: Vec<u32>,
    /// Node positions in insertion order (the planners' node indices).
    positions: Vec<Vec3>,
    /// Bounding box of occupied cells, for clamping shell walks.
    min_cell: VoxelKey,
    max_cell: VoxelKey,
}

impl Default for NnIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl NnIndex {
    /// Creates an empty index with a 1 m cell (call [`NnIndex::reset`] with
    /// the real cell size before inserting).
    pub fn new() -> Self {
        Self {
            cell_size: 1.0,
            heads: HashMap::default(),
            next: Vec::new(),
            positions: Vec::new(),
            min_cell: VoxelKey { x: i64::MAX, y: i64::MAX, z: i64::MAX },
            max_cell: VoxelKey { x: i64::MIN, y: i64::MIN, z: i64::MIN },
        }
    }

    /// Clears the index for a new tree, keeping every allocation, and sets
    /// the cell edge length.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn reset(&mut self, cell_size: f64) {
        assert!(cell_size > 0.0 && cell_size.is_finite(), "cell size must be positive");
        self.cell_size = cell_size;
        self.heads.clear();
        self.next.clear();
        self.positions.clear();
        self.min_cell = VoxelKey { x: i64::MAX, y: i64::MAX, z: i64::MAX };
        self.max_cell = VoxelKey { x: i64::MIN, y: i64::MIN, z: i64::MIN };
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when nothing has been inserted since the last reset.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The current cell edge length (m).
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn key_for(&self, point: Vec3) -> VoxelKey {
        VoxelKey {
            x: (point.x / self.cell_size).floor() as i64,
            y: (point.y / self.cell_size).floor() as i64,
            z: (point.z / self.cell_size).floor() as i64,
        }
    }

    /// Inserts a point and returns its index (insertion order, matching the
    /// caller's tree indices).
    pub fn insert(&mut self, position: Vec3) -> usize {
        debug_assert!(position.is_finite(), "tree nodes are always finite");
        let index = self.positions.len();
        assert!(index < NONE as usize, "index capacity exceeded");
        let key = self.key_for(position);
        let previous_head = self.heads.insert(key, index as u32).unwrap_or(NONE);
        self.next.push(previous_head);
        self.positions.push(position);
        self.min_cell.x = self.min_cell.x.min(key.x);
        self.min_cell.y = self.min_cell.y.min(key.y);
        self.min_cell.z = self.min_cell.z.min(key.z);
        self.max_cell.x = self.max_cell.x.max(key.x);
        self.max_cell.y = self.max_cell.y.max(key.y);
        self.max_cell.z = self.max_cell.z.max(key.z);
        index
    }

    /// Considers every node bucketed under `key` as a nearest candidate.
    fn scan_cell(&self, key: VoxelKey, query: Vec3, best_distance: &mut f64, best: &mut usize) {
        if key.x < self.min_cell.x
            || key.x > self.max_cell.x
            || key.y < self.min_cell.y
            || key.y > self.max_cell.y
            || key.z < self.min_cell.z
            || key.z > self.max_cell.z
        {
            return;
        }
        let Some(&head) = self.heads.get(&key) else { return };
        let mut node = head;
        while node != NONE {
            let candidate = node as usize;
            let distance = self.positions[candidate].distance(query);
            // Lowest-index tie-break: exactly `min_by`'s first-minimum-wins
            // over an index-ordered scan, independent of bucket chain order.
            if distance < *best_distance || (distance == *best_distance && candidate < *best) {
                *best_distance = distance;
                *best = candidate;
            }
            node = self.next[candidate];
        }
    }

    /// Visits every cell whose Chebyshev distance (in cells) from `center`
    /// is exactly `ring`.
    fn scan_ring(
        &self,
        center: VoxelKey,
        ring: i64,
        query: Vec3,
        best_distance: &mut f64,
        best: &mut usize,
    ) {
        if ring == 0 {
            self.scan_cell(center, query, best_distance, best);
            return;
        }
        // Two full z faces, then the x and y side bands between them; every
        // shell cell is visited exactly once, in a fixed deterministic order
        // (the order is irrelevant to the result — `scan_cell` compares
        // `(distance, index)` explicitly).
        for dz in [-ring, ring] {
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    let key = VoxelKey { x: center.x + dx, y: center.y + dy, z: center.z + dz };
                    self.scan_cell(key, query, best_distance, best);
                }
            }
        }
        for dx in [-ring, ring] {
            for dy in -ring..=ring {
                for dz in (-ring + 1)..=(ring - 1) {
                    let key = VoxelKey { x: center.x + dx, y: center.y + dy, z: center.z + dz };
                    self.scan_cell(key, query, best_distance, best);
                }
            }
        }
        for dy in [-ring, ring] {
            for dx in (-ring + 1)..=(ring - 1) {
                for dz in (-ring + 1)..=(ring - 1) {
                    let key = VoxelKey { x: center.x + dx, y: center.y + dy, z: center.z + dz };
                    self.scan_cell(key, query, best_distance, best);
                }
            }
        }
    }

    /// Index of the indexed point nearest to `query`; exact distance ties
    /// resolve to the lowest index (bit-identical to a linear
    /// `min_by`-over-distance scan in index order).
    ///
    /// # Panics
    ///
    /// Panics if the index is empty.
    pub fn nearest(&self, query: Vec3) -> usize {
        assert!(!self.positions.is_empty(), "nearest query on an empty index");
        let mut best_distance = f64::INFINITY;
        let mut best = usize::MAX;
        if self.positions.len() <= LINEAR_NEAREST_CUTOFF {
            for (candidate, position) in self.positions.iter().enumerate() {
                let distance = position.distance(query);
                if distance < best_distance {
                    best_distance = distance;
                    best = candidate;
                }
            }
            return best;
        }

        let center = self.key_for(query);
        // Furthest shell that can still contain an occupied cell.
        let max_ring = [
            (center.x - self.min_cell.x).max(self.max_cell.x - center.x),
            (center.y - self.min_cell.y).max(self.max_cell.y - center.y),
            (center.z - self.min_cell.z).max(self.max_cell.z - center.z),
        ]
        .into_iter()
        .max()
        .expect("three axes")
        .max(0);

        // Nearest shell that contains any occupied cell: rings below the
        // query cell's Chebyshev distance to the occupied bounding box are
        // entirely out of bounds, so the walk can start there instead of
        // enumerating O(ring²) empty cells per skipped ring (samples land
        // far outside the tree early in a plan).
        let start_ring = [
            (self.min_cell.x - center.x).max(center.x - self.max_cell.x),
            (self.min_cell.y - center.y).max(center.y - self.max_cell.y),
            (self.min_cell.z - center.z).max(center.z - self.max_cell.z),
        ]
        .into_iter()
        .max()
        .expect("three axes")
        .max(0);

        for ring in start_ring..=max_ring {
            // A point in a cell `ring` shells away is at least
            // `(ring - 1) * cell_size` from the query (which lies inside the
            // center cell).  Stop only when that lower bound *strictly*
            // exceeds the best distance: an equal-distance node in a farther
            // shell could still win the lowest-index tie-break.
            if best != usize::MAX && ((ring - 1) as f64) * self.cell_size > best_distance {
                break;
            }
            self.scan_ring(center, ring, query, &mut best_distance, &mut best);
        }
        debug_assert!(best != usize::MAX, "occupied shells exhausted without a candidate");
        best
    }

    /// Collects into `out` the indices of every point with
    /// `position.distance(query) <= radius` (inclusive, the linear filter's
    /// exact comparison), sorted ascending — the order an index-ordered
    /// linear filter produces.  `out` is cleared first (clear-then-fill).
    pub fn within_radius(&self, query: Vec3, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.positions.is_empty() {
            return;
        }
        let lo = self.key_for(query - Vec3::splat(radius));
        let hi = self.key_for(query + Vec3::splat(radius));
        let x_range = lo.x.max(self.min_cell.x)..=hi.x.min(self.max_cell.x);
        let y_range = lo.y.max(self.min_cell.y)..=hi.y.min(self.max_cell.y);
        let z_range = lo.z.max(self.min_cell.z)..=hi.z.min(self.max_cell.z);
        // Cells whose axis-aligned box lies strictly beyond `radius` from
        // the query cannot hold a point passing the inclusive distance test
        // below, so skipping them is result-preserving.  The bound gets a
        // relative slack so float rounding in the bound itself can never
        // out-prune the exact comparison (corner cells of the search box are
        // most of its volume at this cell-to-radius ratio).
        let prune_sq = (radius * radius) * (1.0 + 1e-9);
        let axis_gap_sq = |cell: i64, coordinate: f64| -> f64 {
            let low = cell as f64 * self.cell_size;
            let gap = (low - coordinate).max(coordinate - (low + self.cell_size)).max(0.0);
            gap * gap
        };
        for x in x_range {
            let x_gap_sq = axis_gap_sq(x, query.x);
            for y in y_range.clone() {
                let xy_gap_sq = x_gap_sq + axis_gap_sq(y, query.y);
                if xy_gap_sq > prune_sq {
                    continue;
                }
                for z in z_range.clone() {
                    if xy_gap_sq + axis_gap_sq(z, query.z) > prune_sq {
                        continue;
                    }
                    let Some(&head) = self.heads.get(&VoxelKey { x, y, z }) else { continue };
                    let mut node = head;
                    while node != NONE {
                        let candidate = node as usize;
                        if self.positions[candidate].distance(query) <= radius {
                            out.push(candidate);
                        }
                        node = self.next[candidate];
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear references the index must agree with bit-for-bit.
    fn linear_nearest(points: &[Vec3], query: Vec3) -> usize {
        points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance(query).partial_cmp(&b.distance(query)).expect("finite")
            })
            .map(|(index, _)| index)
            .expect("non-empty")
    }

    fn linear_within(points: &[Vec3], query: Vec3, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(query) <= radius)
            .map(|(index, _)| index)
            .collect()
    }

    /// A deterministic, clumpy point set (clumps force multi-node buckets).
    fn test_points() -> Vec<Vec3> {
        let mut points = Vec::new();
        for i in 0..120_i64 {
            let f = i as f64;
            points.push(Vec3::new(
                (f * 0.73).sin() * 20.0,
                (f * 1.31).cos() * 15.0,
                (f * 0.17).sin() * 6.0 + 3.0,
            ));
            // A duplicate every 10th point: exact-tie territory.
            if i % 10 == 0 {
                points.push(points[i as usize / 2]);
            }
        }
        points
    }

    #[test]
    fn nearest_matches_linear_scan_with_ties() {
        let points = test_points();
        let mut index = NnIndex::new();
        index.reset(2.5);
        for &point in &points {
            index.insert(point);
        }
        for i in 0..200_i64 {
            let f = i as f64;
            let query =
                Vec3::new((f * 0.91).cos() * 25.0, (f * 0.47).sin() * 18.0, (f * 0.29).cos() * 8.0);
            assert_eq!(index.nearest(query), linear_nearest(&points, query), "query {i}");
        }
        // Query exactly on a duplicated position: the tie must go to the
        // lower index.
        let duplicated = points[0];
        assert_eq!(index.nearest(duplicated), linear_nearest(&points, duplicated));
    }

    #[test]
    fn within_radius_matches_linear_filter_order_and_content() {
        let points = test_points();
        let mut index = NnIndex::new();
        index.reset(2.5);
        for &point in &points {
            index.insert(point);
        }
        let mut out = Vec::new();
        for i in 0..60_i64 {
            let f = i as f64;
            let query =
                Vec3::new((f * 0.37).sin() * 22.0, (f * 0.83).cos() * 14.0, (f * 0.53).sin() * 7.0);
            for radius in [0.0, 1.0, 5.0, 12.0] {
                index.within_radius(query, radius, &mut out);
                assert_eq!(out, linear_within(&points, query, radius), "query {i} r={radius}");
            }
        }
    }

    #[test]
    fn incremental_inserts_keep_agreeing() {
        let points = test_points();
        let mut index = NnIndex::new();
        index.reset(1.5);
        let mut inserted = Vec::new();
        let mut out = Vec::new();
        for &point in &points {
            index.insert(point);
            inserted.push(point);
            let query = point + Vec3::new(0.4, -0.7, 0.2);
            assert_eq!(index.nearest(query), linear_nearest(&inserted, query));
            index.within_radius(query, 4.0, &mut out);
            assert_eq!(out, linear_within(&inserted, query, 4.0));
        }
    }

    #[test]
    fn reset_reuses_storage_and_changes_cell_size() {
        let mut index = NnIndex::new();
        index.reset(2.0);
        index.insert(Vec3::ZERO);
        index.insert(Vec3::new(9.0, 0.0, 0.0));
        assert_eq!(index.len(), 2);
        index.reset(0.5);
        assert!(index.is_empty());
        assert_eq!(index.cell_size(), 0.5);
        assert_eq!(index.insert(Vec3::new(1.0, 1.0, 1.0)), 0);
        assert_eq!(index.nearest(Vec3::ZERO), 0);
    }

    #[test]
    #[should_panic(expected = "empty index")]
    fn nearest_on_empty_index_panics() {
        let index = NnIndex::new();
        let _ = index.nearest(Vec3::ZERO);
    }

    #[test]
    fn within_radius_on_empty_index_is_empty() {
        let index = NnIndex::new();
        let mut out = vec![7usize];
        index.within_radius(Vec3::ZERO, 10.0, &mut out);
        assert!(out.is_empty());
    }
}
