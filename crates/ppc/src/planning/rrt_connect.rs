//! Bidirectional RRT-Connect planner.

use mavfi_sim::geometry::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernel::KernelId;
use crate::planning::nn_index::NnIndex;
use crate::planning::rrt::{
    nearest, sample_point, steer, trace_leafward_into, trace_path_into, TreeNode,
};
use crate::planning::space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerConfig};

/// RRT-Connect: two trees grown from start and goal that greedily connect
/// towards each other.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::{MotionPlanner, PlannerConfig, RrtConnect};
/// use mavfi_sim::env::EnvironmentKind;
///
/// let env = EnvironmentKind::Sparse.build(5);
/// let mut planner = RrtConnect::new(PlannerConfig::for_bounds(env.bounds()).with_seed(2));
/// assert!(planner.plan(&env, env.start(), env.goal()).is_some());
/// ```
#[derive(Debug)]
pub struct RrtConnect {
    config: PlannerConfig,
    rng: StdRng,
    // Both trees pooled across `plan` calls (replans reuse the capacity),
    // each paired with its own pooled spatial index (bit-identical to the
    // linear `nearest` scan; `use_index` is the verification knob).
    start_tree: Vec<TreeNode>,
    goal_tree: Vec<TreeNode>,
    start_index: NnIndex,
    goal_index: NnIndex,
    use_index: bool,
}

enum ExtendResult {
    Trapped,
    Advanced(usize),
    Reached(usize),
}

impl RrtConnect {
    /// Creates an RRT-Connect planner.
    pub fn new(config: PlannerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            start_tree: Vec::new(),
            goal_tree: Vec::new(),
            start_index: NnIndex::new(),
            goal_index: NnIndex::new(),
            use_index: true,
        }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    fn extend(
        config: &PlannerConfig,
        model: &dyn ObstacleModel,
        nodes: &mut Vec<TreeNode>,
        index: Option<&mut NnIndex>,
        target: Vec3,
    ) -> ExtendResult {
        let nearest_index = match &index {
            Some(index) => index.nearest(target),
            None => nearest(nodes, target),
        };
        let new_position = steer(nodes[nearest_index].position, target, config.step_size);
        if !model.point_free(new_position, config.margin)
            || !model.segment_free(nodes[nearest_index].position, new_position, config.margin)
        {
            return ExtendResult::Trapped;
        }
        nodes.push(TreeNode { position: new_position, parent: Some(nearest_index) });
        if let Some(index) = index {
            index.insert(new_position);
        }
        let new_index = nodes.len() - 1;
        if new_position.distance(target) <= config.goal_tolerance {
            ExtendResult::Reached(new_index)
        } else {
            ExtendResult::Advanced(new_index)
        }
    }

    fn connect(
        config: &PlannerConfig,
        model: &dyn ObstacleModel,
        nodes: &mut Vec<TreeNode>,
        mut index: Option<&mut NnIndex>,
        target: Vec3,
    ) -> ExtendResult {
        // Keep growing towards the target until trapped or reached.
        loop {
            match Self::extend(config, model, nodes, index.as_deref_mut(), target) {
                ExtendResult::Advanced(_) => continue,
                other => return other,
            }
        }
    }
}

impl MotionPlanner for RrtConnect {
    fn kernel(&self) -> KernelId {
        KernelId::RrtConnect
    }

    fn set_spatial_index_enabled(&mut self, enabled: bool) {
        self.use_index = enabled;
    }

    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath> {
        let mut out = PlannedPath::default();
        self.plan_into(model, start, goal, &mut out).then_some(out)
    }

    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        out.waypoints.clear();
        if !model.point_free(goal, self.config.margin) {
            return false;
        }
        if model.segment_free(start, goal, self.config.margin) {
            out.waypoints.push(start);
            out.waypoints.push(goal);
            return true;
        }

        let config = self.config;
        self.start_tree.clear();
        self.start_tree.push(TreeNode { position: start, parent: None });
        self.goal_tree.clear();
        self.goal_tree.push(TreeNode { position: goal, parent: None });
        if self.use_index {
            self.start_index.reset(config.step_size);
            self.start_index.insert(start);
            self.goal_index.reset(config.step_size);
            self.goal_index.insert(goal);
        }
        let start_tree = &mut self.start_tree;
        let goal_tree = &mut self.goal_tree;
        let mut start_is_a = true;

        for _ in 0..config.max_iterations {
            let sample = sample_point(&mut self.rng, &config, goal);
            let (tree_a, index_a, tree_b, index_b) = if start_is_a {
                (&mut *start_tree, &mut self.start_index, &mut *goal_tree, &mut self.goal_index)
            } else {
                (&mut *goal_tree, &mut self.goal_index, &mut *start_tree, &mut self.start_index)
            };

            let extended = match Self::extend(
                &config,
                model,
                tree_a,
                self.use_index.then_some(index_a),
                sample,
            ) {
                ExtendResult::Trapped => {
                    start_is_a = !start_is_a;
                    continue;
                }
                ExtendResult::Advanced(index) | ExtendResult::Reached(index) => index,
            };
            let new_position = tree_a[extended].position;

            if let ExtendResult::Reached(meet_index) = Self::connect(
                &config,
                model,
                tree_b,
                self.use_index.then_some(index_b),
                new_position,
            ) {
                // Join: path through tree A to `extended`, then through tree
                // B from `meet_index` back to its root.
                let (start_nodes, start_index, goal_nodes, goal_index) = if start_is_a {
                    (&*start_tree, extended, &*goal_tree, meet_index)
                } else {
                    (&*start_tree, meet_index, &*goal_tree, extended)
                };
                trace_path_into(start_nodes, start_index, &mut out.waypoints);
                // The goal-tree half is wanted meeting-point-first, which is
                // exactly the leaf-to-root walk order, so it appends without
                // the reverse step the allocating path needed.
                trace_leafward_into(goal_nodes, goal_index, &mut out.waypoints);
                return true;
            }
            start_is_a = !start_is_a;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn plans_through_sparse_and_dense_environments() {
        for (kind, seed) in [(EnvironmentKind::Sparse, 3_u64), (EnvironmentKind::Dense, 8_u64)] {
            let env = kind.build(seed);
            let mut planner =
                RrtConnect::new(PlannerConfig::for_bounds(env.bounds()).with_seed(17));
            let path = planner
                .plan(&env, env.start(), env.goal())
                .unwrap_or_else(|| panic!("{} should be solvable", env.name()));
            assert_eq!(path.waypoints.first().copied(), Some(env.start()));
            assert_eq!(path.waypoints.last().copied(), Some(env.goal()));
            assert!(path.is_collision_free(&env, planner.config().margin * 0.9));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let env = EnvironmentKind::Sparse.build(9);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(5);
        let a = RrtConnect::new(config).plan(&env, env.start(), env.goal());
        let b = RrtConnect::new(config).plan(&env, env.start(), env.goal());
        assert_eq!(a, b);
    }

    #[test]
    fn path_endpoints_are_exact() {
        let env = EnvironmentKind::Factory.build(0);
        let mut planner = RrtConnect::new(PlannerConfig::for_bounds(env.bounds()).with_seed(31));
        if let Some(path) = planner.plan(&env, env.start(), env.goal()) {
            assert_eq!(path.waypoints[0], env.start());
            assert_eq!(*path.waypoints.last().unwrap(), env.goal());
        }
    }
}
