//! Mission planner: sequences high-level goals (the paper's package-delivery
//! mission).

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A high-level mission expressed as an ordered list of goal positions.
///
/// The paper's evaluation mission is package delivery: fly to a drop-off
/// point (optionally via a pick-up point) and report completion.  The
/// mission planner hands the *current* goal to the motion planner and
/// advances when the vehicle arrives.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::MissionPlan;
/// use mavfi_sim::geometry::Vec3;
///
/// let mut plan = MissionPlan::package_delivery(Vec3::ZERO, Vec3::new(10.0, 0.0, 2.0));
/// assert_eq!(plan.current_goal(), Some(Vec3::new(10.0, 0.0, 2.0)));
/// assert!(!plan.advance_if_reached(Vec3::ZERO, 1.0));
/// assert!(plan.advance_if_reached(Vec3::new(9.6, 0.0, 2.0), 1.0));
/// assert!(plan.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionPlan {
    goals: Vec<Vec3>,
    next_index: usize,
}

impl MissionPlan {
    /// Creates a mission from an ordered goal list.
    ///
    /// # Panics
    ///
    /// Panics if `goals` is empty.
    pub fn new(goals: Vec<Vec3>) -> Self {
        assert!(!goals.is_empty(), "a mission needs at least one goal");
        Self { goals, next_index: 0 }
    }

    /// Single-leg package delivery from `start` to `dropoff`.  The start
    /// position is kept only for reporting; the single goal is the drop-off
    /// point.
    pub fn package_delivery(start: Vec3, dropoff: Vec3) -> Self {
        let _ = start;
        Self::new(vec![dropoff])
    }

    /// Two-leg delivery visiting a pick-up point before the drop-off point.
    pub fn pickup_and_deliver(pickup: Vec3, dropoff: Vec3) -> Self {
        Self::new(vec![pickup, dropoff])
    }

    /// The goal the vehicle should currently fly to, or `None` when the
    /// mission is complete.
    pub fn current_goal(&self) -> Option<Vec3> {
        self.goals.get(self.next_index).copied()
    }

    /// Number of goals not yet reached.
    pub fn remaining(&self) -> usize {
        self.goals.len() - self.next_index
    }

    /// Returns `true` once every goal has been reached.
    pub fn is_complete(&self) -> bool {
        self.next_index >= self.goals.len()
    }

    /// Advances to the next goal if `position` is within `tolerance` of the
    /// current one.  Returns `true` when the whole mission is complete after
    /// this call.
    pub fn advance_if_reached(&mut self, position: Vec3, tolerance: f64) -> bool {
        if let Some(goal) = self.current_goal() {
            if position.distance(goal) <= tolerance {
                self.next_index += 1;
            }
        }
        self.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_leg_mission_advances_in_order() {
        let pickup = Vec3::new(5.0, 0.0, 2.0);
        let dropoff = Vec3::new(10.0, 10.0, 2.0);
        let mut plan = MissionPlan::pickup_and_deliver(pickup, dropoff);
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.current_goal(), Some(pickup));
        assert!(!plan.advance_if_reached(pickup, 0.5));
        assert_eq!(plan.current_goal(), Some(dropoff));
        assert!(plan.advance_if_reached(dropoff, 0.5));
        assert!(plan.is_complete());
        assert_eq!(plan.current_goal(), None);
    }

    #[test]
    fn far_position_does_not_advance() {
        let mut plan = MissionPlan::package_delivery(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0));
        assert!(!plan.advance_if_reached(Vec3::new(5.0, 0.0, 0.0), 1.0));
        assert_eq!(plan.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one goal")]
    fn empty_mission_panics() {
        let _ = MissionPlan::new(vec![]);
    }
}
