//! Path smoothening: greedy shortcutting of planner output.

use serde::{Deserialize, Serialize};

use crate::planning::space::{ObstacleModel, PlannedPath};

/// Greedy line-of-sight path smoother.
///
/// Starting from the first way-point it repeatedly jumps to the furthest
/// way-point reachable by a free straight segment, discarding the
/// intermediate ones.  This is the "Path Smoothen" kernel that follows the
/// motion planner in the paper's pipeline.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::perception::OccupancyGrid;
/// use mavfi_ppc::planning::{PathSmoother, PlannedPath};
/// use mavfi_sim::geometry::Vec3;
///
/// let smoother = PathSmoother::new(0.5);
/// let zigzag = PlannedPath::new(vec![
///     Vec3::ZERO,
///     Vec3::new(1.0, 1.0, 0.0),
///     Vec3::new(2.0, 0.0, 0.0),
/// ]);
/// let smooth = smoother.run(&OccupancyGrid::new(0.5), &zigzag);
/// assert_eq!(smooth.len(), 2); // obstacle-free: straight shortcut
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSmoother {
    margin: f64,
}

impl PathSmoother {
    /// Creates a smoother using the given obstacle inflation margin (m).
    pub fn new(margin: f64) -> Self {
        Self { margin }
    }

    /// The inflation margin (m).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Smooths a path.  Paths with fewer than three way-points are returned
    /// unchanged.
    pub fn run(&self, model: &dyn ObstacleModel, path: &PlannedPath) -> PlannedPath {
        let mut smoothed = PlannedPath::default();
        self.run_into(model, path, &mut smoothed);
        smoothed
    }

    /// [`PathSmoother::run`] into a caller-provided path, reusing its
    /// way-point storage (allocation-free once at capacity, bit-identical
    /// output).
    pub fn run_into(&self, model: &dyn ObstacleModel, path: &PlannedPath, out: &mut PlannedPath) {
        out.waypoints.clear();
        if path.len() < 3 {
            out.waypoints.extend_from_slice(&path.waypoints);
            return;
        }
        let points = &path.waypoints;
        out.waypoints.push(points[0]);
        let mut current = 0;
        while current + 1 < points.len() {
            // Furthest way-point visible from `current`.
            let mut next = current + 1;
            for candidate in ((current + 1)..points.len()).rev() {
                if model.segment_free(points[current], points[candidate], self.margin) {
                    next = candidate;
                    break;
                }
            }
            out.waypoints.push(points[next]);
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perception::occupancy::OccupancyGrid;
    use mavfi_sim::geometry::Vec3;

    #[test]
    fn smoothing_never_lengthens_the_path() {
        let grid = OccupancyGrid::new(0.5);
        let path = PlannedPath::new(vec![
            Vec3::ZERO,
            Vec3::new(1.0, 3.0, 0.0),
            Vec3::new(2.0, -3.0, 0.0),
            Vec3::new(5.0, 0.0, 0.0),
        ]);
        let smooth = PathSmoother::new(0.4).run(&grid, &path);
        assert!(smooth.length() <= path.length() + 1e-9);
        assert_eq!(smooth.waypoints[0], path.waypoints[0]);
        assert_eq!(smooth.waypoints.last(), path.waypoints.last());
    }

    #[test]
    fn smoothing_keeps_detour_around_obstacle() {
        let mut grid = OccupancyGrid::new(0.5);
        // Wall at x = 5 blocking the straight line.
        for y in -10..=10 {
            for z in 0..=8 {
                grid.insert_point(Vec3::new(5.0, y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        let detour = PlannedPath::new(vec![
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(5.0, 8.0, 1.0),
            Vec3::new(10.0, 0.0, 1.0),
        ]);
        let smooth = PathSmoother::new(0.4).run(&grid, &detour);
        // The direct shortcut is blocked, so the detour way-point survives.
        assert_eq!(smooth.len(), 3);
        assert!(smooth.is_collision_free(&grid, 0.3));
    }

    #[test]
    fn short_paths_are_untouched() {
        let grid = OccupancyGrid::new(0.5);
        let short = PlannedPath::new(vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        assert_eq!(PathSmoother::new(0.4).run(&grid, &short), short);
    }
}
