//! RRT* planner: RRT with optimal parent selection and rewiring.

use mavfi_sim::geometry::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernel::KernelId;
use crate::planning::nn_index::NnIndex;
use crate::planning::rrt::{sample_point, steer, trace_path_into, ParentLinked};
use crate::planning::space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerConfig};

/// Sentinel for "no node" in the pooled child-link arrays.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct StarNode {
    position: Vec3,
    parent: Option<usize>,
    cost: f64,
}

impl ParentLinked for StarNode {
    fn position(&self) -> Vec3 {
        self.position
    }

    fn parent(&self) -> Option<usize> {
        self.parent
    }
}

/// Pooled first-child/next-sibling adjacency mirroring the parent links of
/// the tree, so a rewire can reach a node's *descendants* without scanning
/// the whole node array.
///
/// Karaman & Frazzoli's rewiring step lowers a neighbour's cost-to-come;
/// the asymptotic-optimality argument needs that reduction to reach every
/// node routed *through* the neighbour, because later best-parent choices
/// and the final goal selection compare those costs.  The sibling list is
/// doubly linked so moving a node to a new parent (the rewire itself) is
/// O(1).
#[derive(Debug, Default)]
struct ChildLinks {
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    prev_sibling: Vec<u32>,
}

impl ChildLinks {
    fn clear(&mut self) {
        self.first_child.clear();
        self.next_sibling.clear();
        self.prev_sibling.clear();
    }

    /// Registers the next node (index = current length), not yet linked
    /// under any parent.
    fn push_node(&mut self) {
        self.first_child.push(NONE);
        self.next_sibling.push(NONE);
        self.prev_sibling.push(NONE);
    }

    /// Links `child` at the head of `parent`'s child list.
    fn link(&mut self, child: usize, parent: usize) {
        let head = self.first_child[parent];
        self.next_sibling[child] = head;
        self.prev_sibling[child] = NONE;
        if head != NONE {
            self.prev_sibling[head as usize] = child as u32;
        }
        self.first_child[parent] = child as u32;
    }

    /// Unlinks `child` from `parent`'s child list.
    fn unlink(&mut self, child: usize, parent: usize) {
        let prev = self.prev_sibling[child];
        let next = self.next_sibling[child];
        if prev == NONE {
            self.first_child[parent] = next;
        } else {
            self.next_sibling[prev as usize] = next;
        }
        if next != NONE {
            self.prev_sibling[next as usize] = prev;
        }
    }
}

/// Re-derives the cost of every descendant of `root` from its parent's
/// (already updated) cost, breadth-first in a pooled worklist.
///
/// Costs are recomputed as `parent.cost + edge length` — the exact
/// expression node creation and rewiring use — rather than by adding a
/// delta, so the `cost = Σ edge lengths along the parent chain` invariant
/// holds bit-exactly and float error cannot accumulate across successive
/// rewires.  Traversal order (breadth-first, siblings in child-list order)
/// is deterministic: it depends only on the tree's edit history, never on
/// hashing or memory layout — and the costs it writes are order-independent
/// anyway (each descendant's cost is a pure function of its parent chain).
fn propagate_subtree_costs(
    nodes: &mut [StarNode],
    children: &ChildLinks,
    root: usize,
    worklist: &mut Vec<u32>,
) {
    worklist.clear();
    worklist.push(root as u32);
    let mut cursor = 0;
    while cursor < worklist.len() {
        let parent = worklist[cursor] as usize;
        cursor += 1;
        let mut child = children.first_child[parent];
        while child != NONE {
            let index = child as usize;
            nodes[index].cost =
                nodes[parent].cost + nodes[parent].position.distance(nodes[index].position);
            worklist.push(child);
            child = children.next_sibling[index];
        }
    }
}

/// Picks the goal connection with the lowest total cost (node cost-to-come
/// plus the final hop to the goal), evaluated on **final** node costs.
///
/// Candidacy is geometric (within goal tolerance, collision-free hop) and
/// so fixed at node creation; the *cost* of a candidate keeps dropping as
/// later rewires shorten its parent chain, which is why the total must be
/// recomputed here rather than captured when the candidate was created.
/// Ties resolve to the lowest node index (candidates are recorded in
/// creation order and the comparison is strict).
fn select_best_goal(nodes: &[StarNode], candidates: &[usize], goal: Vec3) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for &candidate in candidates {
        let total = nodes[candidate].cost + nodes[candidate].position.distance(goal);
        if best.map_or(true, |(_, cost)| total < cost) {
            best = Some((candidate, total));
        }
    }
    best
}

/// RRT*: the default motion planner of the paper's PPC pipeline.
///
/// Compared to plain RRT it selects the lowest-cost parent within a
/// neighbourhood and rewires neighbours through new nodes, producing shorter
/// and smoother paths at a higher planning cost (the paper charges 83 ms per
/// trajectory generation on the i9).
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::{MotionPlanner, PlannerConfig, RrtStar};
/// use mavfi_sim::env::EnvironmentKind;
///
/// let env = EnvironmentKind::Sparse.build(2);
/// let mut planner = RrtStar::new(PlannerConfig::for_bounds(env.bounds()).with_seed(3));
/// assert!(planner.plan(&env, env.start(), env.goal()).is_some());
/// ```
#[derive(Debug)]
pub struct RrtStar {
    config: PlannerConfig,
    rng: StdRng,
    // Everything below is pooled across `plan` calls per the scratch-buffer
    // convention (docs/PERFORMANCE.md): cleared, never shrunk.
    nodes: Vec<StarNode>,
    neighbours: Vec<usize>,
    // Spatial index over tree nodes for `nearest` and the rewiring-radius
    // query (bit-identical to the linear scans; `use_index` is the
    // verification knob).
    index: NnIndex,
    use_index: bool,
    // Child adjacency + worklist for propagating rewired cost reductions.
    children: ChildLinks,
    worklist: Vec<u32>,
    // Nodes with a verified collision-free hop to the goal.
    goal_candidates: Vec<usize>,
    // Parent candidates sorted by prospective cost, so the best-parent scan
    // can stop at the first collision-free one.
    parent_candidates: Vec<(f64, u32)>,
    // `neighbours[i].position.distance(new_position)`, filled alongside
    // `parent_candidates` and reused by the rewire pass (positions never
    // move, so the values stay exact; `Vec3::distance` is symmetric
    // bit-for-bit — negation is exact, the squares are identical).
    neighbour_distances: Vec<f64>,
}

impl RrtStar {
    /// Creates an RRT* planner.
    pub fn new(config: PlannerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            nodes: Vec::new(),
            neighbours: Vec::new(),
            index: NnIndex::new(),
            use_index: true,
            children: ChildLinks::default(),
            worklist: Vec::new(),
            goal_candidates: Vec::new(),
            parent_candidates: Vec::new(),
            neighbour_distances: Vec::new(),
        }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }
}

impl MotionPlanner for RrtStar {
    fn kernel(&self) -> KernelId {
        KernelId::RrtStar
    }

    fn set_spatial_index_enabled(&mut self, enabled: bool) {
        self.use_index = enabled;
    }

    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath> {
        let mut out = PlannedPath::default();
        self.plan_into(model, start, goal, &mut out).then_some(out)
    }

    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        out.waypoints.clear();
        if !model.point_free(goal, self.config.margin) {
            return false;
        }
        if model.segment_free(start, goal, self.config.margin) {
            out.waypoints.push(start);
            out.waypoints.push(goal);
            return true;
        }

        self.nodes.clear();
        self.nodes.push(StarNode { position: start, parent: None, cost: 0.0 });
        self.children.clear();
        self.children.push_node();
        self.goal_candidates.clear();
        if self.use_index {
            self.index.reset(self.config.step_size);
            self.index.insert(start);
        }
        let nodes = &mut self.nodes;
        let neighbours = &mut self.neighbours;

        for _ in 0..self.config.max_iterations {
            let sample = sample_point(&mut self.rng, &self.config, goal);
            let nearest_index = if self.use_index {
                self.index.nearest(sample)
            } else {
                nodes
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.position
                            .distance(sample)
                            .partial_cmp(&b.position.distance(sample))
                            .expect("finite distances")
                    })
                    .map(|(index, _)| index)
                    .expect("tree non-empty")
            };
            let new_position = steer(nodes[nearest_index].position, sample, self.config.step_size);
            if !model.point_free(new_position, self.config.margin) {
                continue;
            }

            // The rewiring neighbourhood, in ascending node-index order
            // (the linear filter's natural order; the index sorts to match).
            if self.use_index {
                self.index.within_radius(new_position, self.config.rewire_radius, neighbours);
            } else {
                neighbours.clear();
                neighbours.extend(
                    nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, node)| {
                            node.position.distance(new_position) <= self.config.rewire_radius
                        })
                        .map(|(index, _)| index),
                );
            }

            // Choose the best parent within the rewiring radius; the
            // steering node is chained in only when it lies *outside* the
            // radius (when inside it is already in `neighbours`, and
            // re-marching `segment_free` for it would double the most
            // expensive query of the loop for no behavioural difference —
            // the strict `<` keeps the first evaluation's result).
            // Sort candidates by prospective cost (ties by sequence
            // position) and take the first with a collision-free segment:
            // that candidate minimises `(cost, sequence position)` over the
            // free candidates, which is exactly what a full scan keeping the
            // strict-`<` minimum returns — but the expensive `segment_free`
            // march runs only until the winner is found instead of once per
            // candidate (the dominant cost of the whole search, ~50
            // candidates per accepted node on dense grids).
            let nearest_unlisted = neighbours.binary_search(&nearest_index).is_err();
            self.parent_candidates.clear();
            self.neighbour_distances.clear();
            let neighbour_distances = &mut self.neighbour_distances;
            self.parent_candidates.extend(
                neighbours
                    .iter()
                    .copied()
                    .chain(nearest_unlisted.then_some(nearest_index))
                    .enumerate()
                    .map(|(sequence, candidate)| {
                        let parent = &nodes[candidate];
                        let distance = parent.position.distance(new_position);
                        neighbour_distances.push(distance);
                        (parent.cost + distance, sequence as u32)
                    }),
            );
            self.parent_candidates.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut best_parent = None;
            let mut best_cost = f64::INFINITY;
            for &(cost, sequence) in &self.parent_candidates {
                let candidate = neighbours.get(sequence as usize).copied().unwrap_or(nearest_index);
                if model.segment_free(nodes[candidate].position, new_position, self.config.margin) {
                    best_parent = Some(candidate);
                    best_cost = cost;
                    break;
                }
            }
            let Some(parent_index) = best_parent else { continue };
            nodes.push(StarNode {
                position: new_position,
                parent: Some(parent_index),
                cost: best_cost,
            });
            let new_index = nodes.len() - 1;
            self.children.push_node();
            self.children.link(new_index, parent_index);
            if self.use_index {
                self.index.insert(new_position);
            }

            // Rewire neighbours through the new node when cheaper, and
            // propagate each reduction to the rewired node's descendants:
            // their costs are sums over parent chains that now include the
            // cheaper edge, and stale descendant costs would corrupt every
            // later best-parent choice, rewire decision and the final goal
            // selection.
            // Ascending neighbour order, matching the pre-index linear scan:
            // a rewire's propagation can lower a *later* neighbour's cost
            // mid-loop, so iteration order is observable.  Costs are read
            // fresh for the same reason; only the distances are cached.
            for (position, &neighbour) in neighbours.iter().enumerate() {
                let through_new = best_cost + self.neighbour_distances[position];
                if through_new + 1e-9 < nodes[neighbour].cost
                    && model.segment_free(
                        new_position,
                        nodes[neighbour].position,
                        self.config.margin,
                    )
                {
                    let old_parent =
                        nodes[neighbour].parent.expect("only the root has cost 0 and no parent");
                    self.children.unlink(neighbour, old_parent);
                    self.children.link(neighbour, new_index);
                    nodes[neighbour].parent = Some(new_index);
                    nodes[neighbour].cost = through_new;
                    propagate_subtree_costs(nodes, &self.children, neighbour, &mut self.worklist);
                }
            }

            // Record goal candidacy (geometric, so decided once per node);
            // totals are compared after the iteration budget, on final costs.
            if new_position.distance(goal) <= self.config.goal_tolerance
                && model.segment_free(new_position, goal, self.config.margin)
            {
                self.goal_candidates.push(new_index);
            }
        }

        match select_best_goal(nodes, &self.goal_candidates, goal) {
            Some((index, _)) => {
                trace_path_into(nodes, index, &mut out.waypoints);
                out.waypoints.push(goal);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::rrt::Rrt;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn plans_collision_free_paths() {
        let env = EnvironmentKind::Sparse.build(13);
        let mut planner = RrtStar::new(PlannerConfig::for_bounds(env.bounds()).with_seed(6));
        let path = planner.plan(&env, env.start(), env.goal()).expect("solvable");
        assert!(path.is_collision_free(&env, planner.config().margin * 0.9));
        assert_eq!(path.waypoints[0], env.start());
        assert_eq!(*path.waypoints.last().unwrap(), env.goal());
    }

    #[test]
    fn deterministic_per_seed() {
        let env = EnvironmentKind::Sparse.build(4);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(12);
        let a = RrtStar::new(config).plan(&env, env.start(), env.goal());
        let b = RrtStar::new(config).plan(&env, env.start(), env.goal());
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_and_linear_queries_plan_identical_paths() {
        for (kind, env_seed) in [
            (EnvironmentKind::Sparse, 13_u64),
            (EnvironmentKind::Farm, 2),
            (EnvironmentKind::Dense, 8),
        ] {
            let env = kind.build(env_seed);
            let config = PlannerConfig::for_bounds(env.bounds()).with_seed(6);
            let mut indexed = RrtStar::new(config);
            let mut linear = RrtStar::new(config);
            linear.set_spatial_index_enabled(false);
            // Two plans per instance: the second runs over warm pooled
            // buffers and a stepped RNG.
            for (start, goal) in [(env.start(), env.goal()), (env.goal(), env.start())] {
                assert_eq!(
                    indexed.plan(&env, start, goal),
                    linear.plan(&env, start, goal),
                    "{} seed {env_seed} diverged",
                    env.name()
                );
            }
        }
    }

    /// Regression for the stale-cost rewiring bug: a hand-built tree where
    /// the old code (update the rewired neighbour only) provably selects a
    /// non-optimal goal connection.
    ///
    /// Layout (z = 0 everywhere): the root's path to `via` detours through
    /// `detour`, and `leaf` (the goal candidate) hangs off `via`:
    ///
    /// ```text
    /// root (0,0) ── detour (0,10) ── via (6,8) ── leaf (12,8)   [goal hop]
    ///          └── cheap (6,4)   ← new node that rewires `via`
    /// ```
    #[test]
    fn rewiring_propagates_cost_reductions_to_descendants() {
        let root = Vec3::ZERO;
        let detour = Vec3::new(0.0, 10.0, 0.0);
        let via = Vec3::new(6.0, 8.0, 0.0);
        let leaf = Vec3::new(12.0, 8.0, 0.0);
        let cheap = Vec3::new(6.0, 4.0, 0.0);

        let mut nodes = vec![
            StarNode { position: root, parent: None, cost: 0.0 },
            StarNode { position: detour, parent: Some(0), cost: root.distance(detour) },
            StarNode {
                position: via,
                parent: Some(1),
                cost: root.distance(detour) + detour.distance(via),
            },
        ];
        nodes.push(StarNode {
            position: leaf,
            parent: Some(2),
            cost: nodes[2].cost + via.distance(leaf),
        });
        let mut children = ChildLinks::default();
        for _ in 0..nodes.len() {
            children.push_node();
        }
        children.link(1, 0);
        children.link(2, 1);
        children.link(3, 2);
        let stale_leaf_cost = nodes[3].cost;

        // The new node, wired straight to the root, rewires `via` exactly
        // as the planner's rewire step does.
        nodes.push(StarNode { position: cheap, parent: Some(0), cost: root.distance(cheap) });
        children.push_node();
        children.link(4, 0);
        let through_new = nodes[4].cost + cheap.distance(via);
        assert!(through_new + 1e-9 < nodes[2].cost, "the rewire must be profitable");
        children.unlink(2, 1);
        children.link(2, 4);
        nodes[2].parent = Some(4);
        nodes[2].cost = through_new;
        let mut worklist = Vec::new();
        propagate_subtree_costs(&mut nodes, &children, 2, &mut worklist);

        // The descendant's cost must reflect the rewired chain exactly.
        let expected_leaf_cost = nodes[2].cost + via.distance(leaf);
        assert_eq!(nodes[3].cost, expected_leaf_cost, "leaf cost must be re-derived");
        assert!(
            nodes[3].cost < stale_leaf_cost,
            "the reduction must reach the descendant (old code left {stale_leaf_cost})"
        );

        // And the goal selection must see the reduction: with the stale
        // leaf cost the old code would report a provably non-optimal total.
        let goal = Vec3::new(13.0, 8.0, 0.0);
        let (best, total) =
            select_best_goal(&nodes, &[3], goal).expect("candidate recorded at creation");
        assert_eq!(best, 3);
        assert_eq!(total, expected_leaf_cost + leaf.distance(goal));
        assert!(total < stale_leaf_cost + leaf.distance(goal));
    }

    /// The cost invariant the old rewiring code violated on real plans:
    /// after planning, every node's stored cost must equal its parent's
    /// cost plus the connecting edge length, bit-exactly.  (Any rewire
    /// above a node with descendants broke this before the fix.)
    #[test]
    fn final_tree_costs_satisfy_the_parent_edge_invariant() {
        for (kind, env_seed, planner_seed) in [
            (EnvironmentKind::Sparse, 13_u64, 6_u64),
            (EnvironmentKind::Sparse, 21, 1),
            (EnvironmentKind::Dense, 8, 9),
        ] {
            let env = kind.build(env_seed);
            let mut planner =
                RrtStar::new(PlannerConfig::for_bounds(env.bounds()).with_seed(planner_seed));
            planner.plan(&env, env.start(), env.goal());
            assert!(planner.nodes.len() > 50, "the search must have built a real tree");
            for (index, node) in planner.nodes.iter().enumerate() {
                let Some(parent) = node.parent else {
                    assert_eq!(node.cost, 0.0, "root cost");
                    continue;
                };
                let parent_node = &planner.nodes[parent];
                assert_eq!(
                    node.cost,
                    parent_node.cost + parent_node.position.distance(node.position),
                    "stale cost at node {index} of {}/{env_seed}",
                    env.name()
                );
            }
        }
    }

    /// `select_best_goal` evaluates totals on final costs: a candidate whose
    /// cost dropped after its goal connection was discovered must win over a
    /// candidate that looked better at discovery time (the old `best_goal`
    /// captured totals at creation and never revisited them).
    #[test]
    fn goal_selection_recomputes_totals_from_final_costs() {
        let goal = Vec3::new(20.0, 0.0, 0.0);
        let near = Vec3::new(19.0, 0.0, 0.0);
        let far = Vec3::new(19.0, 1.0, 0.0);
        let nodes = vec![
            StarNode { position: Vec3::ZERO, parent: None, cost: 0.0 },
            // Discovered first with an (initially) terrible cost that a
            // later rewire reduced to 19.0 — the state after propagation.
            StarNode { position: near, parent: Some(0), cost: 19.0 },
            // Discovered second; never rewired.
            StarNode { position: far, parent: Some(0), cost: 19.5 },
        ];
        let (best, total) = select_best_goal(&nodes, &[1, 2], goal).expect("two candidates");
        assert_eq!(best, 1, "the rewired candidate must win on its final cost");
        assert_eq!(total, 19.0 + near.distance(goal));
    }

    #[test]
    fn rrt_star_paths_are_not_longer_than_rrt_on_average() {
        // Averaged over a few seeds, RRT* should produce shorter paths than
        // plain RRT thanks to rewiring.  Use the same iteration budget.
        let env = EnvironmentKind::Sparse.build(20);
        let mut star_total = 0.0;
        let mut rrt_total = 0.0;
        let mut solved = 0;
        for seed in 0..4_u64 {
            let config = PlannerConfig::for_bounds(env.bounds()).with_seed(seed);
            let star = RrtStar::new(config).plan(&env, env.start(), env.goal());
            let plain = Rrt::new(config).plan(&env, env.start(), env.goal());
            if let (Some(star), Some(plain)) = (star, plain) {
                star_total += star.length();
                rrt_total += plain.length();
                solved += 1;
            }
        }
        assert!(solved >= 2, "expected most seeds to solve the sparse world");
        assert!(
            star_total <= rrt_total * 1.05,
            "RRT* ({star_total:.1} m) should not be materially longer than RRT ({rrt_total:.1} m)"
        );
    }
}
