//! RRT* planner: RRT with optimal parent selection and rewiring.

use mavfi_sim::geometry::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernel::KernelId;
use crate::planning::rrt::{sample_point, steer, trace_path_into, ParentLinked};
use crate::planning::space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerConfig};

#[derive(Debug, Clone, Copy)]
struct StarNode {
    position: Vec3,
    parent: Option<usize>,
    cost: f64,
}

impl ParentLinked for StarNode {
    fn position(&self) -> Vec3 {
        self.position
    }

    fn parent(&self) -> Option<usize> {
        self.parent
    }
}

/// RRT*: the default motion planner of the paper's PPC pipeline.
///
/// Compared to plain RRT it selects the lowest-cost parent within a
/// neighbourhood and rewires neighbours through new nodes, producing shorter
/// and smoother paths at a higher planning cost (the paper charges 83 ms per
/// trajectory generation on the i9).
///
/// # Examples
///
/// ```
/// use mavfi_ppc::planning::{MotionPlanner, PlannerConfig, RrtStar};
/// use mavfi_sim::env::EnvironmentKind;
///
/// let env = EnvironmentKind::Sparse.build(2);
/// let mut planner = RrtStar::new(PlannerConfig::for_bounds(env.bounds()).with_seed(3));
/// assert!(planner.plan(&env, env.start(), env.goal()).is_some());
/// ```
#[derive(Debug)]
pub struct RrtStar {
    config: PlannerConfig,
    rng: StdRng,
    // Tree and neighbourhood storage pooled across `plan` calls: the
    // neighbour list in particular used to be reallocated on every sampling
    // iteration of every replan.
    nodes: Vec<StarNode>,
    neighbours: Vec<usize>,
}

impl RrtStar {
    /// Creates an RRT* planner.
    pub fn new(config: PlannerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self { config, rng, nodes: Vec::new(), neighbours: Vec::new() }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }
}

impl MotionPlanner for RrtStar {
    fn kernel(&self) -> KernelId {
        KernelId::RrtStar
    }

    fn plan(&mut self, model: &dyn ObstacleModel, start: Vec3, goal: Vec3) -> Option<PlannedPath> {
        let mut out = PlannedPath::default();
        self.plan_into(model, start, goal, &mut out).then_some(out)
    }

    fn plan_into(
        &mut self,
        model: &dyn ObstacleModel,
        start: Vec3,
        goal: Vec3,
        out: &mut PlannedPath,
    ) -> bool {
        out.waypoints.clear();
        if !model.point_free(goal, self.config.margin) {
            return false;
        }
        if model.segment_free(start, goal, self.config.margin) {
            out.waypoints.push(start);
            out.waypoints.push(goal);
            return true;
        }

        self.nodes.clear();
        self.nodes.push(StarNode { position: start, parent: None, cost: 0.0 });
        let nodes = &mut self.nodes;
        let neighbours = &mut self.neighbours;
        let mut best_goal: Option<(usize, f64)> = None;

        for _ in 0..self.config.max_iterations {
            let sample = sample_point(&mut self.rng, &self.config, goal);
            let nearest_index = nodes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.position
                        .distance(sample)
                        .partial_cmp(&b.position.distance(sample))
                        .expect("finite distances")
                })
                .map(|(index, _)| index)
                .expect("tree non-empty");
            let new_position = steer(nodes[nearest_index].position, sample, self.config.step_size);
            if !model.point_free(new_position, self.config.margin) {
                continue;
            }

            // Choose the best parent within the rewiring radius.
            neighbours.clear();
            neighbours.extend(
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, node)| {
                        node.position.distance(new_position) <= self.config.rewire_radius
                    })
                    .map(|(index, _)| index),
            );
            let mut best_parent = None;
            let mut best_cost = f64::INFINITY;
            for &candidate in neighbours.iter().chain(std::iter::once(&nearest_index)) {
                let parent = &nodes[candidate];
                if !model.segment_free(parent.position, new_position, self.config.margin) {
                    continue;
                }
                let cost = parent.cost + parent.position.distance(new_position);
                if cost < best_cost {
                    best_cost = cost;
                    best_parent = Some(candidate);
                }
            }
            let Some(parent_index) = best_parent else { continue };
            nodes.push(StarNode {
                position: new_position,
                parent: Some(parent_index),
                cost: best_cost,
            });
            let new_index = nodes.len() - 1;

            // Rewire neighbours through the new node when cheaper.
            for &neighbour in neighbours.iter() {
                let through_new = best_cost + new_position.distance(nodes[neighbour].position);
                if through_new + 1e-9 < nodes[neighbour].cost
                    && model.segment_free(
                        new_position,
                        nodes[neighbour].position,
                        self.config.margin,
                    )
                {
                    nodes[neighbour].parent = Some(new_index);
                    nodes[neighbour].cost = through_new;
                }
            }

            // Track the best goal connection found so far.
            if new_position.distance(goal) <= self.config.goal_tolerance
                && model.segment_free(new_position, goal, self.config.margin)
            {
                let total = best_cost + new_position.distance(goal);
                if best_goal.map_or(true, |(_, cost)| total < cost) {
                    best_goal = Some((new_index, total));
                }
            }
        }

        match best_goal {
            Some((index, _)) => {
                trace_path_into(nodes, index, &mut out.waypoints);
                out.waypoints.push(goal);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::rrt::Rrt;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn plans_collision_free_paths() {
        let env = EnvironmentKind::Sparse.build(13);
        let mut planner = RrtStar::new(PlannerConfig::for_bounds(env.bounds()).with_seed(6));
        let path = planner.plan(&env, env.start(), env.goal()).expect("solvable");
        assert!(path.is_collision_free(&env, planner.config().margin * 0.9));
        assert_eq!(path.waypoints[0], env.start());
        assert_eq!(*path.waypoints.last().unwrap(), env.goal());
    }

    #[test]
    fn deterministic_per_seed() {
        let env = EnvironmentKind::Sparse.build(4);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(12);
        let a = RrtStar::new(config).plan(&env, env.start(), env.goal());
        let b = RrtStar::new(config).plan(&env, env.start(), env.goal());
        assert_eq!(a, b);
    }

    #[test]
    fn rrt_star_paths_are_not_longer_than_rrt_on_average() {
        // Averaged over a few seeds, RRT* should produce shorter paths than
        // plain RRT thanks to rewiring.  Use the same iteration budget.
        let env = EnvironmentKind::Sparse.build(20);
        let mut star_total = 0.0;
        let mut rrt_total = 0.0;
        let mut solved = 0;
        for seed in 0..4_u64 {
            let config = PlannerConfig::for_bounds(env.bounds()).with_seed(seed);
            let star = RrtStar::new(config).plan(&env, env.start(), env.goal());
            let plain = Rrt::new(config).plan(&env, env.start(), env.goal());
            if let (Some(star), Some(plain)) = (star, plain) {
                star_total += star.length();
                rrt_total += plain.length();
                solved += 1;
            }
        }
        assert!(solved >= 2, "expected most seeds to solve the sparse world");
        assert!(
            star_total <= rrt_total * 1.05,
            "RRT* ({star_total:.1} m) should not be materially longer than RRT ({rrt_total:.1} m)"
        );
    }
}
