//! Planning stage: sampling-based motion planners, path smoothing,
//! trajectory generation and the mission planner.

pub mod astar;
pub mod frontier;
pub mod mission;
pub mod nn_index;
pub mod rrt;
pub mod rrt_connect;
pub mod rrt_star;
pub mod smoothing;
pub mod space;
pub mod trajectory_gen;

pub use astar::AStarPlanner;
pub use frontier::{CellState, ExplorationCell, ExplorationMap, FrontierPlanner};
pub use mission::MissionPlan;
pub use nn_index::NnIndex;
pub use rrt::Rrt;
pub use rrt_connect::RrtConnect;
pub use rrt_star::RrtStar;
pub use smoothing::PathSmoother;
pub use space::{MotionPlanner, ObstacleModel, PlannedPath, PlannerAlgorithm, PlannerConfig};
pub use trajectory_gen::TrajectoryGenerator;
