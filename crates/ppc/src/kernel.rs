//! Kernel identities and their nominal compute latencies.
//!
//! Each ROS node of the paper wraps exactly one compute kernel.  The latency
//! numbers here are the per-invocation costs on the paper's Intel i9
//! companion computer; `mavfi-platform` scales them for other platforms.
//! They drive the Table II overhead accounting (recomputation cost) and the
//! response-time → velocity coupling of the visual performance model.

use serde::{Deserialize, Serialize};

use crate::states::Stage;

/// Every compute kernel of the PPC pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelId {
    /// Depth image to point cloud conversion (P.C. Gen.).
    PointCloudGeneration,
    /// Occupancy-map update (OctoMap).
    OctoMap,
    /// Collision check against the occupancy map (Col. Ck.).
    CollisionCheck,
    /// RRT motion planner.
    Rrt,
    /// RRT-Connect motion planner.
    RrtConnect,
    /// RRT* motion planner.
    RrtStar,
    /// Grid-based A* motion planner (an extension beyond the paper's three
    /// sampling-based planners, used as a deterministic baseline).
    AStar,
    /// Path smoothening.
    Smoothing,
    /// Mission (package-delivery) planner.
    MissionPlanner,
    /// Path tracking / look-ahead selection.
    PathTracking,
    /// PID command issue.
    Pid,
}

impl KernelId {
    /// Number of kernels (the length of [`KernelId::ALL`]).
    pub const COUNT: usize = 11;

    /// Every kernel, in pipeline order.
    pub const ALL: [Self; Self::COUNT] = [
        Self::PointCloudGeneration,
        Self::OctoMap,
        Self::CollisionCheck,
        Self::Rrt,
        Self::RrtConnect,
        Self::RrtStar,
        Self::AStar,
        Self::Smoothing,
        Self::MissionPlanner,
        Self::PathTracking,
        Self::Pid,
    ];

    /// The kernels the paper's Fig. 3 injects into (one representative
    /// planner per run plus the perception and control kernels).
    pub const FIG3_KERNELS: [Self; 7] = [
        Self::PointCloudGeneration,
        Self::OctoMap,
        Self::CollisionCheck,
        Self::Rrt,
        Self::RrtConnect,
        Self::RrtStar,
        Self::Pid,
    ];

    /// The kernel's position in [`KernelId::ALL`]: the canonical dense
    /// index used by array-backed per-kernel tables
    /// ([`PipelineStats`](crate::pipeline::PipelineStats), telemetry
    /// histograms) instead of hashing on the hot tick path.
    pub const fn index(self) -> usize {
        match self {
            Self::PointCloudGeneration => 0,
            Self::OctoMap => 1,
            Self::CollisionCheck => 2,
            Self::Rrt => 3,
            Self::RrtConnect => 4,
            Self::RrtStar => 5,
            Self::AStar => 6,
            Self::Smoothing => 7,
            Self::MissionPlanner => 8,
            Self::PathTracking => 9,
            Self::Pid => 10,
        }
    }

    /// The stage this kernel belongs to.
    pub fn stage(self) -> Stage {
        match self {
            Self::PointCloudGeneration | Self::OctoMap | Self::CollisionCheck => Stage::Perception,
            Self::Rrt
            | Self::RrtConnect
            | Self::RrtStar
            | Self::AStar
            | Self::Smoothing
            | Self::MissionPlanner => Stage::Planning,
            Self::PathTracking | Self::Pid => Stage::Control,
        }
    }

    /// Nominal per-invocation latency on the paper's i9 companion computer,
    /// in milliseconds.  The occupancy-map update (289 ms) and trajectory
    /// generation (83 ms) figures come directly from §VI-C; the control
    /// recomputation (0.46 ms) is split across path tracking and PID.
    pub fn nominal_latency_ms(self) -> f64 {
        match self {
            Self::PointCloudGeneration => 18.0,
            Self::OctoMap => 289.0,
            Self::CollisionCheck => 9.0,
            Self::Rrt => 62.0,
            Self::RrtConnect => 48.0,
            Self::RrtStar => 83.0,
            Self::AStar => 35.0,
            Self::Smoothing => 12.0,
            Self::MissionPlanner => 1.5,
            Self::PathTracking => 0.26,
            Self::Pid => 0.20,
        }
    }

    /// Short display label matching the paper's figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Self::PointCloudGeneration => "P.C. Gen.",
            Self::OctoMap => "OctoMap",
            Self::CollisionCheck => "Col. Ck.",
            Self::Rrt => "RRT",
            Self::RrtConnect => "RRTConnect",
            Self::RrtStar => "RRT*",
            Self::AStar => "A*",
            Self::Smoothing => "Smoothen",
            Self::MissionPlanner => "Mission",
            Self::PathTracking => "Tracking",
            Self::Pid => "PID",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_partition_the_kernels() {
        let perception: Vec<_> =
            KernelId::ALL.iter().filter(|k| k.stage() == Stage::Perception).collect();
        let planning: Vec<_> =
            KernelId::ALL.iter().filter(|k| k.stage() == Stage::Planning).collect();
        let control: Vec<_> =
            KernelId::ALL.iter().filter(|k| k.stage() == Stage::Control).collect();
        assert_eq!(perception.len(), 3);
        assert_eq!(planning.len(), 6);
        assert_eq!(control.len(), 2);
    }

    #[test]
    fn paper_latency_anchors_are_respected() {
        assert_eq!(KernelId::OctoMap.nominal_latency_ms(), 289.0);
        assert_eq!(KernelId::RrtStar.nominal_latency_ms(), 83.0);
        let control_total =
            KernelId::PathTracking.nominal_latency_ms() + KernelId::Pid.nominal_latency_ms();
        assert!((control_total - 0.46).abs() < 1e-9);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            KernelId::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), KernelId::ALL.len());
    }

    #[test]
    fn index_matches_position_in_all() {
        for (position, kernel) in KernelId::ALL.iter().enumerate() {
            assert_eq!(kernel.index(), position, "{}", kernel.label());
        }
        assert_eq!(KernelId::COUNT, KernelId::ALL.len());
    }

    #[test]
    fn fig3_kernels_are_a_subset_of_all() {
        for kernel in KernelId::FIG3_KERNELS {
            assert!(KernelId::ALL.contains(&kernel));
        }
    }
}
