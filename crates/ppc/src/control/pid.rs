//! PID command-issue kernel: turns the active way-point into a flight
//! command.

use mavfi_sim::geometry::{wrap_angle, Vec3};
use mavfi_sim::vehicle::{FlightCommand, QuadrotorState};
use serde::{Deserialize, Serialize};

use crate::states::Waypoint;

/// PID gains and limits for the command-issue controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain on position error.
    pub kp: f64,
    /// Integral gain on position error.
    pub ki: f64,
    /// Derivative gain on position error.
    pub kd: f64,
    /// Proportional gain on yaw error.
    pub kp_yaw: f64,
    /// Commanded-speed ceiling (m/s).
    pub max_speed: f64,
    /// Anti-windup clamp on the integral term (m·s).
    pub integral_limit: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        Self { kp: 1.2, ki: 0.02, kd: 0.25, kp_yaw: 1.5, max_speed: 6.0, integral_limit: 4.0 }
    }
}

/// The PID controller closing the loop between the planned way-point and
/// the actuator-facing flight command.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::control::{PidConfig, PidController};
/// use mavfi_ppc::states::Waypoint;
/// use mavfi_sim::geometry::Vec3;
/// use mavfi_sim::vehicle::QuadrotorState;
///
/// let mut pid = PidController::new(PidConfig::default());
/// let target = Waypoint { position: Vec3::new(5.0, 0.0, 2.0), ..Waypoint::default() };
/// let state = QuadrotorState::default();
/// let command = pid.run(&target, &state, 0.1);
/// assert!(command.velocity.x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    config: PidConfig,
    integral: Vec3,
    previous_error: Option<Vec3>,
}

impl PidController {
    /// Creates a controller with zeroed internal state.
    pub fn new(config: PidConfig) -> Self {
        Self { config, integral: Vec3::ZERO, previous_error: None }
    }

    /// The controller gains.
    pub fn config(&self) -> PidConfig {
        self.config
    }

    /// Clears the integral and derivative history (called after replans and
    /// recomputations so stale state does not leak across trajectories).
    pub fn reset(&mut self) {
        self.integral = Vec3::ZERO;
        self.previous_error = None;
    }

    /// Computes the flight command tracking `target` from `state`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn run(&mut self, target: &Waypoint, state: &QuadrotorState, dt: f64) -> FlightCommand {
        assert!(dt > 0.0 && dt.is_finite(), "time step must be positive and finite");
        let error = target.position - state.position;
        self.integral = (self.integral + error * dt).clamp_norm(self.config.integral_limit);
        let derivative = match self.previous_error {
            Some(previous) => (error - previous) / dt,
            None => Vec3::ZERO,
        };
        self.previous_error = Some(error);

        let correction =
            error * self.config.kp + self.integral * self.config.ki + derivative * self.config.kd;
        let velocity = (target.velocity + correction).clamp_norm(self.config.max_speed);

        let desired_yaw = if target.velocity.norm() > 0.1 { target.yaw } else { error.heading() };
        let yaw_rate = self.config.kp_yaw * wrap_angle(desired_yaw - state.yaw);

        FlightCommand::new(velocity, yaw_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_points_towards_the_target() {
        let mut pid = PidController::new(PidConfig::default());
        let target = Waypoint { position: Vec3::new(0.0, 10.0, 2.0), ..Waypoint::default() };
        let state =
            QuadrotorState { position: Vec3::new(0.0, 0.0, 2.0), ..QuadrotorState::default() };
        let command = pid.run(&target, &state, 0.1);
        assert!(command.velocity.y > 0.0);
        assert!(command.velocity.norm() <= PidConfig::default().max_speed + 1e-9);
    }

    #[test]
    fn speed_is_clamped() {
        let config = PidConfig { kp: 100.0, max_speed: 3.0, ..PidConfig::default() };
        let mut pid = PidController::new(config);
        let target = Waypoint { position: Vec3::new(100.0, 0.0, 0.0), ..Waypoint::default() };
        let command = pid.run(&target, &QuadrotorState::default(), 0.1);
        assert!((command.velocity.norm() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn integral_is_bounded() {
        let config = PidConfig { ki: 1.0, integral_limit: 2.0, ..PidConfig::default() };
        let mut pid = PidController::new(config);
        let target = Waypoint { position: Vec3::new(50.0, 0.0, 0.0), ..Waypoint::default() };
        for _ in 0..1000 {
            pid.run(&target, &QuadrotorState::default(), 0.1);
        }
        // With the anti-windup clamp, the command stays finite and bounded.
        let command = pid.run(&target, &QuadrotorState::default(), 0.1);
        assert!(command.velocity.norm() <= config.max_speed + 1e-9);
    }

    #[test]
    fn yaw_rate_tracks_heading_error() {
        let mut pid = PidController::new(PidConfig::default());
        let target = Waypoint {
            position: Vec3::new(10.0, 0.0, 0.0),
            yaw: std::f64::consts::FRAC_PI_2,
            velocity: Vec3::new(0.0, 3.0, 0.0),
        };
        let state = QuadrotorState { yaw: 0.0, ..QuadrotorState::default() };
        let command = pid.run(&target, &state, 0.1);
        assert!(command.yaw_rate > 0.0);
    }

    #[test]
    fn closed_loop_converges_to_waypoint() {
        use mavfi_sim::vehicle::{Quadrotor, QuadrotorParams};
        let mut pid = PidController::new(PidConfig::default());
        let mut quad = Quadrotor::new(Vec3::ZERO, 0.0, QuadrotorParams::default());
        let target = Waypoint { position: Vec3::new(8.0, -4.0, 3.0), ..Waypoint::default() };
        for _ in 0..600 {
            let command = pid.run(&target, &quad.state(), 0.05);
            quad.step(&command, 0.05);
        }
        assert!(quad.state().position.distance(target.position) < 0.5);
    }

    #[test]
    fn reset_clears_history() {
        let mut pid = PidController::new(PidConfig::default());
        let target = Waypoint { position: Vec3::new(5.0, 0.0, 0.0), ..Waypoint::default() };
        pid.run(&target, &QuadrotorState::default(), 0.1);
        pid.reset();
        assert_eq!(pid, PidController::new(PidConfig::default()));
    }
}
