//! Path-tracking kernel: selects the active way-point the controller should
//! chase.

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::states::{Trajectory, Waypoint};

/// Configuration of the path tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathTrackerConfig {
    /// A way-point counts as reached when the vehicle is within this
    /// distance of it (m).
    pub arrival_tolerance: f64,
    /// Way-points closer than this to the vehicle are skipped in favour of
    /// the next one (look-ahead, m).
    pub lookahead: f64,
}

impl Default for PathTrackerConfig {
    fn default() -> Self {
        Self { arrival_tolerance: 1.2, lookahead: 2.0 }
    }
}

/// Tracks progress along the current trajectory and exposes the active
/// way-point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathTracker {
    config: PathTrackerConfig,
    active_index: usize,
}

impl PathTracker {
    /// Creates a tracker at the beginning of a trajectory.
    pub fn new(config: PathTrackerConfig) -> Self {
        Self { config, active_index: 0 }
    }

    /// The tracker configuration.
    pub fn config(&self) -> PathTrackerConfig {
        self.config
    }

    /// Index of the way-point currently being tracked.
    pub fn active_index(&self) -> usize {
        self.active_index
    }

    /// Restarts tracking from the beginning (called after replanning).
    pub fn reset(&mut self) {
        self.active_index = 0;
    }

    /// Returns `true` when every way-point of `trajectory` has been passed.
    pub fn is_finished(&self, trajectory: &Trajectory) -> bool {
        self.active_index >= trajectory.len()
    }

    /// Advances past reached way-points and returns the one to track next,
    /// or `None` when the trajectory is exhausted or empty.
    pub fn target(&mut self, trajectory: &Trajectory, position: Vec3) -> Option<Waypoint> {
        while self.active_index < trajectory.len() {
            let waypoint = &trajectory.waypoints[self.active_index];
            let is_last = self.active_index + 1 == trajectory.len();
            let reach = if is_last { self.config.arrival_tolerance } else { self.config.lookahead };
            if position.distance(waypoint.position) <= reach {
                self.active_index += 1;
            } else {
                return Some(*waypoint);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_trajectory() -> Trajectory {
        Trajectory::new(
            (0..5)
                .map(|i| Waypoint {
                    position: Vec3::new(i as f64 * 3.0, 0.0, 2.0),
                    ..Waypoint::default()
                })
                .collect(),
        )
    }

    #[test]
    fn advances_past_reached_waypoints() {
        let mut tracker = PathTracker::new(PathTrackerConfig::default());
        let trajectory = straight_trajectory();
        // Standing at the origin: the first way-point (distance 0) is
        // skipped, the second becomes the target.
        let target = tracker.target(&trajectory, Vec3::new(0.0, 0.0, 2.0)).unwrap();
        assert_eq!(target.position.x, 3.0);
        assert_eq!(tracker.active_index(), 1);
        // The target only advances when the vehicle actually nears it; a far
        // position does not skip way-points.
        let target = tracker.target(&trajectory, Vec3::new(11.0, 0.0, 2.0)).unwrap();
        assert_eq!(target.position.x, 3.0);
        // Approaching the active way-point advances to the next one.
        let target = tracker.target(&trajectory, Vec3::new(2.5, 0.0, 2.0)).unwrap();
        assert_eq!(target.position.x, 6.0);
        assert_eq!(tracker.active_index(), 2);
    }

    #[test]
    fn exhausted_trajectory_returns_none() {
        let mut tracker = PathTracker::new(PathTrackerConfig::default());
        let trajectory = straight_trajectory();
        // Fly along the path, arriving at every way-point in turn.
        for x in [0.0, 3.0, 6.0, 9.0, 12.0] {
            let _ = tracker.target(&trajectory, Vec3::new(x, 0.0, 2.0));
        }
        assert!(tracker.target(&trajectory, Vec3::new(12.0, 0.0, 2.0)).is_none());
        assert!(tracker.is_finished(&trajectory));
        tracker.reset();
        assert_eq!(tracker.active_index(), 0);
    }

    #[test]
    fn empty_trajectory_has_no_target() {
        let mut tracker = PathTracker::new(PathTrackerConfig::default());
        assert!(tracker.target(&Trajectory::default(), Vec3::ZERO).is_none());
    }
}
