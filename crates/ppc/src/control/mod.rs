//! Control stage: path tracking and PID command issue.

pub mod path_tracking;
pub mod pid;

pub use path_tracking::{PathTracker, PathTrackerConfig};
pub use pid::{PidConfig, PidController};
