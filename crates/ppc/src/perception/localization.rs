//! State estimation / sensor fusion (the "Sensor Fusion" and "Localization"
//! kernels of the paper's Fig. 1 pipeline overview).
//!
//! The closed-loop simulator hands the pipeline the true vehicle state, just
//! as AirSim does in MAVBench, so localisation is not on the critical path
//! of the reproduced experiments.  The estimator here exists so that the
//! perception stage is complete as drawn in the paper: it fuses noisy IMU
//! accelerations with intermittent, noisy position fixes through a constant
//! per-axis Kalman filter and exposes the fused state to downstream
//! consumers and to the fault-injection examples.

use mavfi_sim::geometry::Vec3;
use mavfi_sim::sensors::ImuSample;
use serde::{Deserialize, Serialize};

/// Per-axis process/measurement noise configuration of the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Process noise of the constant-velocity model (m/s² standard
    /// deviation), i.e. how much unmodelled acceleration is expected.
    pub process_noise: f64,
    /// Standard deviation of position-fix noise (m).
    pub position_noise: f64,
    /// Standard deviation of the IMU acceleration noise (m/s²).
    pub accel_noise: f64,
    /// Initial position variance (m²).
    pub initial_position_variance: f64,
    /// Initial velocity variance ((m/s)²).
    pub initial_velocity_variance: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            process_noise: 0.8,
            position_noise: 0.35,
            accel_noise: 0.25,
            initial_position_variance: 4.0,
            initial_velocity_variance: 1.0,
        }
    }
}

/// One axis of the position/velocity Kalman filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct AxisFilter {
    position: f64,
    velocity: f64,
    // Covariance of [position, velocity].
    p00: f64,
    p01: f64,
    p11: f64,
}

impl AxisFilter {
    fn new(position: f64, config: &EstimatorConfig) -> Self {
        Self {
            position,
            velocity: 0.0,
            p00: config.initial_position_variance,
            p01: 0.0,
            p11: config.initial_velocity_variance,
        }
    }

    /// Prediction step: constant-velocity model driven by the measured
    /// acceleration.
    fn predict(&mut self, accel: f64, dt: f64, config: &EstimatorConfig) {
        self.position += self.velocity * dt + 0.5 * accel * dt * dt;
        self.velocity += accel * dt;

        // P = F P Fᵀ + Q with F = [[1, dt], [0, 1]].
        let p00 = self.p00 + dt * (self.p01 + self.p01 + dt * self.p11);
        let p01 = self.p01 + dt * self.p11;
        let p11 = self.p11;
        let q = config.process_noise * config.process_noise;
        let accel_var = config.accel_noise * config.accel_noise;
        self.p00 = p00 + 0.25 * dt.powi(4) * (q + accel_var);
        self.p01 = p01 + 0.5 * dt.powi(3) * (q + accel_var);
        self.p11 = p11 + dt * dt * (q + accel_var);
    }

    /// Measurement update with a position fix.
    fn correct(&mut self, measured_position: f64, config: &EstimatorConfig) {
        let r = config.position_noise * config.position_noise;
        let innovation = measured_position - self.position;
        let s = self.p00 + r;
        if s <= f64::EPSILON {
            return;
        }
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        self.position += k0 * innovation;
        self.velocity += k1 * innovation;
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }
}

/// The fused state estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEstimate {
    /// Estimated position (m).
    pub position: Vec3,
    /// Estimated velocity (m/s).
    pub velocity: Vec3,
    /// Estimated yaw (rad).
    pub yaw: f64,
    /// Scalar position uncertainty: the root of the mean per-axis position
    /// variance (m).
    pub position_sigma: f64,
}

/// Constant-velocity Kalman filter fusing IMU accelerations with noisy
/// position fixes, plus dead-reckoned yaw.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::perception::localization::{EstimatorConfig, StateEstimator};
/// use mavfi_sim::geometry::Vec3;
/// use mavfi_sim::sensors::ImuSample;
///
/// let mut estimator = StateEstimator::new(Vec3::ZERO, 0.0, EstimatorConfig::default());
/// let imu = ImuSample { acceleration: Vec3::new(0.5, 0.0, 0.0), yaw_rate: 0.0 };
/// estimator.predict(&imu, 0.1);
/// estimator.correct_position(Vec3::new(0.01, 0.0, 0.0));
/// assert!(estimator.estimate().position.x >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEstimator {
    config: EstimatorConfig,
    x: AxisFilter,
    y: AxisFilter,
    z: AxisFilter,
    yaw: f64,
}

impl StateEstimator {
    /// Creates an estimator initialised at a known pose.
    pub fn new(position: Vec3, yaw: f64, config: EstimatorConfig) -> Self {
        Self {
            config,
            x: AxisFilter::new(position.x, &config),
            y: AxisFilter::new(position.y, &config),
            z: AxisFilter::new(position.z, &config),
            yaw,
        }
    }

    /// The estimator configuration.
    pub fn config(&self) -> EstimatorConfig {
        self.config
    }

    /// Prediction step driven by one IMU sample over `dt` seconds.
    /// Non-finite IMU components are treated as zero (a corrupted IMU sample
    /// must not destroy the filter state).
    pub fn predict(&mut self, imu: &ImuSample, dt: f64) {
        if dt <= 0.0 || !dt.is_finite() {
            return;
        }
        let safe = |v: f64| if v.is_finite() { v } else { 0.0 };
        let config = self.config;
        self.x.predict(safe(imu.acceleration.x), dt, &config);
        self.y.predict(safe(imu.acceleration.y), dt, &config);
        self.z.predict(safe(imu.acceleration.z), dt, &config);
        self.yaw += safe(imu.yaw_rate) * dt;
    }

    /// Measurement update with a position fix (e.g. visual-inertial odometry
    /// or GNSS).  Non-finite fixes are ignored.
    pub fn correct_position(&mut self, position: Vec3) {
        if !position.is_finite() {
            return;
        }
        let config = self.config;
        self.x.correct(position.x, &config);
        self.y.correct(position.y, &config);
        self.z.correct(position.z, &config);
    }

    /// Measurement update with an absolute yaw observation (e.g. from a
    /// magnetometer); blends rather than replaces.
    pub fn correct_yaw(&mut self, yaw: f64, weight: f64) {
        if yaw.is_finite() {
            let w = weight.clamp(0.0, 1.0);
            self.yaw = (1.0 - w) * self.yaw + w * yaw;
        }
    }

    /// The current fused estimate.
    pub fn estimate(&self) -> StateEstimate {
        StateEstimate {
            position: Vec3::new(self.x.position, self.y.position, self.z.position),
            velocity: Vec3::new(self.x.velocity, self.y.velocity, self.z.velocity),
            yaw: self.yaw,
            position_sigma: ((self.x.p00 + self.y.p00 + self.z.p00) / 3.0).max(0.0).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates a vehicle accelerating then cruising along +X, feeding the
    /// estimator noisy IMU and position measurements.
    fn run_tracking(config: EstimatorConfig, fix_every: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dt = 0.1;
        let mut true_position = Vec3::ZERO;
        let mut true_velocity = Vec3::ZERO;
        let mut estimator = StateEstimator::new(Vec3::ZERO, 0.0, config);
        let mut worst_error = 0.0_f64;
        for step in 0..400 {
            let accel = if step < 100 { Vec3::new(0.4, 0.1, 0.0) } else { Vec3::ZERO };
            true_velocity += accel * dt;
            true_position += true_velocity * dt;

            let noisy = |std: f64, rng: &mut StdRng| {
                (0..3).map(|_| rng.gen_range(-std..std)).sum::<f64>() / 3.0_f64.sqrt()
            };
            let imu = ImuSample {
                acceleration: Vec3::new(
                    accel.x + noisy(0.2, &mut rng),
                    accel.y + noisy(0.2, &mut rng),
                    accel.z + noisy(0.2, &mut rng),
                ),
                yaw_rate: 0.0,
            };
            estimator.predict(&imu, dt);
            if step % fix_every == 0 {
                let fix = Vec3::new(
                    true_position.x + noisy(0.3, &mut rng),
                    true_position.y + noisy(0.3, &mut rng),
                    true_position.z + noisy(0.3, &mut rng),
                );
                estimator.correct_position(fix);
            }
            if step > 50 {
                worst_error =
                    worst_error.max(estimator.estimate().position.distance(true_position));
            }
        }
        let final_error = estimator.estimate().position.distance(true_position);
        (final_error, worst_error)
    }

    #[test]
    fn fused_estimate_tracks_the_true_trajectory() {
        let (final_error, worst_error) = run_tracking(EstimatorConfig::default(), 5, 1);
        assert!(final_error < 1.0, "final error {final_error}");
        assert!(worst_error < 2.0, "worst error {worst_error}");
    }

    #[test]
    fn position_fixes_shrink_the_uncertainty() {
        let config = EstimatorConfig::default();
        let mut estimator = StateEstimator::new(Vec3::ZERO, 0.0, config);
        let before = estimator.estimate().position_sigma;
        for _ in 0..10 {
            estimator.predict(&ImuSample { acceleration: Vec3::ZERO, yaw_rate: 0.0 }, 0.1);
            estimator.correct_position(Vec3::ZERO);
        }
        let after = estimator.estimate().position_sigma;
        assert!(after < before, "sigma should shrink: {before} -> {after}");
    }

    #[test]
    fn dead_reckoning_alone_drifts_more_than_fused_estimation() {
        let fused = run_tracking(EstimatorConfig::default(), 5, 2).0;
        let dead_reckoned = run_tracking(EstimatorConfig::default(), 100_000, 2).0;
        assert!(
            dead_reckoned > fused,
            "dead reckoning ({dead_reckoned}) should drift more than fused ({fused})"
        );
    }

    #[test]
    fn corrupted_measurements_are_ignored() {
        let mut estimator =
            StateEstimator::new(Vec3::new(1.0, 2.0, 3.0), 0.5, EstimatorConfig::default());
        let clean = estimator.estimate();
        estimator.predict(
            &ImuSample { acceleration: Vec3::new(f64::NAN, 0.0, 0.0), yaw_rate: f64::INFINITY },
            0.1,
        );
        estimator.correct_position(Vec3::new(f64::NAN, 0.0, 0.0));
        let after = estimator.estimate();
        assert!(after.position.is_finite());
        assert!(after.yaw.is_finite());
        assert!((after.position.y - clean.position.y).abs() < 1.0);
    }

    #[test]
    fn yaw_integrates_rate_and_blends_absolute_fixes() {
        let mut estimator = StateEstimator::new(Vec3::ZERO, 0.0, EstimatorConfig::default());
        for _ in 0..10 {
            estimator.predict(&ImuSample { acceleration: Vec3::ZERO, yaw_rate: 0.2 }, 0.1);
        }
        assert!((estimator.estimate().yaw - 0.2).abs() < 1e-9);
        estimator.correct_yaw(1.0, 0.5);
        assert!((estimator.estimate().yaw - 0.6).abs() < 1e-9);
        estimator.correct_yaw(f64::NAN, 0.5);
        assert!(estimator.estimate().yaw.is_finite());
    }

    #[test]
    fn invalid_dt_is_a_no_op() {
        let mut estimator = StateEstimator::new(Vec3::ZERO, 0.0, EstimatorConfig::default());
        let before = estimator.estimate();
        estimator
            .predict(&ImuSample { acceleration: Vec3::new(1.0, 1.0, 1.0), yaw_rate: 1.0 }, 0.0);
        estimator
            .predict(&ImuSample { acceleration: Vec3::new(1.0, 1.0, 1.0), yaw_rate: 1.0 }, -0.5);
        estimator.predict(
            &ImuSample { acceleration: Vec3::new(1.0, 1.0, 1.0), yaw_rate: 1.0 },
            f64::NAN,
        );
        assert_eq!(estimator.estimate(), before);
    }
}
