//! Perception stage: point-cloud generation, occupancy mapping, collision
//! checking and state estimation.

pub mod collision_check;
pub mod localization;
pub mod occupancy;
pub mod point_cloud;

pub use collision_check::{CollisionCacheStats, CollisionChecker, CollisionCheckerConfig};
pub use localization::{EstimatorConfig, StateEstimate, StateEstimator};
pub use occupancy::{OccupancyGrid, VoxelKey};
pub use point_cloud::PointCloudGenerator;
