//! Collision-check kernel: predicts time to collision and which future
//! way-point first collides.

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::perception::occupancy::OccupancyGrid;
use crate::states::{CollisionEstimate, Trajectory};

/// Configuration of the collision checker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionCheckerConfig {
    /// Look-ahead horizon along the velocity vector (s).
    pub horizon: f64,
    /// Obstacle inflation margin applied during checks (m).
    pub safety_margin: f64,
    /// Spatial sampling step when marching along the velocity ray (m).
    pub sample_step: f64,
}

impl Default for CollisionCheckerConfig {
    fn default() -> Self {
        Self { horizon: 4.0, safety_margin: 0.6, sample_step: 0.25 }
    }
}

/// The collision-check kernel ("Col. Ck." in the paper's Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollisionChecker {
    config: CollisionCheckerConfig,
}

impl CollisionChecker {
    /// Creates a collision checker.
    pub fn new(config: CollisionCheckerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CollisionCheckerConfig {
        self.config
    }

    /// Produces a collision estimate from the occupancy map, the vehicle
    /// kinematics and the remaining planned trajectory.
    ///
    /// `active_index` is the index of the way-point the controller is
    /// currently tracking; only way-points from that index onwards are
    /// considered "future".
    pub fn run(
        &self,
        grid: &OccupancyGrid,
        position: Vec3,
        velocity: Vec3,
        trajectory: &Trajectory,
        active_index: usize,
    ) -> CollisionEstimate {
        let speed = velocity.norm();
        let mut estimate = CollisionEstimate::default();

        // Time to collision: march along the velocity direction.
        if speed > 0.1 {
            let direction = velocity / speed;
            let max_distance = speed * self.config.horizon;
            let steps = (max_distance / self.config.sample_step).ceil() as usize;
            for i in 1..=steps {
                let distance = i as f64 * self.config.sample_step;
                let sample = position + direction * distance;
                if grid.is_occupied_near(sample, self.config.safety_margin) {
                    estimate.time_to_collision = distance / speed;
                    estimate.obstacle_ahead = true;
                    break;
                }
            }
        }

        // Future collision sequence: first planned way-point inside an
        // obstacle.
        for (offset, waypoint) in trajectory.waypoints.iter().enumerate().skip(active_index) {
            if grid.is_occupied_near(waypoint.position, self.config.safety_margin) {
                estimate.future_collision_seq = offset as f64;
                estimate.obstacle_ahead = true;
                break;
            }
        }

        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::Waypoint;

    fn wall_grid() -> OccupancyGrid {
        let mut grid = OccupancyGrid::new(0.5);
        for y in -4..=4 {
            for z in 0..=6 {
                grid.insert_point(Vec3::new(10.0, y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        grid
    }

    #[test]
    fn clear_path_reports_no_collision() {
        let grid = OccupancyGrid::new(0.5);
        let checker = CollisionChecker::default();
        let estimate =
            checker.run(&grid, Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), &Trajectory::default(), 0);
        assert!(!estimate.obstacle_ahead);
        assert!(estimate.time_to_collision.is_infinite());
        assert_eq!(estimate.future_collision_seq, -1.0);
    }

    #[test]
    fn wall_ahead_yields_finite_time_to_collision() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let speed = 3.0;
        let estimate = checker.run(
            &grid,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(speed, 0.0, 0.0),
            &Trajectory::default(),
            0,
        );
        assert!(estimate.obstacle_ahead);
        assert!(estimate.time_to_collision.is_finite());
        // The wall is ~10 m away; at 3 m/s the TTC is ~3.3 s, within horizon 4 s.
        assert!(estimate.time_to_collision > 2.0 && estimate.time_to_collision < 4.0);
    }

    #[test]
    fn slow_vehicle_does_not_see_far_wall() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let estimate = checker.run(
            &grid,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.5, 0.0, 0.0),
            &Trajectory::default(),
            0,
        );
        // At 0.5 m/s the 4 s horizon only covers 2 m.
        assert!(estimate.time_to_collision.is_infinite());
    }

    #[test]
    fn future_collision_seq_reports_first_bad_waypoint() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let trajectory = Trajectory::new(vec![
            Waypoint { position: Vec3::new(2.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(6.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(10.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(14.0, 0.0, 1.0), ..Waypoint::default() },
        ]);
        let estimate = checker.run(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0);
        assert_eq!(estimate.future_collision_seq, 2.0);
        assert!(estimate.obstacle_ahead);

        // Starting the scan beyond the colliding way-point skips it.
        let estimate_late = checker.run(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 3);
        assert_eq!(estimate_late.future_collision_seq, -1.0);
    }
}
