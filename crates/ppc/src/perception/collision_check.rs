//! Collision-check kernel: predicts time to collision and which future
//! way-point first collides.
//!
//! The kernel is a pure function of `(grid, position, velocity, trajectory,
//! active_index)`, which makes it cacheable: [`CollisionChecker::run_cached`]
//! keys its two halves — the velocity-ray march and the future-way-point
//! scan — on the [`OccupancyGrid::revision`] counter plus the inputs each
//! half actually reads, and skips the voxel probing entirely when a half's
//! key is unchanged.  See `docs/PERFORMANCE.md` for the cache invariants.

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::perception::occupancy::OccupancyGrid;
use crate::states::{CollisionEstimate, Trajectory};

/// Configuration of the collision checker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionCheckerConfig {
    /// Look-ahead horizon along the velocity vector (s).
    pub horizon: f64,
    /// Obstacle inflation margin applied during checks (m).
    pub safety_margin: f64,
    /// Spatial sampling step when marching along the velocity ray (m).
    pub sample_step: f64,
}

impl Default for CollisionCheckerConfig {
    fn default() -> Self {
        Self { horizon: 4.0, safety_margin: 0.6, sample_step: 0.25 }
    }
}

/// Hit/miss counters of the two memoised halves of
/// [`CollisionChecker::run_cached`], exposed like
/// `TrainedDetectorCache::stats()`: the runtime evidence behind the
/// "perception recovery becomes a cache hit" claim.  Counters only move on
/// `run_cached` calls with the cache enabled; [`CollisionChecker::run`] and
/// cache-disabled calls leave them untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CollisionCacheStats {
    /// Velocity-ray marches served from the cache.
    pub ray_hits: u64,
    /// Velocity-ray marches that had to probe voxels.
    pub ray_misses: u64,
    /// Future-way-point scans served from the cache.
    pub scan_hits: u64,
    /// Future-way-point scans that had to probe voxels.
    pub scan_misses: u64,
}

impl CollisionCacheStats {
    /// Total lookups across both halves.
    pub fn lookups(&self) -> u64 {
        self.ray_hits + self.ray_misses + self.scan_hits + self.scan_misses
    }

    /// Total hits across both halves.
    pub fn hits(&self) -> u64 {
        self.ray_hits + self.scan_hits
    }

    /// Fraction of lookups served from the cache (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }
}

/// Cache key of the velocity-ray march: everything that half reads besides
/// the grid contents (identified by their revision).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RayKey {
    grid_revision: u64,
    position: Vec3,
    velocity: Vec3,
}

/// Cache key of the future-way-point scan.  The trajectory revision is
/// caller-maintained (see [`CollisionChecker::run_cached`]); the length
/// rides along as a cheap extra guard against a stale revision.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScanKey {
    grid_revision: u64,
    trajectory_revision: u64,
    trajectory_len: usize,
    active_index: usize,
}

/// The collision-check kernel ("Col. Ck." in the paper's Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct CollisionChecker {
    config: CollisionCheckerConfig,
    // Revision-keyed memo of the two kernel halves (`run_cached`).  The
    // cached values are `(result, hit)` pairs; a `None` or mismatched key
    // falls through to the exact computation.
    ray_cache: Option<(RayKey, (f64, bool))>,
    scan_cache: Option<(ScanKey, (f64, bool))>,
    cache_enabled: bool,
    cache_stats: CollisionCacheStats,
}

/// Checkers compare by configuration: the caches are memoisation state, not
/// semantics (a warm and a cold checker produce identical estimates).
impl PartialEq for CollisionChecker {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
    }
}

impl Default for CollisionChecker {
    fn default() -> Self {
        Self::new(CollisionCheckerConfig::default())
    }
}

impl CollisionChecker {
    /// Creates a collision checker.
    pub fn new(config: CollisionCheckerConfig) -> Self {
        Self {
            config,
            ray_cache: None,
            scan_cache: None,
            cache_enabled: true,
            cache_stats: CollisionCacheStats::default(),
        }
    }

    /// Hit/miss counters of the revision cache.  Counters accumulate over
    /// the checker's lifetime (one mission for the pipeline-owned checker)
    /// and are not part of equality.
    pub fn cache_stats(&self) -> CollisionCacheStats {
        self.cache_stats
    }

    /// The active configuration.
    pub fn config(&self) -> CollisionCheckerConfig {
        self.config
    }

    /// Enables or disables the revision cache of
    /// [`run_cached`](Self::run_cached) (enabled by default, and cleared on
    /// disable).  A verification knob: equivalence tests fly the same
    /// mission cached and uncached and assert bit-identical outcomes.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.ray_cache = None;
            self.scan_cache = None;
        }
    }

    /// Time to collision along the velocity direction: `(ttc, hit)`.
    fn march_ray(&self, grid: &OccupancyGrid, position: Vec3, velocity: Vec3) -> (f64, bool) {
        let speed = velocity.norm();
        if speed > 0.1 {
            let direction = velocity / speed;
            let max_distance = speed * self.config.horizon;
            let steps = (max_distance / self.config.sample_step).ceil() as usize;
            for i in 1..=steps {
                let distance = i as f64 * self.config.sample_step;
                let sample = position + direction * distance;
                if grid.is_occupied_near(sample, self.config.safety_margin) {
                    return (distance / speed, true);
                }
            }
        }
        (f64::INFINITY, false)
    }

    /// First planned way-point inside an obstacle: `(sequence, hit)`.
    fn scan_waypoints(
        &self,
        grid: &OccupancyGrid,
        trajectory: &Trajectory,
        active_index: usize,
    ) -> (f64, bool) {
        for (offset, waypoint) in trajectory.waypoints.iter().enumerate().skip(active_index) {
            if grid.is_occupied_near(waypoint.position, self.config.safety_margin) {
                return (offset as f64, true);
            }
        }
        (-1.0, false)
    }

    /// Produces a collision estimate from the occupancy map, the vehicle
    /// kinematics and the remaining planned trajectory.
    ///
    /// `active_index` is the index of the way-point the controller is
    /// currently tracking; only way-points from that index onwards are
    /// considered "future".
    pub fn run(
        &self,
        grid: &OccupancyGrid,
        position: Vec3,
        velocity: Vec3,
        trajectory: &Trajectory,
        active_index: usize,
    ) -> CollisionEstimate {
        let (time_to_collision, ray_hit) = self.march_ray(grid, position, velocity);
        let (future_collision_seq, scan_hit) = self.scan_waypoints(grid, trajectory, active_index);
        CollisionEstimate {
            time_to_collision,
            future_collision_seq,
            obstacle_ahead: ray_hit || scan_hit,
        }
    }

    /// [`run`](Self::run) with revision-keyed memoisation of both kernel
    /// halves — bit-identical output, but a half whose inputs are unchanged
    /// skips its voxel probing entirely.
    ///
    /// The grid side of each key is [`OccupancyGrid::revision`]; the caller
    /// supplies `trajectory_revision`, a counter it must bump whenever the
    /// trajectory contents change ([`PpcPipeline`] shadow-compares the
    /// stored trajectory after the planning stage, so tap mutations —
    /// fault corruption, abandonment restores — are caught too).
    ///
    /// Contract: a checker instance must be fed a single grid / trajectory
    /// lineage.  Feeding two different grids that happen to share a
    /// revision value could return a stale estimate; the pipeline owns one
    /// grid, one trajectory and one checker, which satisfies this by
    /// construction.
    ///
    /// [`PpcPipeline`]: crate::pipeline::PpcPipeline
    pub fn run_cached(
        &mut self,
        grid: &OccupancyGrid,
        position: Vec3,
        velocity: Vec3,
        trajectory: &Trajectory,
        trajectory_revision: u64,
        active_index: usize,
    ) -> CollisionEstimate {
        if !self.cache_enabled {
            return self.run(grid, position, velocity, trajectory, active_index);
        }

        let ray_key = RayKey { grid_revision: grid.revision(), position, velocity };
        let (time_to_collision, ray_hit) = match self.ray_cache {
            Some((key, value)) if key == ray_key => {
                self.cache_stats.ray_hits += 1;
                value
            }
            _ => {
                self.cache_stats.ray_misses += 1;
                let value = self.march_ray(grid, position, velocity);
                self.ray_cache = Some((ray_key, value));
                value
            }
        };

        let scan_key = ScanKey {
            grid_revision: grid.revision(),
            trajectory_revision,
            trajectory_len: trajectory.len(),
            active_index,
        };
        let (future_collision_seq, scan_hit) = match self.scan_cache {
            Some((key, value)) if key == scan_key => {
                self.cache_stats.scan_hits += 1;
                value
            }
            _ => {
                self.cache_stats.scan_misses += 1;
                let value = self.scan_waypoints(grid, trajectory, active_index);
                self.scan_cache = Some((scan_key, value));
                value
            }
        };

        CollisionEstimate {
            time_to_collision,
            future_collision_seq,
            obstacle_ahead: ray_hit || scan_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::Waypoint;

    fn wall_grid() -> OccupancyGrid {
        let mut grid = OccupancyGrid::new(0.5);
        for y in -4..=4 {
            for z in 0..=6 {
                grid.insert_point(Vec3::new(10.0, y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        grid
    }

    #[test]
    fn clear_path_reports_no_collision() {
        let grid = OccupancyGrid::new(0.5);
        let checker = CollisionChecker::default();
        let estimate =
            checker.run(&grid, Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), &Trajectory::default(), 0);
        assert!(!estimate.obstacle_ahead);
        assert!(estimate.time_to_collision.is_infinite());
        assert_eq!(estimate.future_collision_seq, -1.0);
    }

    #[test]
    fn wall_ahead_yields_finite_time_to_collision() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let speed = 3.0;
        let estimate = checker.run(
            &grid,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(speed, 0.0, 0.0),
            &Trajectory::default(),
            0,
        );
        assert!(estimate.obstacle_ahead);
        assert!(estimate.time_to_collision.is_finite());
        // The wall is ~10 m away; at 3 m/s the TTC is ~3.3 s, within horizon 4 s.
        assert!(estimate.time_to_collision > 2.0 && estimate.time_to_collision < 4.0);
    }

    #[test]
    fn slow_vehicle_does_not_see_far_wall() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let estimate = checker.run(
            &grid,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.5, 0.0, 0.0),
            &Trajectory::default(),
            0,
        );
        // At 0.5 m/s the 4 s horizon only covers 2 m.
        assert!(estimate.time_to_collision.is_infinite());
    }

    /// Six way-points of which #2 and #3 sit inside `wall_grid`'s wall.
    fn straight_trajectory() -> Trajectory {
        let positions = [
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(6.0, 0.0, 1.0),
            Vec3::new(10.0, 0.0, 1.0),
            Vec3::new(10.0, 1.0, 1.0),
            Vec3::new(18.0, 0.0, 1.0),
            Vec3::new(22.0, 0.0, 1.0),
        ];
        Trajectory::new(
            positions
                .into_iter()
                .map(|position| Waypoint { position, ..Waypoint::default() })
                .collect(),
        )
    }

    #[test]
    fn run_cached_matches_run_for_every_revision_state() {
        let mut grid = wall_grid();
        let mut checker = CollisionChecker::default();
        let reference = CollisionChecker::default();
        let mut trajectory = straight_trajectory();
        let position = Vec3::new(0.0, 0.0, 1.0);
        let velocity = Vec3::new(3.0, 0.0, 0.0);

        // Cold, warm (same key) and warm-after-mutation calls all match the
        // uncached kernel bit for bit.  One trajectory mutation per round,
        // so the revision equals the round index.
        for round in 0..3 {
            let trajectory_revision = round as u64;
            for repeat in 0..2 {
                let cached = checker.run_cached(
                    &grid,
                    position,
                    velocity,
                    &trajectory,
                    trajectory_revision,
                    0,
                );
                let fresh = reference.run(&grid, position, velocity, &trajectory, 0);
                assert_eq!(cached, fresh, "round {round} repeat {repeat}");
            }
            // Mutate both cache dimensions between rounds.
            grid.insert_point(Vec3::new(6.0, round as f64, 1.0));
            trajectory.waypoints[round].position.z = 20.0;
        }
    }

    #[test]
    fn run_cached_actually_skips_when_revisions_are_unchanged() {
        // White-box: mutate the trajectory *without* bumping the caller-side
        // revision.  A stale (cached) scan result proves the way-point march
        // was skipped — which is exactly the contract violation the revision
        // counter exists to prevent.
        let grid = wall_grid();
        let mut checker = CollisionChecker::default();
        let mut trajectory = straight_trajectory();
        let warm = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        assert_eq!(warm.future_collision_seq, 2.0, "way-point 2 sits inside the wall");

        // Move the colliding way-point clear of the wall, same length.
        trajectory.waypoints[2].position.y = 15.0;
        let stale = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        assert_eq!(stale.future_collision_seq, 2.0, "unchanged key must not re-scan");

        // Bumping the revision invalidates the scan half.
        let fresh = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 1, 0);
        assert_eq!(fresh.future_collision_seq, 3.0, "way-point 3 is the next one in the wall");
    }

    #[test]
    fn disabling_the_cache_recomputes_every_call() {
        let grid = wall_grid();
        let mut checker = CollisionChecker::default();
        let mut trajectory = straight_trajectory();
        let _ = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        checker.set_cache_enabled(false);
        trajectory.waypoints[2].position.y = 15.0;
        // Same (stale) revision, but the disabled cache recomputes anyway.
        let fresh = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        assert_eq!(fresh.future_collision_seq, 3.0);
    }

    #[test]
    fn cache_stats_count_hits_and_misses_per_half() {
        let grid = wall_grid();
        let mut checker = CollisionChecker::default();
        let trajectory = straight_trajectory();
        assert_eq!(checker.cache_stats(), CollisionCacheStats::default());

        // Cold call: both halves miss.
        let _ = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        let cold = checker.cache_stats();
        assert_eq!((cold.ray_misses, cold.scan_misses), (1, 1));
        assert_eq!(cold.hits(), 0);

        // Warm call with identical keys: both halves hit.
        let _ = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0, 0);
        let warm = checker.cache_stats();
        assert_eq!((warm.ray_hits, warm.scan_hits), (1, 1));
        assert_eq!(warm.lookups(), 4);
        assert_eq!(warm.hit_rate(), 0.5);

        // Bumping the trajectory revision invalidates only the scan half.
        let _ = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 1, 0);
        let split = checker.cache_stats();
        assert_eq!((split.ray_hits, split.scan_hits), (2, 1));
        assert_eq!((split.ray_misses, split.scan_misses), (1, 2));

        // Disabled-cache calls leave the counters untouched.
        checker.set_cache_enabled(false);
        let _ = checker.run_cached(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 1, 0);
        assert_eq!(checker.cache_stats(), split);
    }

    #[test]
    fn future_collision_seq_reports_first_bad_waypoint() {
        let grid = wall_grid();
        let checker = CollisionChecker::default();
        let trajectory = Trajectory::new(vec![
            Waypoint { position: Vec3::new(2.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(6.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(10.0, 0.0, 1.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(14.0, 0.0, 1.0), ..Waypoint::default() },
        ]);
        let estimate = checker.run(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 0);
        assert_eq!(estimate.future_collision_seq, 2.0);
        assert!(estimate.obstacle_ahead);

        // Starting the scan beyond the colliding way-point skips it.
        let estimate_late = checker.run(&grid, Vec3::ZERO, Vec3::ZERO, &trajectory, 3);
        assert_eq!(estimate_late.future_collision_seq, -1.0);
    }
}
