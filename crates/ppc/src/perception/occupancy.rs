//! Voxel occupancy map, the OctoMap stand-in.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use mavfi_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::states::PointCloud;

/// Integer voxel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VoxelKey {
    /// Voxel index along X.
    pub x: i64,
    /// Voxel index along Y.
    pub y: i64,
    /// Voxel index along Z.
    pub z: i64,
}

/// Deterministic multiplicative hasher for voxel keys (FxHash-style).
///
/// Voxel lookups dominate the per-tick cost of the collision-check kernel
/// (every sample probes a neighbourhood of voxels), and the standard
/// library's SipHash spends more time hashing the 24-byte key than the table
/// probe costs.  Nothing here needs SipHash's DoS resistance — keys are
/// simulation geometry, not attacker input — so a fixed multiply-xor mix
/// keeps lookups cheap and, unlike `RandomState`, is identical across
/// processes.
#[derive(Debug, Clone, Copy, Default)]
pub struct VoxelHasher(u64);

impl Hasher for VoxelHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by `VoxelKey`, whose derived `Hash`
        // dispatches to `write_i64`).
        for &byte in bytes {
            self.add(u64::from(byte));
        }
    }

    fn write_i64(&mut self, value: i64) {
        self.add(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

impl VoxelHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn add(&mut self, value: u64) {
        self.0 = (self.0.rotate_left(5) ^ value).wrapping_mul(Self::SEED);
    }
}

/// The voxel set type: a standard `HashSet` with the deterministic
/// [`VoxelHasher`].
type VoxelSet = HashSet<VoxelKey, BuildHasherDefault<VoxelHasher>>;

/// Chebyshev radius (in voxels) of the near-obstacle mask kept alongside the
/// occupied set: every cell within this many voxels of an occupied voxel is
/// marked.  [`OccupancyGrid::is_occupied_near`] queries whose inflation cube
/// fits inside this radius (`ceil(margin / resolution) <=` this) reject
/// free-space points with a single set probe instead of scanning the whole
/// cube.  Two voxels covers every margin the pipeline uses (planner margin
/// 0.7 m at 0.5 m resolution); larger margins simply skip the fast path.
const NEAR_MASK_STEPS: i64 = 2;

/// A sparse voxel occupancy grid built incrementally from point clouds.
///
/// The paper's OctoMap node plays exactly this role: turn point clouds into
/// a queryable obstacle representation for collision checking and motion
/// planning.  A hash-set-of-voxels keeps the behaviourally relevant property
/// (local obstacle queries, incremental updates, bounded resolution) without
/// the octree machinery.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::perception::OccupancyGrid;
/// use mavfi_sim::geometry::Vec3;
///
/// let mut grid = OccupancyGrid::new(0.5);
/// grid.insert_point(Vec3::new(1.0, 2.0, 3.0));
/// assert!(grid.is_occupied(Vec3::new(1.1, 2.1, 3.1)));
/// assert!(!grid.is_occupied(Vec3::new(5.0, 5.0, 5.0)));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    resolution: f64,
    voxels: VoxelSet,
    /// Cells within [`NEAR_MASK_STEPS`] voxels (Chebyshev) of any voxel that
    /// has *ever* been occupied since the last [`OccupancyGrid::clear`].
    /// Maintained on insertion only: removals leave stale marks, which keeps
    /// the mask a superset of the true dilation — exactly what the
    /// fast-reject in [`OccupancyGrid::is_occupied_near`] needs (an unmarked
    /// cell provably has no occupied voxel in reach; a stale mark merely
    /// falls through to the exact scan).  Derived state: excluded from
    /// equality and the wire format, rebuilt on deserialization.
    near_mask: VoxelSet,
    /// Monotonic mutation counter: bumped every time the occupied voxel set
    /// actually changes (inserting an already-occupied voxel or removing a
    /// free one does not count).  Consumers such as the
    /// [`CollisionChecker`](crate::perception::CollisionChecker) key caches
    /// on it: an unchanged revision guarantees every occupancy query would
    /// return exactly what it returned before.
    revision: u64,
}

/// Equality is *logical* — same resolution and same occupied voxel set.  The
/// revision counter is bookkeeping (two grids that reached the same contents
/// through different edit histories are equal).
impl PartialEq for OccupancyGrid {
    fn eq(&self, other: &Self) -> bool {
        self.resolution == other.resolution && self.voxels == other.voxels
    }
}

/// Like `PartialEq`, the wire format carries only the logical state
/// (resolution + voxels): the revision counter is per-instance memoisation
/// bookkeeping, meaningless across processes, so a deserialized grid starts
/// a fresh revision history at 0.  Voxels are written in sorted key order —
/// the set's iteration order depends on insertion history, which would
/// otherwise leak edit history into the wire form — so logically equal
/// grids serialize identically.
impl Serialize for OccupancyGrid {
    fn to_value(&self) -> serde::Value {
        let mut voxels: Vec<VoxelKey> = self.voxels.iter().copied().collect();
        voxels.sort_unstable();
        serde::Value::Map(vec![
            ("resolution".to_owned(), self.resolution.to_value()),
            ("voxels".to_owned(), voxels.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for OccupancyGrid {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let map =
            value.as_map().ok_or_else(|| serde::Error::msg("expected a map for OccupancyGrid"))?;
        let mut grid = Self {
            resolution: serde::from_field(map, "resolution")?,
            voxels: serde::from_field(map, "voxels")?,
            near_mask: VoxelSet::default(),
            revision: 0,
        };
        for key in grid.voxels.iter().copied().collect::<Vec<_>>() {
            grid.mark_near(key);
        }
        Ok(grid)
    }
}

impl OccupancyGrid {
    /// Creates an empty grid with the given voxel edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive and finite.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0 && resolution.is_finite(), "voxel resolution must be positive");
        Self {
            resolution,
            voxels: VoxelSet::default(),
            near_mask: VoxelSet::default(),
            revision: 0,
        }
    }

    /// Marks every cell within [`NEAR_MASK_STEPS`] of a newly occupied voxel
    /// (saturating at the key range edge, matching the saturated probe cube
    /// of [`OccupancyGrid::is_occupied_near`]).
    fn mark_near(&mut self, key: VoxelKey) {
        for dx in -NEAR_MASK_STEPS..=NEAR_MASK_STEPS {
            for dy in -NEAR_MASK_STEPS..=NEAR_MASK_STEPS {
                for dz in -NEAR_MASK_STEPS..=NEAR_MASK_STEPS {
                    self.near_mask.insert(VoxelKey {
                        x: key.x.saturating_add(dx),
                        y: key.y.saturating_add(dy),
                        z: key.z.saturating_add(dz),
                    });
                }
            }
        }
    }

    /// Voxel edge length (m).
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The grid's monotonic mutation counter.
    ///
    /// Two reads returning the same value bracket a window in which no voxel
    /// was added or removed, so any occupancy query repeated inside the
    /// window returns a bit-identical result.  The counter only moves on
    /// *effective* mutations: re-inserting an occupied voxel (the common
    /// case when a hovering vehicle re-observes the same obstacles every
    /// tick) leaves it untouched.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.voxels.len()
    }

    /// Returns `true` when no voxel is occupied.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Converts a world point to its voxel key.
    pub fn key_for(&self, point: Vec3) -> VoxelKey {
        VoxelKey {
            x: (point.x / self.resolution).floor() as i64,
            y: (point.y / self.resolution).floor() as i64,
            z: (point.z / self.resolution).floor() as i64,
        }
    }

    /// Center of a voxel in world coordinates.
    pub fn voxel_center(&self, key: VoxelKey) -> Vec3 {
        Vec3::new(
            (key.x as f64 + 0.5) * self.resolution,
            (key.y as f64 + 0.5) * self.resolution,
            (key.z as f64 + 0.5) * self.resolution,
        )
    }

    /// Marks the voxel containing `point` as occupied.  Non-finite points
    /// are ignored (they cannot be mapped to a voxel).
    pub fn insert_point(&mut self, point: Vec3) {
        if point.is_finite() {
            let key = self.key_for(point);
            if self.voxels.insert(key) {
                self.revision += 1;
                self.mark_near(key);
            }
        }
    }

    /// Inserts every point of a cloud.
    pub fn insert_cloud(&mut self, cloud: &PointCloud) {
        for &point in &cloud.points {
            self.insert_point(point);
        }
    }

    /// Directly sets a voxel's occupancy (used by kernel-level fault
    /// injection to flip voxels, and by recovery to undo it).  Returns the
    /// previous occupancy.
    pub fn set_voxel(&mut self, key: VoxelKey, occupied: bool) -> bool {
        let was_occupied =
            if occupied { !self.voxels.insert(key) } else { self.voxels.remove(&key) };
        if was_occupied != occupied {
            self.revision += 1;
            if occupied {
                self.mark_near(key);
            }
            // Removal leaves the near mask untouched: stale marks only send
            // queries down the exact scan, never change what it returns.
        }
        was_occupied
    }

    /// Returns `true` if the voxel containing `point` is occupied.
    pub fn is_occupied(&self, point: Vec3) -> bool {
        point.is_finite() && self.voxels.contains(&self.key_for(point))
    }

    /// Returns `true` if any voxel within `margin` meters of `point` is
    /// occupied (a cheap obstacle-inflation query).
    ///
    /// This is the hottest query in the pipeline (the collision-check kernel
    /// probes it for every marched sample, and the sampling-based planners
    /// march hundreds of thousands of segment samples per replan).  Two
    /// result-preserving cuts keep it cheap:
    ///
    /// * **Near-mask fast reject**: when the inflation cube fits inside the
    ///   mask radius, a point whose cell is unmarked provably has no
    ///   occupied voxel in reach — one set probe answers the common
    ///   free-space case that otherwise scans the whole cube.
    /// * **Spherical pruning**: candidate voxels are pruned by squared
    ///   distance *before* the set lookup — most of the cubic neighbourhood
    ///   lies outside the spherical reach, and a few float multiplies are
    ///   far cheaper than hashing a key.  The pruning bound is slightly
    ///   inflated so boundary candidates still reach the exact
    ///   `distance <= margin + resolution` test below, keeping results
    ///   bit-identical to the unpruned scan.
    pub fn is_occupied_near(&self, point: Vec3, margin: f64) -> bool {
        if !point.is_finite() || self.voxels.is_empty() {
            return false;
        }
        let steps = (margin / self.resolution).ceil() as i64;
        let center = self.key_for(point);
        if steps <= NEAR_MASK_STEPS && !self.near_mask.contains(&center) {
            return false;
        }
        let reach = margin + self.resolution;
        let prune_sq = (reach * reach) * (1.0 + 1e-9);
        for dx in -steps..=steps {
            // Saturate: fault injection can corrupt coordinates to the edge
            // of the i64 key range, where plain addition overflows.
            let x = center.x.saturating_add(dx);
            let ox = (x as f64 + 0.5) * self.resolution - point.x;
            let ox_sq = ox * ox;
            if ox_sq > prune_sq {
                continue;
            }
            for dy in -steps..=steps {
                let y = center.y.saturating_add(dy);
                let oy = (y as f64 + 0.5) * self.resolution - point.y;
                let oxy_sq = ox_sq + oy * oy;
                if oxy_sq > prune_sq {
                    continue;
                }
                for dz in -steps..=steps {
                    let z = center.z.saturating_add(dz);
                    let oz = (z as f64 + 0.5) * self.resolution - point.z;
                    if oxy_sq + oz * oz > prune_sq {
                        continue;
                    }
                    let key = VoxelKey { x, y, z };
                    if self.voxels.contains(&key) && self.voxel_center(key).distance(point) <= reach
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Returns `true` if the straight segment from `a` to `b`, inflated by
    /// `margin`, touches no occupied voxel.
    ///
    /// Samples [`OccupancyGrid::is_occupied_near`] every half resolution
    /// along the segment; free-space samples cost one near-mask probe each,
    /// so only the stretches of a segment that actually pass close to
    /// obstacles pay for neighbourhood scans.
    pub fn segment_free(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        if self.voxels.is_empty() {
            return true;
        }
        let length = a.distance(b);
        let step = (self.resolution * 0.5).max(1e-3);
        let count = (length / step).ceil() as usize;
        for i in 0..=count {
            let t = if count == 0 { 0.0 } else { i as f64 / count as f64 };
            let sample = a.lerp(b, t);
            if self.is_occupied_near(sample, margin) {
                return false;
            }
        }
        true
    }

    /// Iterates over the occupied voxel keys in an arbitrary but stable
    /// order within one program run.
    pub fn occupied_voxels(&self) -> impl Iterator<Item = VoxelKey> + '_ {
        self.voxels.iter().copied()
    }

    /// Removes every voxel.
    pub fn clear(&mut self) {
        if !self.voxels.is_empty() {
            self.revision += 1;
        }
        self.voxels.clear();
        self.near_mask.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_roundtrip() {
        let mut grid = OccupancyGrid::new(0.5);
        assert!(grid.is_empty());
        grid.insert_point(Vec3::new(0.9, 0.9, 0.9));
        assert_eq!(grid.occupied_count(), 1);
        assert!(grid.is_occupied(Vec3::new(0.6, 0.7, 0.8)));
        assert!(!grid.is_occupied(Vec3::new(1.1, 0.7, 0.8)));
    }

    #[test]
    fn cloud_insertion_deduplicates_voxels() {
        let mut grid = OccupancyGrid::new(1.0);
        let cloud = PointCloud::new(vec![
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(0.9, 0.9, 0.9),
            Vec3::new(2.5, 0.0, 0.0),
        ]);
        grid.insert_cloud(&cloud);
        assert_eq!(grid.occupied_count(), 2);
    }

    #[test]
    fn non_finite_points_are_ignored() {
        let mut grid = OccupancyGrid::new(0.5);
        grid.insert_point(Vec3::new(f64::NAN, 0.0, 0.0));
        grid.insert_point(Vec3::new(f64::INFINITY, 0.0, 0.0));
        assert!(grid.is_empty());
        assert!(!grid.is_occupied(Vec3::new(f64::NAN, 0.0, 0.0)));
    }

    #[test]
    fn set_voxel_flips_occupancy() {
        let mut grid = OccupancyGrid::new(0.5);
        let key = grid.key_for(Vec3::new(3.0, 3.0, 3.0));
        assert!(!grid.set_voxel(key, true));
        assert!(grid.is_occupied(Vec3::new(3.1, 3.1, 3.1)));
        assert!(grid.set_voxel(key, false));
        assert!(!grid.is_occupied(Vec3::new(3.1, 3.1, 3.1)));
    }

    #[test]
    fn segment_free_detects_blocking_voxel() {
        let mut grid = OccupancyGrid::new(0.5);
        grid.insert_point(Vec3::new(5.0, 0.0, 0.0));
        assert!(!grid.segment_free(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 0.3));
        assert!(grid.segment_free(Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0), 0.3));
        assert!(grid.segment_free(Vec3::new(0.0, 5.0, 0.0), Vec3::new(10.0, 5.0, 0.0), 0.3));
    }

    #[test]
    fn inflation_margin_extends_reach() {
        let mut grid = OccupancyGrid::new(0.5);
        grid.insert_point(Vec3::new(2.0, 2.0, 2.0));
        assert!(!grid.is_occupied_near(Vec3::new(3.4, 2.0, 2.0), 0.4));
        assert!(grid.is_occupied_near(Vec3::new(3.4, 2.0, 2.0), 1.5));
    }

    #[test]
    fn clear_removes_everything() {
        let mut grid = OccupancyGrid::new(1.0);
        grid.insert_point(Vec3::ZERO);
        grid.clear();
        assert!(grid.is_empty());
    }

    #[test]
    fn revision_moves_only_on_effective_mutations() {
        let mut grid = OccupancyGrid::new(0.5);
        assert_eq!(grid.revision(), 0);

        grid.insert_point(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(grid.revision(), 1);
        // Re-observing the same voxel is a no-op for the counter.
        grid.insert_point(Vec3::new(1.1, 1.1, 1.1));
        assert_eq!(grid.revision(), 1);

        let key = grid.key_for(Vec3::new(1.0, 1.0, 1.0));
        assert!(grid.set_voxel(key, true), "already occupied");
        assert_eq!(grid.revision(), 1, "setting an occupied voxel occupied is not a mutation");
        assert!(grid.set_voxel(key, false));
        assert_eq!(grid.revision(), 2);
        assert!(!grid.set_voxel(key, false), "already free");
        assert_eq!(grid.revision(), 2, "clearing a free voxel is not a mutation");

        grid.clear();
        assert_eq!(grid.revision(), 2, "clearing an empty grid is not a mutation");
        grid.insert_point(Vec3::ZERO);
        grid.clear();
        assert_eq!(grid.revision(), 4, "insert + non-empty clear are two mutations");
    }

    #[test]
    fn serialization_carries_logical_state_only() {
        let mut a = OccupancyGrid::new(0.5);
        let mut b = OccupancyGrid::new(0.5);
        // Same contents reached through different edit histories *and*
        // insertion orders: the revision differs and the sets may iterate
        // differently, but the wire form (sorted keys, no revision) must
        // not see either.
        let points = [Vec3::ZERO, Vec3::new(3.0, 3.0, 3.0), Vec3::new(-2.0, 1.0, 4.0)];
        for point in points {
            a.insert_point(point);
        }
        b.insert_point(Vec3::new(9.0, 9.0, 9.0));
        b.clear();
        for point in points.iter().rev() {
            b.insert_point(*point);
        }
        assert_ne!(a.revision(), b.revision());
        assert_eq!(a.to_value(), b.to_value());
        // A round trip restores the logical state with a fresh revision
        // history.
        let restored = OccupancyGrid::from_value(&b.to_value()).expect("round trip");
        assert_eq!(restored, b);
        assert_eq!(restored.revision(), 0);
        assert_eq!(restored.resolution(), 0.5);
    }

    #[test]
    fn equality_ignores_the_revision_counter() {
        let mut a = OccupancyGrid::new(0.5);
        let mut b = OccupancyGrid::new(0.5);
        a.insert_point(Vec3::ZERO);
        // `b` reaches the same contents through a longer edit history.
        b.insert_point(Vec3::new(5.0, 5.0, 5.0));
        b.clear();
        b.insert_point(Vec3::ZERO);
        assert_ne!(a.revision(), b.revision());
        assert_eq!(a, b);
    }

    /// The definition `is_occupied_near` must match regardless of which
    /// internal cut (near mask, spherical prune) answers: an occupied voxel
    /// within `ceil(margin/resolution)` voxels (Chebyshev) of the point's
    /// cell whose center lies within `margin + resolution` of the point.
    fn occupied_near_reference(grid: &OccupancyGrid, point: Vec3, margin: f64) -> bool {
        if !point.is_finite() {
            return false;
        }
        let steps = (margin / grid.resolution()).ceil() as i64;
        let center = grid.key_for(point);
        let reach = margin + grid.resolution();
        grid.occupied_voxels().any(|voxel| {
            (voxel.x - center.x).abs() <= steps
                && (voxel.y - center.y).abs() <= steps
                && (voxel.z - center.z).abs() <= steps
                && grid.voxel_center(voxel).distance(point) <= reach
        })
    }

    /// A grid with scattered occupied voxels and a deterministic probe
    /// sweep dense enough to land on mask boundaries, reach boundaries and
    /// deep free space.
    fn probed_grid() -> (OccupancyGrid, Vec<Vec3>) {
        let mut grid = OccupancyGrid::new(0.5);
        for i in 0..40_i64 {
            let f = i as f64;
            grid.insert_point(Vec3::new(
                (f * 0.37).sin() * 9.0,
                (f * 0.71).cos() * 9.0,
                (f * 0.23).sin() * 4.0,
            ));
        }
        let mut probes = Vec::new();
        for i in 0..400_i64 {
            let f = i as f64;
            probes.push(Vec3::new(
                (f * 0.91).cos() * 11.0,
                (f * 0.47).sin() * 11.0,
                (f * 0.29).cos() * 5.0,
            ));
        }
        (grid, probes)
    }

    /// The near-mask fast reject and the spherical prune are result-free
    /// cuts: every probe, at margins inside and outside the mask radius,
    /// must agree with the unpruned definition.
    #[test]
    fn occupied_near_matches_the_unpruned_definition() {
        let (grid, probes) = probed_grid();
        // steps = 1, 2 exercise the mask fast path; 3 bypasses it.
        for margin in [0.4, 0.7, 1.0, 1.4] {
            for &probe in &probes {
                assert_eq!(
                    grid.is_occupied_near(probe, margin),
                    occupied_near_reference(&grid, probe, margin),
                    "probe {probe:?} margin {margin}"
                );
            }
        }
    }

    /// Removals leave stale near-mask marks by design; those must never
    /// change an answer (they only route queries down the exact scan).
    #[test]
    fn occupied_near_stays_exact_after_removals() {
        let (mut grid, probes) = probed_grid();
        // Remove every third occupied voxel, as fault recovery does.
        let mut victims: Vec<VoxelKey> = grid.occupied_voxels().collect();
        victims.sort_unstable();
        for key in victims.into_iter().step_by(3) {
            grid.set_voxel(key, false);
        }
        for margin in [0.7, 1.0] {
            for &probe in &probes {
                assert_eq!(
                    grid.is_occupied_near(probe, margin),
                    occupied_near_reference(&grid, probe, margin),
                    "probe {probe:?} margin {margin} after removals"
                );
            }
        }
    }

    /// The near mask is derived state: a deserialized grid (which carries
    /// only resolution + voxels) must answer identically to the original.
    #[test]
    fn occupied_near_survives_a_serde_round_trip() {
        let (grid, probes) = probed_grid();
        let restored = OccupancyGrid::from_value(&grid.to_value()).expect("round trip");
        for &probe in &probes {
            assert_eq!(
                restored.is_occupied_near(probe, 0.7),
                grid.is_occupied_near(probe, 0.7),
                "probe {probe:?}"
            );
        }
    }

    /// `clear` must also reset the near mask, or a fresh grid would route
    /// every query through the exact scan forever (perf) — and, worse, a
    /// rebuilt grid at a different resolution would consult marks from the
    /// old geometry.
    #[test]
    fn clear_resets_the_near_mask() {
        let (mut grid, probes) = probed_grid();
        grid.clear();
        assert!(grid.is_empty());
        for &probe in &probes {
            assert!(!grid.is_occupied_near(probe, 0.7));
        }
        // Re-inserting after a clear rebuilds marks for the new contents.
        grid.insert_point(Vec3::ZERO);
        assert!(grid.is_occupied_near(Vec3::new(0.5, 0.5, 0.5), 0.7));
        assert!(!grid.is_occupied_near(Vec3::new(6.0, 6.0, 6.0), 0.7));
    }

    #[test]
    fn voxel_center_is_inside_its_voxel() {
        let grid = OccupancyGrid::new(0.4);
        let key = grid.key_for(Vec3::new(-1.3, 2.7, 0.05));
        let center = grid.voxel_center(key);
        assert_eq!(grid.key_for(center), key);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = OccupancyGrid::new(0.0);
    }
}
