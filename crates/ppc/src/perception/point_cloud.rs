//! Point-cloud generation kernel (the "P.C. Gen." node).

use mavfi_sim::sensors::DepthFrame;
use serde::{Deserialize, Serialize};

use crate::states::PointCloud;

/// Converts raw depth frames into the point cloud consumed by the occupancy
/// map, optionally down-sampling to bound downstream cost.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::perception::PointCloudGenerator;
/// use mavfi_sim::sensors::DepthFrame;
/// use mavfi_sim::geometry::Vec3;
///
/// let generator = PointCloudGenerator::new(2);
/// let frame = DepthFrame { points: vec![Vec3::ZERO; 10], rays_cast: 10 };
/// assert_eq!(generator.run(&frame).len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointCloudGenerator {
    stride: usize,
}

impl Default for PointCloudGenerator {
    fn default() -> Self {
        Self { stride: 1 }
    }
}

impl PointCloudGenerator {
    /// Creates a generator that keeps every `stride`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "down-sampling stride must be positive");
        Self { stride }
    }

    /// Down-sampling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Converts one depth frame into a point cloud.
    pub fn run(&self, frame: &DepthFrame) -> PointCloud {
        let mut cloud = PointCloud::default();
        self.run_into(frame, &mut cloud);
        cloud
    }

    /// [`PointCloudGenerator::run`] into a caller-provided cloud, reusing
    /// its point storage (allocation-free in steady state, bit-identical
    /// output).
    pub fn run_into(&self, frame: &DepthFrame, cloud: &mut PointCloud) {
        cloud.points.clear();
        cloud.points.extend(
            frame.points.iter().step_by(self.stride).copied().filter(|point| point.is_finite()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::geometry::Vec3;

    #[test]
    fn keeps_all_points_with_unit_stride() {
        let frame = DepthFrame {
            points: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)],
            rays_cast: 4,
        };
        let cloud = PointCloudGenerator::default().run(&frame);
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud.points[1], Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn filters_non_finite_points() {
        let frame = DepthFrame {
            points: vec![Vec3::new(f64::NAN, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0)],
            rays_cast: 2,
        };
        let cloud = PointCloudGenerator::default().run(&frame);
        assert_eq!(cloud.len(), 1);
    }

    #[test]
    fn empty_frame_yields_empty_cloud() {
        let cloud = PointCloudGenerator::new(3).run(&DepthFrame::default());
        assert!(cloud.is_empty());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = PointCloudGenerator::new(0);
    }
}
