//! Inter-kernel state types exchanged between the PPC stages, and the
//! 13-dimensional monitored state vector the detectors supervise.

use mavfi_sim::geometry::Vec3;
use mavfi_sim::vehicle::FlightCommand;
use serde::{Deserialize, Serialize};

/// The three stages of the perception-planning-control pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Sensing and obstacle understanding.
    Perception,
    /// Path and trajectory generation.
    Planning,
    /// Trajectory tracking and command issue.
    Control,
}

impl Stage {
    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = 3;

    /// All stages, in pipeline order.
    pub const ALL: [Self; Self::COUNT] = [Self::Perception, Self::Planning, Self::Control];

    /// The stage's position in [`Stage::ALL`]: the canonical dense index
    /// used by array-backed per-stage counters instead of hashing.
    pub const fn index(self) -> usize {
        match self {
            Self::Perception => 0,
            Self::Planning => 1,
            Self::Control => 2,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Perception => "Perception",
            Self::Planning => "Planning",
            Self::Control => "Control",
        }
    }
}

/// A point cloud in the world frame, the output of the point-cloud
/// generation kernel.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PointCloud {
    /// Points in the world frame.
    pub points: Vec<Vec3>,
}

impl PointCloud {
    /// Creates a point cloud from points.
    pub fn new(points: Vec<Vec3>) -> Self {
        Self { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the cloud contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Output of the collision-check kernel: the perception-stage inter-kernel
/// state corrupted in the paper's Fig. 4 (`time_to_collision`,
/// `future_collision_seq`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionEstimate {
    /// Estimated seconds until the vehicle hits the nearest obstacle along
    /// its velocity vector; `f64::INFINITY` when the path ahead is clear.
    pub time_to_collision: f64,
    /// Index (sequence number) of the first future trajectory way-point that
    /// is predicted to be in collision; negative when none is.
    pub future_collision_seq: f64,
    /// Whether an obstacle currently blocks the direction of travel inside
    /// the safety horizon.
    pub obstacle_ahead: bool,
}

impl Default for CollisionEstimate {
    fn default() -> Self {
        Self { time_to_collision: f64::INFINITY, future_collision_seq: -1.0, obstacle_ahead: false }
    }
}

/// One multi-degree-of-freedom trajectory point ("multidoftraj" in the
/// paper's ROS graph): position, yaw and the velocity the vehicle should
/// carry through the way-point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Waypoint {
    /// Target position (m).
    pub position: Vec3,
    /// Target yaw (rad).
    pub yaw: f64,
    /// Desired velocity through the way-point (m/s).
    pub velocity: Vec3,
}

/// A time-ordered sequence of way-points, the planning-stage output.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// Way-points in flight order.
    pub waypoints: Vec<Waypoint>,
}

impl Trajectory {
    /// Creates a trajectory from way-points.
    pub fn new(waypoints: Vec<Waypoint>) -> Self {
        Self { waypoints }
    }

    /// Number of way-points.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Returns `true` when the trajectory has no way-points.
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// Total path length along the way-points (m).
    pub fn path_length(&self) -> f64 {
        self.waypoints.windows(2).map(|pair| pair[0].position.distance(pair[1].position)).sum()
    }

    /// Index of the way-point closest to `position`.
    pub fn closest_index(&self, position: Vec3) -> Option<usize> {
        self.waypoints
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.position
                    .distance(position)
                    .partial_cmp(&b.position.distance(position))
                    .expect("way-point distances are finite")
            })
            .map(|(index, _)| index)
    }
}

/// The identifiers of the 13 monitored inter-kernel scalar states.
///
/// These are the fields the paper's Fig. 4 corrupts individually and the 13
/// inputs of the AAD autoencoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StateField {
    /// Perception: estimated time to collision (s).
    TimeToCollision,
    /// Perception: index of the first colliding future way-point.
    FutureCollisionSeq,
    /// Planning: active way-point X (m).
    WaypointX,
    /// Planning: active way-point Y (m).
    WaypointY,
    /// Planning: active way-point Z (m).
    WaypointZ,
    /// Planning: active way-point yaw (rad).
    WaypointYaw,
    /// Planning: way-point velocity X (m/s).
    WaypointVx,
    /// Planning: way-point velocity Y (m/s).
    WaypointVy,
    /// Planning: way-point velocity Z (m/s).
    WaypointVz,
    /// Control: commanded velocity X (m/s).
    CommandVx,
    /// Control: commanded velocity Y (m/s).
    CommandVy,
    /// Control: commanded velocity Z (m/s).
    CommandVz,
    /// Control: commanded yaw rate (rad/s).
    CommandYawRate,
}

impl StateField {
    /// Every monitored field, in the fixed order used by the detectors.
    pub const ALL: [Self; 13] = [
        Self::TimeToCollision,
        Self::FutureCollisionSeq,
        Self::WaypointX,
        Self::WaypointY,
        Self::WaypointZ,
        Self::WaypointYaw,
        Self::WaypointVx,
        Self::WaypointVy,
        Self::WaypointVz,
        Self::CommandVx,
        Self::CommandVy,
        Self::CommandVz,
        Self::CommandYawRate,
    ];

    /// The pipeline stage that produces this field.
    pub fn stage(self) -> Stage {
        match self {
            Self::TimeToCollision | Self::FutureCollisionSeq => Stage::Perception,
            Self::WaypointX
            | Self::WaypointY
            | Self::WaypointZ
            | Self::WaypointYaw
            | Self::WaypointVx
            | Self::WaypointVy
            | Self::WaypointVz => Stage::Planning,
            Self::CommandVx | Self::CommandVy | Self::CommandVz | Self::CommandYawRate => {
                Stage::Control
            }
        }
    }

    /// Position of the field inside [`MonitoredStates::as_array`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|field| *field == self).expect("field is in ALL")
    }

    /// Short snake_case name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::TimeToCollision => "time_to_collision",
            Self::FutureCollisionSeq => "future_collision_seq",
            Self::WaypointX => "waypoint_x",
            Self::WaypointY => "waypoint_y",
            Self::WaypointZ => "waypoint_z",
            Self::WaypointYaw => "waypoint_yaw",
            Self::WaypointVx => "waypoint_vx",
            Self::WaypointVy => "waypoint_vy",
            Self::WaypointVz => "waypoint_vz",
            Self::CommandVx => "command_vx",
            Self::CommandVy => "command_vy",
            Self::CommandVz => "command_vz",
            Self::CommandYawRate => "command_yaw_rate",
        }
    }
}

/// Snapshot of the 13 monitored inter-kernel states for one pipeline tick.
///
/// This is the value the anomaly detectors consume (after preprocessing) and
/// the value whose fields the state-level fault injector corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MonitoredStates {
    /// Perception-stage collision estimate.
    pub collision: CollisionEstimate,
    /// Planning-stage active way-point.
    pub waypoint: Waypoint,
    /// Control-stage flight command.
    pub command: FlightCommand,
}

impl MonitoredStates {
    /// Number of monitored scalar fields.
    pub const DIM: usize = 13;

    /// Reads a field by identifier.
    pub fn field(&self, field: StateField) -> f64 {
        match field {
            StateField::TimeToCollision => self.collision.time_to_collision,
            StateField::FutureCollisionSeq => self.collision.future_collision_seq,
            StateField::WaypointX => self.waypoint.position.x,
            StateField::WaypointY => self.waypoint.position.y,
            StateField::WaypointZ => self.waypoint.position.z,
            StateField::WaypointYaw => self.waypoint.yaw,
            StateField::WaypointVx => self.waypoint.velocity.x,
            StateField::WaypointVy => self.waypoint.velocity.y,
            StateField::WaypointVz => self.waypoint.velocity.z,
            StateField::CommandVx => self.command.velocity.x,
            StateField::CommandVy => self.command.velocity.y,
            StateField::CommandVz => self.command.velocity.z,
            StateField::CommandYawRate => self.command.yaw_rate,
        }
    }

    /// Writes a field by identifier.
    pub fn set_field(&mut self, field: StateField, value: f64) {
        match field {
            StateField::TimeToCollision => self.collision.time_to_collision = value,
            StateField::FutureCollisionSeq => self.collision.future_collision_seq = value,
            StateField::WaypointX => self.waypoint.position.x = value,
            StateField::WaypointY => self.waypoint.position.y = value,
            StateField::WaypointZ => self.waypoint.position.z = value,
            StateField::WaypointYaw => self.waypoint.yaw = value,
            StateField::WaypointVx => self.waypoint.velocity.x = value,
            StateField::WaypointVy => self.waypoint.velocity.y = value,
            StateField::WaypointVz => self.waypoint.velocity.z = value,
            StateField::CommandVx => self.command.velocity.x = value,
            StateField::CommandVy => self.command.velocity.y = value,
            StateField::CommandVz => self.command.velocity.z = value,
            StateField::CommandYawRate => self.command.yaw_rate = value,
        }
    }

    /// Returns the 13 monitored values in the canonical [`StateField::ALL`]
    /// order.  Non-finite values (for example an infinite time-to-collision
    /// on a clear path) are squashed to a large sentinel so that downstream
    /// statistics stay well defined.
    pub fn as_array(&self) -> [f64; Self::DIM] {
        let mut values = [0.0; Self::DIM];
        for (slot, field) in values.iter_mut().zip(StateField::ALL) {
            let raw = self.field(field);
            *slot = if raw.is_finite() { raw } else { raw.signum() * 1.0e6 };
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_round_trip_for_every_field() {
        let mut states = MonitoredStates::default();
        for (i, field) in StateField::ALL.into_iter().enumerate() {
            states.set_field(field, i as f64 + 0.5);
        }
        for (i, field) in StateField::ALL.into_iter().enumerate() {
            assert_eq!(states.field(field), i as f64 + 0.5, "{field:?}");
            assert_eq!(field.index(), i);
        }
    }

    #[test]
    fn field_stages_cover_all_three_stages() {
        let mut perception = 0;
        let mut planning = 0;
        let mut control = 0;
        for field in StateField::ALL {
            match field.stage() {
                Stage::Perception => perception += 1,
                Stage::Planning => planning += 1,
                Stage::Control => control += 1,
            }
        }
        assert_eq!(perception, 2);
        assert_eq!(planning, 7);
        assert_eq!(control, 4);
        assert_eq!(perception + planning + control, MonitoredStates::DIM);
    }

    #[test]
    fn as_array_squashes_non_finite_values() {
        let states = MonitoredStates::default();
        let array = states.as_array();
        assert_eq!(array.len(), 13);
        assert!(array.iter().all(|v| v.is_finite()));
        assert_eq!(array[StateField::TimeToCollision.index()], 1.0e6);
    }

    #[test]
    fn trajectory_metrics() {
        let trajectory = Trajectory::new(vec![
            Waypoint { position: Vec3::ZERO, ..Waypoint::default() },
            Waypoint { position: Vec3::new(3.0, 4.0, 0.0), ..Waypoint::default() },
            Waypoint { position: Vec3::new(3.0, 4.0, 5.0), ..Waypoint::default() },
        ]);
        assert_eq!(trajectory.len(), 3);
        assert!((trajectory.path_length() - 10.0).abs() < 1e-12);
        assert_eq!(trajectory.closest_index(Vec3::new(2.9, 4.0, 0.1)), Some(1));
        assert_eq!(Trajectory::default().closest_index(Vec3::ZERO), None);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            StateField::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), StateField::ALL.len());
        assert_eq!(Stage::Perception.label(), "Perception");
    }

    #[test]
    fn collision_estimate_default_is_clear() {
        let estimate = CollisionEstimate::default();
        assert!(!estimate.obstacle_ahead);
        assert!(estimate.time_to_collision.is_infinite());
        assert_eq!(estimate.future_collision_seq, -1.0);
    }
}
