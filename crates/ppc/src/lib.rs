//! `mavfi-ppc` implements the perception-planning-control (PPC) pipeline of
//! the MAVFI paper: point-cloud generation, occupancy mapping, collision
//! checking, RRT/RRT-Connect/RRT* motion planning with smoothing and
//! trajectory generation, and path-tracking/PID control — wired together by
//! [`pipeline::PpcPipeline`], with [`tap::StageTap`] hooks where the fault
//! injector and the anomaly detectors attach.
//!
//! # Examples
//!
//! ```
//! use mavfi_ppc::prelude::*;
//! use mavfi_sim::prelude::*;
//!
//! let env = EnvironmentKind::Sparse.build(1);
//! let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 1);
//! let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
//! let world = World::new(env, QuadrotorParams::default(), PowerModel::default(), MissionConfig::default());
//! let frame = DepthCamera::default().capture(world.environment(), &world.vehicle().pose());
//! let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
//! assert!(tick.command.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod kernel;
pub mod perception;
pub mod pipeline;
pub mod planning;
pub mod states;
pub mod tap;

pub use kernel::KernelId;
pub use perception::CollisionCacheStats;
pub use pipeline::{PipelineStats, PpcConfig, PpcPipeline, PpcTick, StageList, TickTimings};
pub use states::{
    CollisionEstimate, MonitoredStates, PointCloud, Stage, StateField, Trajectory, Waypoint,
};
pub use tap::{ChainTap, NoopTap, StageTap, TapAction};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::control::{PathTracker, PathTrackerConfig, PidConfig, PidController};
    pub use crate::kernel::KernelId;
    pub use crate::perception::{
        CollisionCacheStats, CollisionChecker, EstimatorConfig, OccupancyGrid, PointCloudGenerator,
        StateEstimate, StateEstimator,
    };
    pub use crate::pipeline::{
        PipelineStats, PpcConfig, PpcPipeline, PpcTick, StageList, TickTimings,
    };
    pub use crate::planning::{
        AStarPlanner, CellState, ExplorationCell, ExplorationMap, FrontierPlanner, MissionPlan,
        MotionPlanner, PathSmoother, PlannedPath, PlannerAlgorithm, PlannerConfig, Rrt, RrtConnect,
        RrtStar, TrajectoryGenerator,
    };
    pub use crate::states::{
        CollisionEstimate, MonitoredStates, PointCloud, Stage, StateField, Trajectory, Waypoint,
    };
    pub use crate::tap::{ChainTap, NoopTap, StageTap, TapAction};
}
