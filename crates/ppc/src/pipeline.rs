//! The end-to-end perception-planning-control pipeline: the "companion
//! computer" software of the paper, with stage taps for fault injection and
//! anomaly detection.

use std::time::Instant;

use mavfi_sim::geometry::Vec3;
use mavfi_sim::sensors::DepthFrame;
use mavfi_sim::vehicle::{FlightCommand, QuadrotorState};
use serde::{Deserialize, Serialize};

use crate::control::{PathTracker, PathTrackerConfig, PidConfig, PidController};
use crate::kernel::KernelId;
use crate::perception::{
    CollisionChecker, CollisionCheckerConfig, OccupancyGrid, PointCloudGenerator,
};
use crate::planning::{
    MissionPlan, MotionPlanner, PathSmoother, PlannerAlgorithm, PlannerConfig, TrajectoryGenerator,
};
use crate::states::{CollisionEstimate, MonitoredStates, PointCloud, Stage, Trajectory, Waypoint};
use crate::tap::{StageTap, TapAction};

/// Configuration of a full PPC pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpcConfig {
    /// Which sampling-based planner to use.
    pub planner: PlannerAlgorithm,
    /// Planner parameters (bounds, iteration budget, seed, ...).
    pub planner_config: PlannerConfig,
    /// Occupancy-map voxel resolution (m).
    pub occupancy_resolution: f64,
    /// Collision-checker parameters.
    pub collision_checker: CollisionCheckerConfig,
    /// Path-tracker parameters.
    pub tracker: PathTrackerConfig,
    /// PID controller gains.
    pub pid: PidConfig,
    /// Cruise speed for generated trajectories (m/s).
    pub cruise_speed: f64,
    /// Way-point spacing for generated trajectories (m).
    pub waypoint_spacing: f64,
    /// Predicted time-to-collision below which the pipeline replans (s).
    pub replan_ttc_threshold: f64,
}

impl PpcConfig {
    /// A configuration appropriate for the given environment bounds and
    /// deterministic seed.
    pub fn new(planner: PlannerAlgorithm, bounds: mavfi_sim::geometry::Aabb, seed: u64) -> Self {
        Self {
            planner,
            planner_config: PlannerConfig::for_bounds(bounds).with_seed(seed),
            occupancy_resolution: 0.5,
            collision_checker: CollisionCheckerConfig::default(),
            tracker: PathTrackerConfig::default(),
            pid: PidConfig::default(),
            cruise_speed: 4.0,
            waypoint_spacing: 2.0,
            replan_ttc_threshold: 2.5,
        }
    }
}

/// Per-stage and per-kernel bookkeeping of one mission's pipeline activity.
///
/// Backed by fixed arrays indexed by [`KernelId::index`] / [`Stage::index`]
/// rather than hash maps: counting a kernel on the hot tick path is a single
/// array increment, and every iteration over the counters is structurally in
/// canonical [`KernelId::ALL`] / [`Stage::ALL`] order — the deterministic
/// summing that `total_compute_ms` previously had to enforce by convention.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    kernel_invocations: [u64; KernelId::COUNT],
    /// Number of replans triggered.
    pub replans: u64,
    recomputations: [u64; Stage::COUNT],
    /// Number of pipeline ticks executed.
    pub ticks: u64,
}

impl PipelineStats {
    fn count_kernel(&mut self, kernel: KernelId) {
        self.kernel_invocations[kernel.index()] += 1;
    }

    fn count_recompute(&mut self, stage: Stage) {
        self.recomputations[stage.index()] += 1;
    }

    /// Total invocations of `kernel`.
    pub fn invocations(&self, kernel: KernelId) -> u64 {
        self.kernel_invocations[kernel.index()]
    }

    /// Total recomputations of `stage`.
    pub fn recomputations_of(&self, stage: Stage) -> u64 {
        self.recomputations[stage.index()]
    }

    /// Total recomputations across all stages.
    pub fn total_recomputations(&self) -> u64 {
        self.recomputations.iter().sum()
    }

    /// Total nominal compute time spent in kernels, in milliseconds, using
    /// the i9 latency figures from [`KernelId::nominal_latency_ms`].
    ///
    /// The sum runs over the invocation array, i.e. structurally in
    /// canonical [`KernelId::ALL`] order, so the floating-point total is
    /// identical between identical missions.
    pub fn total_compute_ms(&self) -> f64 {
        KernelId::ALL
            .iter()
            .map(|&kernel| kernel.nominal_latency_ms() * self.invocations(kernel) as f64)
            .sum()
    }
}

/// Wall-clock durations of the kernel invocations of one tick, as a
/// fixed-capacity inline list in invocation order.
///
/// `Copy` and heap-free: telemetry reads it after each tick without
/// allocating.  The capacity (16) exceeds the worst case per tick — every
/// stage recomputing plus a double replan reaches 14 invocations — so
/// `push` never drops samples in practice; if a future pipeline exceeds it,
/// excess samples are silently dropped rather than allocating or panicking
/// on the hot path.
///
/// Wall-clock time **never feeds results**: these samples exist only for
/// observability (see `docs/OBSERVABILITY.md`) and are collected only while
/// [`PpcPipeline::set_timing_enabled`] is on.
#[derive(Debug, Clone, Copy)]
pub struct TickTimings {
    samples: [(KernelId, u64); Self::CAPACITY],
    len: u8,
}

impl TickTimings {
    /// Maximum samples captured per tick.
    pub const CAPACITY: usize = 16;

    fn clear(&mut self) {
        self.len = 0;
    }

    fn push(&mut self, kernel: KernelId, nanos: u64) {
        if (self.len as usize) < Self::CAPACITY {
            self.samples[self.len as usize] = (kernel, nanos);
            self.len += 1;
        }
    }

    /// The recorded `(kernel, nanoseconds)` samples, in invocation order.
    pub fn as_slice(&self) -> &[(KernelId, u64)] {
        &self.samples[..self.len as usize]
    }

    /// Iterates over the recorded samples.
    pub fn iter(&self) -> impl Iterator<Item = (KernelId, u64)> + '_ {
        self.as_slice().iter().copied()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for TickTimings {
    fn default() -> Self {
        Self { samples: [(KernelId::Pid, 0); Self::CAPACITY], len: 0 }
    }
}

/// A fixed-capacity, heap-free list of pipeline stages in recomputation
/// order (each stage recomputes at most once per tick, so three slots
/// suffice).  Keeping this inline makes [`PpcTick`] `Copy` and the tick
/// output allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct StageList {
    stages: [Stage; 3],
    len: u8,
}

impl Default for StageList {
    fn default() -> Self {
        Self { stages: [Stage::Perception; 3], len: 0 }
    }
}

impl PartialEq for StageList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl StageList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage.
    ///
    /// # Panics
    ///
    /// Panics if all three slots are already filled.
    pub fn push(&mut self, stage: Stage) {
        assert!((self.len as usize) < self.stages.len(), "a tick recomputes at most 3 stages");
        self.stages[self.len as usize] = stage;
        self.len += 1;
    }

    /// The recorded stages, in order.
    pub fn as_slice(&self) -> &[Stage] {
        &self.stages[..self.len as usize]
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` when no stage was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when `stage` was recorded.
    pub fn contains(&self, stage: Stage) -> bool {
        self.as_slice().contains(&stage)
    }

    /// Iterates over the recorded stages.
    pub fn iter(&self) -> impl Iterator<Item = Stage> + '_ {
        self.as_slice().iter().copied()
    }
}

/// State of one pipeline tick while its stages are being driven externally.
///
/// The in-order tick driver is [`PpcPipeline::tick`]; batched lockstep
/// execution (`mavfi::exec::batch`) instead walks the same stages through
/// [`PpcPipeline::begin_tick`] → [`PpcPipeline::apply_perception_action`] →
/// [`PpcPipeline::planning_stage`] → [`PpcPipeline::apply_planning_action`]
/// → [`PpcPipeline::control_stage`] →
/// [`PpcPipeline::apply_control_action`] → [`PpcPipeline::finish_tick`],
/// carrying this `Copy` (heap-free) value between the calls so the stage
/// taps of many missions can be evaluated together between stages.
/// `tick()` is itself recomposed from exactly these calls, so the two
/// drivers are bit-identical by construction.
#[derive(Debug, Clone, Copy)]
pub struct TickInFlight {
    /// The perception-stage collision estimate (tap-corrupted or recovered
    /// in place by [`PpcPipeline::apply_perception_action`]).
    pub estimate: CollisionEstimate,
    /// Stages recomputed so far at a tap's request.
    pub recomputed_stages: StageList,
    /// Whether the planning stage ran (replan) during this tick.
    pub replanned: bool,
    /// The flight command issued by the control stage (valid after
    /// [`PpcPipeline::control_stage`]).
    pub command: FlightCommand,
    position: Vec3,
    target: Option<Waypoint>,
}

/// Output of one pipeline tick.
///
/// `Copy`: returning a tick performs no heap allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpcTick {
    /// The flight command to forward to the actuator.
    pub command: FlightCommand,
    /// Snapshot of the 13 monitored inter-kernel states.
    pub monitored: MonitoredStates,
    /// Whether the planning stage ran (replan) during this tick.
    pub replanned: bool,
    /// Stages recomputed during this tick at a tap's request.
    pub recomputed_stages: StageList,
    /// Whether the mission's final goal has been reached according to the
    /// mission planner.
    pub mission_complete: bool,
}

/// The end-to-end PPC pipeline.
///
/// # Examples
///
/// ```
/// use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline};
/// use mavfi_ppc::planning::PlannerAlgorithm;
/// use mavfi_ppc::tap::NoopTap;
/// use mavfi_sim::prelude::*;
///
/// let env = EnvironmentKind::Sparse.build(1);
/// let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 7);
/// let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
/// let camera = DepthCamera::default();
/// let world = World::new(env, QuadrotorParams::default(), PowerModel::default(), MissionConfig::default());
/// let frame = camera.capture(world.environment(), &world.vehicle().pose());
/// let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
/// assert!(tick.command.is_finite());
/// ```
pub struct PpcPipeline {
    config: PpcConfig,
    point_cloud_generator: PointCloudGenerator,
    occupancy: OccupancyGrid,
    collision_checker: CollisionChecker,
    planner: Box<dyn MotionPlanner + Send>,
    smoother: PathSmoother,
    trajectory_generator: TrajectoryGenerator,
    mission: MissionPlan,
    tracker: PathTracker,
    pid: PidController,
    trajectory: Trajectory,
    stats: PipelineStats,
    // Scratch buffers reused across ticks and replans so the steady-state
    // tick — and, with `plan_into`, the replan path too — performs zero
    // heap allocations (see docs/PERFORMANCE.md for the ownership
    // convention).
    cloud: PointCloud,
    planned: crate::planning::PlannedPath,
    smoothed: crate::planning::PlannedPath,
    resample_positions: Vec<Vec3>,
    // Revision tracking for the collision-check cache: the trajectory
    // revision bumps whenever the stored trajectory's contents change —
    // replans, abandonment restores and fault corruptions through the
    // planning tap alike, caught by shadow-comparing after the planning
    // stage.
    trajectory_revision: u64,
    trajectory_shadow: Vec<Waypoint>,
    // Wall-clock observability (off by default): per-tick kernel durations
    // captured inline, read back by telemetry.  Never feeds results.
    timing_enabled: bool,
    tick_timings: TickTimings,
}

impl std::fmt::Debug for PpcPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpcPipeline")
            .field("planner", &self.config.planner)
            .field("trajectory_len", &self.trajectory.len())
            .field("ticks", &self.stats.ticks)
            .finish()
    }
}

impl PpcPipeline {
    /// Creates a pipeline flying a single-goal package-delivery mission from
    /// `start` to `goal`.
    pub fn new(config: PpcConfig, start: Vec3, goal: Vec3) -> Self {
        Self::with_mission(config, MissionPlan::package_delivery(start, goal))
    }

    /// Creates a pipeline flying an arbitrary mission plan.
    pub fn with_mission(config: PpcConfig, mission: MissionPlan) -> Self {
        Self {
            config,
            point_cloud_generator: PointCloudGenerator::default(),
            occupancy: OccupancyGrid::new(config.occupancy_resolution),
            collision_checker: CollisionChecker::new(config.collision_checker),
            planner: config.planner.instantiate(config.planner_config),
            smoother: PathSmoother::new(config.planner_config.margin),
            trajectory_generator: TrajectoryGenerator::new(
                config.cruise_speed,
                config.waypoint_spacing,
            ),
            mission,
            tracker: PathTracker::new(config.tracker),
            pid: PidController::new(config.pid),
            trajectory: Trajectory::default(),
            stats: PipelineStats::default(),
            cloud: PointCloud::default(),
            planned: crate::planning::PlannedPath::default(),
            smoothed: crate::planning::PlannedPath::default(),
            resample_positions: Vec::new(),
            trajectory_revision: 0,
            trajectory_shadow: Vec::new(),
            timing_enabled: false,
            tick_timings: TickTimings::default(),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> PpcConfig {
        self.config
    }

    /// Accumulated pipeline statistics.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The currently stored trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The occupancy map built so far.
    pub fn occupancy(&self) -> &OccupancyGrid {
        &self.occupancy
    }

    /// The mission plan.
    pub fn mission(&self) -> &MissionPlan {
        &self.mission
    }

    /// The trajectory revision counter: bumped whenever the stored
    /// trajectory's contents changed during a tick's planning stage, by a
    /// replan or by a tap mutation.  Together with
    /// [`OccupancyGrid::revision`] it keys the collision-check cache.
    pub fn trajectory_revision(&self) -> u64 {
        self.trajectory_revision
    }

    /// Enables or disables the collision-check revision cache (enabled by
    /// default).  A verification knob: `tests/replan_equivalence.rs` flies
    /// the same missions cached and uncached and asserts bit-identical
    /// outcomes.
    pub fn set_collision_cache_enabled(&mut self, enabled: bool) {
        self.collision_checker.set_cache_enabled(enabled);
    }

    /// Hit/miss counters of the collision-check revision cache.
    pub fn collision_cache_stats(&self) -> crate::perception::CollisionCacheStats {
        self.collision_checker.cache_stats()
    }

    /// Enables or disables wall-clock timing of kernel invocations
    /// (disabled by default).  Timing feeds [`Self::last_tick_timings`]
    /// only — results are bit-identical either way, and the capture is
    /// allocation-free (`Instant::now` plus an inline array write).
    pub fn set_timing_enabled(&mut self, enabled: bool) {
        self.timing_enabled = enabled;
    }

    /// Whether wall-clock kernel timing is on.
    pub fn timing_enabled(&self) -> bool {
        self.timing_enabled
    }

    /// Wall-clock kernel durations of the most recent tick (empty while
    /// timing is disabled or before the first timed tick).
    pub fn last_tick_timings(&self) -> &TickTimings {
        &self.tick_timings
    }

    fn timing_start(&self) -> Option<Instant> {
        if self.timing_enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn record_timing(&mut self, kernel: KernelId, start: Option<Instant>) {
        if let Some(start) = start {
            self.tick_timings.push(kernel, start.elapsed().as_nanos() as u64);
        }
    }

    /// Runs one perception-planning-control cycle.
    ///
    /// `tap` is invoked between stages and may mutate inter-kernel states
    /// (fault injection) or request stage recomputation (recovery).
    ///
    /// The steady-state tick performs zero heap allocations — replans
    /// included: the point cloud, the planner output (`plan_into`), the
    /// smoothing/trajectory scratch and the returned `Copy` [`PpcTick`] all
    /// reuse pipeline-owned buffers (asserted by `tests/zero_alloc_tick.rs`,
    /// fault-triggered replans included).
    pub fn tick(
        &mut self,
        frame: &DepthFrame,
        vehicle: &QuadrotorState,
        dt: f64,
        tap: &mut dyn StageTap,
    ) -> PpcTick {
        let mut tick = self.begin_tick(frame, vehicle, tap);
        let action = tap.after_perception(&mut tick.estimate);
        self.apply_perception_action(&mut tick, vehicle, action);
        self.planning_stage(&mut tick);
        let action = self.with_planning_tap(|trajectory, active_index| {
            tap.after_planning(trajectory, active_index)
        });
        self.apply_planning_action(&mut tick, action);
        self.control_stage(&mut tick, vehicle, dt);
        let action = tap.after_control(&mut tick.command);
        self.apply_control_action(&mut tick, vehicle, dt, action);
        self.finish_tick(tick, vehicle)
    }

    /// Starts a tick: runs the perception kernels (point-cloud generation,
    /// occupancy update, cached collision check) with `tap` hooked between
    /// them, and returns the in-flight tick state.
    ///
    /// The caller must then evaluate the tap's perception verdict on
    /// `tick.estimate` and continue with
    /// [`PpcPipeline::apply_perception_action`].
    pub fn begin_tick(
        &mut self,
        frame: &DepthFrame,
        vehicle: &QuadrotorState,
        tap: &mut dyn StageTap,
    ) -> TickInFlight {
        self.stats.ticks += 1;
        self.tick_timings.clear();
        let position = vehicle.position;

        let timer = self.timing_start();
        self.point_cloud_generator.run_into(frame, &mut self.cloud);
        self.record_timing(KernelId::PointCloudGeneration, timer);
        self.stats.count_kernel(KernelId::PointCloudGeneration);
        tap.after_point_cloud(&mut self.cloud);
        let timer = self.timing_start();
        self.occupancy.insert_cloud(&self.cloud);
        self.record_timing(KernelId::OctoMap, timer);
        self.stats.count_kernel(KernelId::OctoMap);
        tap.after_occupancy(&mut self.occupancy);

        let timer = self.timing_start();
        let estimate = self.collision_checker.run_cached(
            &self.occupancy,
            position,
            vehicle.velocity,
            &self.trajectory,
            self.trajectory_revision,
            self.tracker.active_index(),
        );
        self.record_timing(KernelId::CollisionCheck, timer);
        self.stats.count_kernel(KernelId::CollisionCheck);

        TickInFlight {
            estimate,
            recomputed_stages: StageList::new(),
            replanned: false,
            command: FlightCommand::HOLD,
            position,
            target: None,
        }
    }

    /// Applies the tap's perception verdict: on [`TapAction::Recompute`],
    /// rebuilds the perception output from scratch (occupancy re-update plus
    /// collision re-check, the 289 ms path of §VI-C).  When the re-inserted
    /// cloud adds no new voxel — the common case, the corruption hit the
    /// estimate, not the map — both grid and trajectory revisions are
    /// unchanged and the re-check is a pure cache hit.
    pub fn apply_perception_action(
        &mut self,
        tick: &mut TickInFlight,
        vehicle: &QuadrotorState,
        action: TapAction,
    ) {
        if action != TapAction::Recompute {
            return;
        }
        let timer = self.timing_start();
        self.occupancy.insert_cloud(&self.cloud);
        self.record_timing(KernelId::OctoMap, timer);
        self.stats.count_kernel(KernelId::OctoMap);
        let timer = self.timing_start();
        tick.estimate = self.collision_checker.run_cached(
            &self.occupancy,
            tick.position,
            vehicle.velocity,
            &self.trajectory,
            self.trajectory_revision,
            self.tracker.active_index(),
        );
        self.record_timing(KernelId::CollisionCheck, timer);
        self.stats.count_kernel(KernelId::CollisionCheck);
        self.stats.count_recompute(Stage::Perception);
        tick.recomputed_stages.push(Stage::Perception);
    }

    /// Runs the planning stage: replans when the trajectory is missing,
    /// finished or predicted to collide.  Sets `tick.replanned`.
    pub fn planning_stage(&mut self, tick: &mut TickInFlight) {
        let collision_imminent = tick.estimate.obstacle_ahead
            && (tick.estimate.time_to_collision <= self.config.replan_ttc_threshold
                || tick.estimate.future_collision_seq >= 0.0);
        let needs_plan = self.trajectory.is_empty()
            || self.tracker.is_finished(&self.trajectory)
            || collision_imminent;
        if needs_plan && !self.mission.is_complete() {
            tick.replanned = self.replan(tick.position);
        }
    }

    /// Invokes `f` on the stored trajectory and the tracker's active
    /// way-point index — the exact arguments [`StageTap::after_planning`]
    /// receives.  External drivers use this to evaluate planning taps
    /// between [`PpcPipeline::planning_stage`] and
    /// [`PpcPipeline::apply_planning_action`].
    pub fn with_planning_tap<R>(&mut self, f: impl FnOnce(&mut Trajectory, usize) -> R) -> R {
        let active_index = self.tracker.active_index();
        f(&mut self.trajectory, active_index)
    }

    /// Applies the tap's planning verdict (on [`TapAction::Recompute`],
    /// regenerates the trajectory — the 83 ms re-plan path), then
    /// shadow-compares the stored trajectory so *any* planning-stage
    /// mutation — replan, tap corruption, abandonment restore — bumps the
    /// revision the collision-check cache keys on.  Way-points are plain
    /// `Copy` data, so the compare is a cheap linear scan and the shadow
    /// refresh reuses its buffer.  The shadow compare runs unconditionally:
    /// call this exactly once per tick, whatever the verdict.
    pub fn apply_planning_action(&mut self, tick: &mut TickInFlight, action: TapAction) {
        if action == TapAction::Recompute {
            self.replan(tick.position);
            self.stats.count_recompute(Stage::Planning);
            tick.recomputed_stages.push(Stage::Planning);
        }
        if self.trajectory.waypoints != self.trajectory_shadow {
            self.trajectory_revision += 1;
            self.trajectory_shadow.clone_from(&self.trajectory.waypoints);
        }
    }

    /// Runs the control stage: path tracking plus PID command issue.  Sets
    /// `tick.command` (for the tap's control verdict) and remembers the
    /// tracked way-point for the monitored-state snapshot.
    pub fn control_stage(&mut self, tick: &mut TickInFlight, vehicle: &QuadrotorState, dt: f64) {
        self.stats.count_kernel(KernelId::PathTracking);
        let timer = self.timing_start();
        tick.target = self.tracker.target(&self.trajectory, tick.position);
        self.record_timing(KernelId::PathTracking, timer);
        tick.command = self.issue_command(tick.target.as_ref(), vehicle, dt);
    }

    /// Applies the tap's control verdict: on [`TapAction::Recompute`],
    /// recomputes the control output (the 0.46 ms path).  The monitored
    /// way-point keeps the *original* control target — recovery replaces the
    /// command, not the snapshot the detectors monitor.
    pub fn apply_control_action(
        &mut self,
        tick: &mut TickInFlight,
        vehicle: &QuadrotorState,
        dt: f64,
        action: TapAction,
    ) {
        if action != TapAction::Recompute {
            return;
        }
        self.pid.reset();
        self.stats.count_kernel(KernelId::PathTracking);
        let timer = self.timing_start();
        let fresh_target = self.tracker.target(&self.trajectory, tick.position);
        self.record_timing(KernelId::PathTracking, timer);
        tick.command = self.issue_command(fresh_target.as_ref(), vehicle, dt);
        self.stats.count_recompute(Stage::Control);
        tick.recomputed_stages.push(Stage::Control);
    }

    /// Finishes a tick: mission bookkeeping plus the monitored-state
    /// snapshot.  Consumes the in-flight state and returns the tick output.
    pub fn finish_tick(&mut self, tick: TickInFlight, vehicle: &QuadrotorState) -> PpcTick {
        self.stats.count_kernel(KernelId::MissionPlanner);
        let timer = self.timing_start();
        let mission_complete = self
            .mission
            .advance_if_reached(tick.position, self.config.planner_config.goal_tolerance);
        self.record_timing(KernelId::MissionPlanner, timer);

        let monitored = MonitoredStates {
            collision: tick.estimate,
            waypoint: tick.target.unwrap_or(Waypoint {
                position: tick.position,
                yaw: vehicle.yaw,
                velocity: Vec3::ZERO,
            }),
            command: tick.command,
        };

        PpcTick {
            command: tick.command,
            monitored,
            replanned: tick.replanned,
            recomputed_stages: tick.recomputed_stages,
            mission_complete,
        }
    }

    fn replan(&mut self, position: Vec3) -> bool {
        let Some(goal) = self.mission.current_goal() else {
            self.trajectory.waypoints.clear();
            return false;
        };
        self.stats.count_kernel(self.config.planner.kernel());
        self.stats.replans += 1;
        let timer = self.timing_start();
        let planned = self.planner.plan_into(&self.occupancy, position, goal, &mut self.planned);
        self.record_timing(self.config.planner.kernel(), timer);
        if planned {
            self.stats.count_kernel(KernelId::Smoothing);
            let timer = self.timing_start();
            self.smoother.run_into(&self.occupancy, &self.planned, &mut self.smoothed);
            self.trajectory_generator.run_into(
                &self.smoothed,
                &mut self.resample_positions,
                &mut self.trajectory,
            );
            self.record_timing(KernelId::Smoothing, timer);
            self.tracker.reset();
            self.pid.reset();
            true
        } else {
            // Keep the previous trajectory (if any); the vehicle will
            // brake on an empty one.
            false
        }
    }

    fn issue_command(
        &mut self,
        target: Option<&Waypoint>,
        vehicle: &QuadrotorState,
        dt: f64,
    ) -> FlightCommand {
        self.stats.count_kernel(KernelId::Pid);
        let timer = self.timing_start();
        let command = match target {
            Some(waypoint) => self.pid.run(waypoint, vehicle, dt),
            None => FlightCommand::HOLD,
        };
        self.record_timing(KernelId::Pid, timer);
        command
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::NoopTap;
    use mavfi_sim::prelude::*;

    fn run_mission(kind: EnvironmentKind, seed: u64, max_seconds: f64) -> (MissionStatus, f64) {
        let env = kind.build(seed);
        let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), seed);
        let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
        let camera = DepthCamera::default();
        let mission_config =
            MissionConfig { max_mission_time: max_seconds, ..MissionConfig::default() };
        let mut world =
            World::new(env, QuadrotorParams::default(), PowerModel::default(), mission_config);
        let dt = 0.1;
        while world.status() == MissionStatus::InProgress {
            let frame = camera.capture(world.environment(), &world.vehicle().pose());
            let tick = pipeline.tick(&frame, &world.vehicle().state(), dt, &mut NoopTap);
            world.step(&tick.command, dt);
        }
        (world.status(), world.elapsed())
    }

    #[test]
    fn completes_mission_in_sparse_environment() {
        let (status, elapsed) = run_mission(EnvironmentKind::Sparse, 3, 300.0);
        assert_eq!(status, MissionStatus::Succeeded, "mission should succeed, took {elapsed} s");
        assert!(elapsed > 5.0);
    }

    #[test]
    fn completes_mission_in_farm_environment() {
        let (status, _) = run_mission(EnvironmentKind::Farm, 1, 300.0);
        assert_eq!(status, MissionStatus::Succeeded);
    }

    #[test]
    fn stats_track_kernel_invocations_and_replans() {
        let env = EnvironmentKind::Sparse.build(5);
        let config = PpcConfig::new(PlannerAlgorithm::Rrt, env.bounds(), 5);
        let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
        let camera = DepthCamera::default();
        let world = World::new(
            env,
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        );
        let frame = camera.capture(world.environment(), &world.vehicle().pose());
        let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
        assert!(tick.replanned, "first tick must plan");
        let stats = pipeline.stats();
        assert_eq!(stats.ticks, 1);
        assert_eq!(stats.invocations(KernelId::PointCloudGeneration), 1);
        assert_eq!(stats.invocations(KernelId::OctoMap), 1);
        assert_eq!(stats.invocations(KernelId::Rrt), 1);
        assert!(stats.total_compute_ms() > 0.0);
        assert_eq!(stats.replans, 1);
    }

    #[test]
    fn recompute_requests_are_honoured_and_counted() {
        struct RecomputeEverything;
        impl StageTap for RecomputeEverything {
            fn after_perception(
                &mut self,
                _estimate: &mut crate::states::CollisionEstimate,
            ) -> TapAction {
                TapAction::Recompute
            }
            fn after_planning(
                &mut self,
                _trajectory: &mut Trajectory,
                _active_index: usize,
            ) -> TapAction {
                TapAction::Recompute
            }
            fn after_control(&mut self, _command: &mut FlightCommand) -> TapAction {
                TapAction::Recompute
            }
        }

        let env = EnvironmentKind::Farm.build(1);
        let config = PpcConfig::new(PlannerAlgorithm::RrtConnect, env.bounds(), 1);
        let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
        let camera = DepthCamera::default();
        let world = World::new(
            env,
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        );
        let frame = camera.capture(world.environment(), &world.vehicle().pose());
        let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut RecomputeEverything);
        assert_eq!(tick.recomputed_stages.len(), 3);
        assert_eq!(pipeline.stats().recomputations_of(Stage::Perception), 1);
        assert_eq!(pipeline.stats().recomputations_of(Stage::Planning), 1);
        assert_eq!(pipeline.stats().recomputations_of(Stage::Control), 1);
    }

    #[test]
    fn externally_driven_stages_are_bit_identical_to_tick() {
        let env = EnvironmentKind::Dense.build(4);
        let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 4);
        let mut reference = PpcPipeline::new(config, env.start(), env.goal());
        let mut split = PpcPipeline::new(config, env.start(), env.goal());
        let camera = DepthCamera::default();
        let mut world = World::new(
            env,
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        );
        let dt = 0.1;
        for step in 0..400 {
            if world.status() != MissionStatus::InProgress {
                break;
            }
            let frame = camera.capture(world.environment(), &world.vehicle().pose());
            let state = world.vehicle().state();
            let expected = reference.tick(&frame, &state, dt, &mut NoopTap);

            let mut tap = NoopTap;
            let mut tick = split.begin_tick(&frame, &state, &mut tap);
            let action = tap.after_perception(&mut tick.estimate);
            split.apply_perception_action(&mut tick, &state, action);
            split.planning_stage(&mut tick);
            let action =
                split.with_planning_tap(|trajectory, index| tap.after_planning(trajectory, index));
            split.apply_planning_action(&mut tick, action);
            split.control_stage(&mut tick, &state, dt);
            let action = tap.after_control(&mut tick.command);
            split.apply_control_action(&mut tick, &state, dt, action);
            let got = split.finish_tick(tick, &state);

            assert_eq!(got, expected, "step {step}");
            world.step(&expected.command, dt);
        }
        assert_eq!(split.stats(), reference.stats());
        assert_eq!(split.trajectory_revision(), reference.trajectory_revision());
    }

    #[test]
    fn monitored_states_reflect_command_and_waypoint() {
        let env = EnvironmentKind::Sparse.build(9);
        let config = PpcConfig::new(PlannerAlgorithm::RrtStar, env.bounds(), 9);
        let mut pipeline = PpcPipeline::new(config, env.start(), env.goal());
        let camera = DepthCamera::default();
        let world = World::new(
            env,
            QuadrotorParams::default(),
            PowerModel::default(),
            MissionConfig::default(),
        );
        let frame = camera.capture(world.environment(), &world.vehicle().pose());
        let tick = pipeline.tick(&frame, &world.vehicle().state(), 0.1, &mut NoopTap);
        assert_eq!(tick.monitored.command, tick.command);
        let array = tick.monitored.as_array();
        assert!(array.iter().all(|v| v.is_finite()));
    }
}
