//! Property tests for the allocation-free replanning path introduced with
//! [`MotionPlanner::plan_into`]: bit-equality with the allocating `plan`
//! across all four planners on randomized environments and seeds, and
//! equivalence of the revision-keyed collision-check cache with the uncached
//! kernel under arbitrary grid / trajectory mutation sequences.

use mavfi_ppc::perception::collision_check::CollisionChecker;
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::planning::space::{PlannedPath, PlannerConfig};
use mavfi_ppc::planning::PlannerAlgorithm;
use mavfi_ppc::states::{Trajectory, Waypoint};
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::geometry::Vec3;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The environments the equality sweep draws from (kept to the cheap kinds;
/// Dense planning costs tens of milliseconds per case).
const KINDS: [EnvironmentKind; 3] =
    [EnvironmentKind::Sparse, EnvironmentKind::Farm, EnvironmentKind::Factory];

proptest! {
    // Each case plans 4 planners × 2 problems twice; keep the suite fast on
    // one-core machines.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every planner, `plan_into` is bit-identical to `plan` — including
    /// on the *second* plan from the same instance, which exercises the
    /// pooled tree/open-list buffers and the clear-then-fill contract of the
    /// reused output path.
    #[test]
    fn plan_into_is_bit_identical_to_plan(
        kind_index in 0usize..KINDS.len(),
        env_seed in 0u64..50,
        planner_seed in 0u64..1000,
    ) {
        let env = KINDS[kind_index].build(env_seed);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(planner_seed);
        for algorithm in PlannerAlgorithm::EXTENDED {
            let mut allocating = algorithm.instantiate(config);
            let mut pooled = algorithm.instantiate(config);
            // A dirty output buffer: stale content must never leak through.
            let mut out = PlannedPath::new(vec![Vec3::splat(77.0); 5]);

            // Two problems in sequence on the *same* instances: forward,
            // then backward (the backward one replans over warm buffers and
            // a stepped RNG, exactly like an in-mission replan).
            for (start, goal) in [(env.start(), env.goal()), (env.goal(), env.start())] {
                let reference = allocating.plan(&env, start, goal);
                let found = pooled.plan_into(&env, start, goal, &mut out);
                prop_assert_eq!(
                    reference.is_some(),
                    found,
                    "{:?} success diverged on {}/{}",
                    algorithm,
                    env.name(),
                    planner_seed
                );
                match reference {
                    Some(reference) => prop_assert_eq!(&reference, &out, "{:?} path diverged", algorithm),
                    None => prop_assert!(out.is_empty(), "{:?} failure must clear `out`", algorithm),
                }
            }
        }
    }
}

/// Deterministic pseudo-random waypoint inside the corridor the sweeps use.
fn random_waypoint(rng: &mut StdRng) -> Waypoint {
    Waypoint {
        position: Vec3::new(
            rng.gen_range(0.0..30.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(0.5..4.0),
        ),
        ..Waypoint::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The revision-keyed cache equals the uncached kernel after *every*
    /// step of an arbitrary interleaving of grid mutations, trajectory
    /// mutations (revision bumped, as the pipeline's shadow compare
    /// guarantees) and repeated queries from a small pose set (repeats make
    /// the cache actually hit).
    #[test]
    fn collision_cache_equals_uncached_kernel_under_mutations(
        mutation_seed in 0u64..10_000,
        ops in proptest::collection::vec(0u8..6, 4..40),
    ) {
        let mut rng = StdRng::seed_from_u64(mutation_seed);
        let mut grid = OccupancyGrid::new(0.5);
        let mut cached = CollisionChecker::default();
        let uncached = CollisionChecker::default();
        let mut trajectory = Trajectory::new(
            (0..8).map(|_| random_waypoint(&mut rng)).collect(),
        );
        let mut revision = 0u64;

        // Seed obstacles across the corridor.
        for _ in 0..20 {
            grid.insert_point(random_waypoint(&mut rng).position);
        }

        let poses = [
            (Vec3::new(0.0, 0.0, 2.0), Vec3::new(3.0, 0.0, 0.0)),
            (Vec3::new(5.0, 1.0, 2.0), Vec3::new(2.0, 1.0, 0.0)),
        ];
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                // Grid mutations: grow, flip off, or no-op re-observe.
                0 => grid.insert_point(random_waypoint(&mut rng).position),
                1 => {
                    let key = grid.key_for(random_waypoint(&mut rng).position);
                    grid.set_voxel(key, false);
                }
                // Trajectory mutation + the revision bump the pipeline's
                // shadow compare would perform.
                2 => {
                    let index = rng.gen_range(0..trajectory.len());
                    trajectory.waypoints[index] = random_waypoint(&mut rng);
                    revision += 1;
                }
                // Untouched round: the next query is a pure cache hit.
                _ => {}
            }
            let (position, velocity) = poses[step % poses.len()];
            let active_index = step % 4;
            let hit = cached.run_cached(
                &grid,
                position,
                velocity,
                &trajectory,
                revision,
                active_index,
            );
            let fresh = uncached.run(&grid, position, velocity, &trajectory, active_index);
            prop_assert_eq!(hit, fresh, "estimate diverged at step {}", step);
        }
    }
}
