//! Property tests for the pooled voxel-bucketed spatial index
//! ([`NnIndex`]): random insert sequences and queries must agree **exactly**
//! — on index *and* tie-break — with the O(n) linear scans the RRT-family
//! planners used before, across bounds scales and cell (step-size) configs;
//! and the three planners themselves must produce bit-identical paths with
//! the index on and off.

use mavfi_ppc::planning::{NnIndex, PlannerAlgorithm, PlannerConfig};
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::geometry::Vec3;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The linear `nearest` the planners used: `min_by` over distances in index
/// order, first minimum (= lowest index) winning ties.
fn linear_nearest(points: &[Vec3], query: Vec3) -> usize {
    points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.distance(query).partial_cmp(&b.distance(query)).expect("finite distances")
        })
        .map(|(index, _)| index)
        .expect("non-empty")
}

/// The linear neighbourhood filter RRT* used: inclusive radius comparison,
/// ascending index order.
fn linear_within(points: &[Vec3], query: Vec3, radius: f64) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, point)| point.distance(query) <= radius)
        .map(|(index, _)| index)
        .collect()
}

/// Deterministic point inside a cube of half-extent `scale`; every ~8th
/// point duplicates an earlier one so exact-distance ties actually occur.
fn random_point(rng: &mut StdRng, scale: f64, existing: &[Vec3]) -> Vec3 {
    if !existing.is_empty() && rng.gen_range(0..8) == 0 {
        return existing[rng.gen_range(0..existing.len())];
    }
    Vec3::new(
        rng.gen_range(-scale..scale),
        rng.gen_range(-scale..scale),
        rng.gen_range(-scale..scale),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert sequences interleaved with nearest/radius queries: the
    /// index agrees with the linear references after every insert, across
    /// bounds scales and cell sizes — including the pooled-reuse path (the
    /// same `NnIndex` instance is reset and refilled for a second round).
    #[test]
    fn index_queries_match_linear_scans(
        point_seed in 0u64..10_000,
        cell_size in 0.4f64..6.0,
        scale in 4.0f64..60.0,
        count in 1usize..180,
    ) {
        let mut rng = StdRng::seed_from_u64(point_seed);
        let mut index = NnIndex::new();
        let mut out = Vec::new();
        for round in 0..2 {
            index.reset(cell_size);
            let mut points: Vec<Vec3> = Vec::new();
            for step in 0..count {
                let point = random_point(&mut rng, scale, &points);
                prop_assert_eq!(index.insert(point), points.len());
                points.push(point);
                // Query near the newest point (dense neighbourhoods) and at
                // an unrelated location (possibly far from every node).
                let near = point + Vec3::new(0.3, -0.6, 0.2);
                let far = random_point(&mut rng, scale * 1.5, &[]);
                for query in [near, far] {
                    prop_assert_eq!(
                        index.nearest(query),
                        linear_nearest(&points, query),
                        "nearest diverged (round {}, step {})",
                        round,
                        step
                    );
                    let radius = rng.gen_range(0.0..scale * 0.4);
                    index.within_radius(query, radius, &mut out);
                    prop_assert_eq!(
                        &out,
                        &linear_within(&points, query, radius),
                        "radius query diverged (round {}, step {}, r {})",
                        round,
                        step,
                        radius
                    );
                }
            }
        }
    }
}

/// The environments the planner equivalence sweep draws from (Dense is
/// covered by the deterministic test below; linear RRT* on Dense costs
/// hundreds of milliseconds per case).
const KINDS: [EnvironmentKind; 3] =
    [EnvironmentKind::Sparse, EnvironmentKind::Farm, EnvironmentKind::Factory];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The spatial index is inert: every RRT-family planner plans
    /// bit-identical paths with the index enabled and disabled, including
    /// on the second plan from the same instance (warm pooled index, stepped
    /// RNG) — independent of the RRT* cost-propagation fix, which is active
    /// on both sides.
    #[test]
    fn indexed_planners_match_linear_planners(
        kind_index in 0usize..KINDS.len(),
        env_seed in 0u64..50,
        planner_seed in 0u64..1000,
    ) {
        let env = KINDS[kind_index].build(env_seed);
        let config = PlannerConfig::for_bounds(env.bounds()).with_seed(planner_seed);
        for algorithm in PlannerAlgorithm::ALL {
            let mut indexed = algorithm.instantiate(config);
            let mut linear = algorithm.instantiate(config);
            linear.set_spatial_index_enabled(false);
            for (start, goal) in [(env.start(), env.goal()), (env.goal(), env.start())] {
                prop_assert_eq!(
                    indexed.plan(&env, start, goal),
                    linear.plan(&env, start, goal),
                    "{:?} diverged on {}/{}",
                    algorithm,
                    env.name(),
                    planner_seed
                );
            }
        }
    }
}
