//! Property-based tests of the PPC substrate: monitored states, occupancy
//! mapping, trajectories and the deterministic A* planner.

use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::planning::astar::AStarPlanner;
use mavfi_ppc::planning::space::{MotionPlanner, PlannerConfig};
use mavfi_ppc::states::{MonitoredStates, StateField, Trajectory, Waypoint};
use mavfi_sim::geometry::{Aabb, Vec3};
use proptest::prelude::*;

fn finite_vec3() -> impl Strategy<Value = Vec3> {
    (-500.0f64..500.0, -500.0f64..500.0, -50.0f64..50.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    /// Writing then reading every monitored field round-trips exactly.
    #[test]
    fn monitored_state_field_roundtrip(values in proptest::collection::vec(-1.0e9f64..1.0e9, 13)) {
        let mut states = MonitoredStates::default();
        for (field, value) in StateField::ALL.into_iter().zip(&values) {
            states.set_field(field, *value);
        }
        for (field, value) in StateField::ALL.into_iter().zip(&values) {
            prop_assert_eq!(states.field(field), *value);
        }
        let array = states.as_array();
        for field in StateField::ALL {
            prop_assert_eq!(array[field.index()], values[field.index()]);
        }
    }

    /// The occupancy grid reports occupied exactly the voxels whose points
    /// were inserted (for well-separated points).
    #[test]
    fn occupancy_grid_roundtrip(points in proptest::collection::vec(finite_vec3(), 1..50)) {
        let mut grid = OccupancyGrid::new(0.5);
        for point in &points {
            grid.insert_point(*point);
        }
        prop_assert!(grid.occupied_count() <= points.len());
        for point in &points {
            prop_assert!(grid.is_occupied(*point));
            // The voxel key of its own centre maps back to the same voxel.
            let key = grid.key_for(*point);
            prop_assert_eq!(grid.key_for(grid.voxel_center(key)), key);
        }
    }

    /// Clearing a voxel that was set removes exactly that voxel.
    #[test]
    fn set_voxel_is_consistent(point in finite_vec3()) {
        let mut grid = OccupancyGrid::new(0.5);
        let key = grid.key_for(point);
        prop_assert!(!grid.set_voxel(key, true));
        prop_assert!(grid.is_occupied(point));
        prop_assert!(grid.set_voxel(key, false));
        prop_assert!(!grid.is_occupied(point));
        prop_assert!(grid.is_empty());
    }

    /// Trajectory path length is at least the straight-line distance between
    /// its endpoints and exactly the sum of segment lengths.
    #[test]
    fn trajectory_length_bounds(points in proptest::collection::vec(finite_vec3(), 2..20)) {
        let trajectory = Trajectory::new(
            points.iter().map(|p| Waypoint { position: *p, ..Waypoint::default() }).collect(),
        );
        let direct = points.first().unwrap().distance(*points.last().unwrap());
        prop_assert!(trajectory.path_length() >= direct - 1e-9);
        let closest = trajectory.closest_index(points[0]).unwrap();
        prop_assert!(trajectory.waypoints[closest].position.distance(points[0]) < 1e-9);
    }

    /// In an empty world the A* planner always returns the straight segment
    /// between start and goal.
    #[test]
    fn astar_in_free_space_is_a_straight_line(
        start in finite_vec3(),
        goal in finite_vec3(),
    ) {
        let bounds = Aabb::new(Vec3::new(-600.0, -600.0, -60.0), Vec3::new(600.0, 600.0, 60.0));
        let mut planner = AStarPlanner::new(PlannerConfig::for_bounds(bounds));
        let grid = OccupancyGrid::new(0.5);
        let path = planner.plan(&grid, start, goal).expect("free space is plannable");
        prop_assert_eq!(path.waypoints.first().copied(), Some(start));
        prop_assert_eq!(path.waypoints.last().copied(), Some(goal));
        prop_assert!((path.length() - start.distance(goal)).abs() < 1e-9);
    }

}

proptest! {
    // Planning around obstacles is comparatively expensive; fewer cases keep
    // the suite fast on small machines.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A* paths around a single obstacle wall remain collision-free and keep
    /// their endpoints.
    #[test]
    fn astar_paths_avoid_obstacles(offset in -6.0f64..6.0, seed_z in 1.5f64..4.0) {
        let bounds = Aabb::new(Vec3::new(-20.0, -20.0, 0.0), Vec3::new(40.0, 40.0, 12.0));
        let mut grid = OccupancyGrid::new(0.5);
        for y in -24..=24 {
            for z in 0..=20 {
                grid.insert_point(Vec3::new(12.0, offset + y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        let start = Vec3::new(0.0, offset, seed_z);
        let goal = Vec3::new(24.0, offset, seed_z);
        let config = PlannerConfig::for_bounds(bounds);
        let mut planner = AStarPlanner::new(config);
        if let Some(path) = planner.plan(&grid, start, goal) {
            prop_assert!(path.is_collision_free(&grid, config.margin * 0.8));
            prop_assert_eq!(path.waypoints.first().copied(), Some(start));
            prop_assert_eq!(path.waypoints.last().copied(), Some(goal));
        }
    }
}
