//! Mission and experiment configuration.

use mavfi_ppc::planning::PlannerAlgorithm;
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::vehicle::QuadrotorParams;
use mavfi_sim::world::MissionConfig;
use serde::{Deserialize, Serialize};

/// Which protection (detection and recovery) scheme supervises the mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// No protection: faults propagate freely (the paper's "Injection run").
    None,
    /// Gaussian-based detection and recovery (D&R(G)).
    Gaussian,
    /// Autoencoder-based detection and recovery (D&R(A)).
    Autoencoder,
}

impl Protection {
    /// The four experiment settings of Table I / Fig. 6, in paper order,
    /// where `None` here is used both for the golden run (no fault) and the
    /// plain injection run (fault, no protection).
    pub const ALL: [Self; 3] = [Self::None, Self::Gaussian, Self::Autoencoder];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "None",
            Self::Gaussian => "Gaussian",
            Self::Autoencoder => "Autoencoder",
        }
    }
}

/// Full description of a single mission run (before any fault or protection
/// is layered on top).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionSpec {
    /// Which evaluation environment to fly in.
    pub environment: EnvironmentKind,
    /// Seed controlling environment generation, planner sampling and sensor
    /// noise for this run.
    pub seed: u64,
    /// The motion planner used by the planning stage.
    pub planner: PlannerAlgorithm,
    /// Airframe limits.
    pub vehicle: QuadrotorParams,
    /// Mission-level limits (goal tolerance, time budget).
    pub mission: MissionConfig,
    /// Control-loop period in seconds (the pipeline and world step at this
    /// rate).
    pub control_period: f64,
}

impl MissionSpec {
    /// A mission in the given environment with everything else defaulted.
    pub fn new(environment: EnvironmentKind, seed: u64) -> Self {
        Self {
            environment,
            seed,
            planner: PlannerAlgorithm::RrtStar,
            vehicle: QuadrotorParams::default(),
            mission: MissionConfig::default(),
            control_period: 0.1,
        }
    }

    /// Sets the planner (builder style).
    pub fn with_planner(mut self, planner: PlannerAlgorithm) -> Self {
        self.planner = planner;
        self
    }

    /// Sets the per-run seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mission time budget in seconds (builder style).
    pub fn with_time_budget(mut self, seconds: f64) -> Self {
        self.mission.max_mission_time = seconds;
        self
    }
}

/// Configuration of detector training (paper §V "Training Environments":
/// error-free runs in randomized environments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSpec {
    /// Number of error-free training missions flown in randomized
    /// environments.
    pub missions: usize,
    /// Base seed for the randomized training environments.
    pub base_seed: u64,
    /// Cap on each training mission's duration (s); training missions do
    /// not need to complete, they only need to produce normal telemetry.
    pub mission_time_budget: f64,
    /// Autoencoder training epochs.
    pub epochs: usize,
}

impl Default for TrainingSpec {
    fn default() -> Self {
        Self { missions: 4, base_seed: 9_000, mission_time_budget: 60.0, epochs: 25 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters() {
        let spec = MissionSpec::new(EnvironmentKind::Dense, 3)
            .with_planner(PlannerAlgorithm::Rrt)
            .with_seed(11)
            .with_time_budget(120.0);
        assert_eq!(spec.environment, EnvironmentKind::Dense);
        assert_eq!(spec.planner, PlannerAlgorithm::Rrt);
        assert_eq!(spec.seed, 11);
        assert_eq!(spec.mission.max_mission_time, 120.0);
        assert_eq!(spec.control_period, 0.1);
    }

    #[test]
    fn protection_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            Protection::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Protection::ALL.len());
    }

    #[test]
    fn training_spec_defaults_are_sane() {
        let spec = TrainingSpec::default();
        assert!(spec.missions > 0);
        assert!(spec.epochs > 0);
        assert!(spec.mission_time_budget > 0.0);
    }
}
