//! The campaign execution engine: one sharded, order-restoring pass over a
//! campaign's full run list.
//!
//! [`CampaignExecutor`] builds the complete run list of a campaign — golden
//! runs plus every planned per-stage injection — and shards it across a
//! [`WorkerPool`].  Each run's seed is derived from `(base_seed, run_index)`
//! exactly as in the sequential path, and [`MissionOutcome`]s stream through
//! the pool's order-restoring aggregator, so the assembled
//! [`EnvironmentCampaign`] is byte-identical to sequential execution for any
//! worker count while bulky per-run artifacts (sampled trails) are dropped
//! as soon as their statistics are folded in.

use std::ops::Range;
use std::sync::Arc;

use mavfi_fault::campaign::CampaignPlan;
use mavfi_fault::injector::FaultSpec;
use mavfi_ppc::states::Stage;
use mavfi_sim::env::EnvironmentKind;
use mavfi_telemetry::{MissionReport, MissionTelemetry, TelemetryReport};
use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignConfig, EnvironmentCampaign, SettingResult};
use crate::config::{MissionSpec, Protection, TrainingSpec};
use crate::error::MavfiError;
use crate::exec::batch::{BatchMission, MissionBatch};
use crate::exec::cache::TrainedDetectorCache;
use crate::exec::pool::WorkerPool;
use crate::qof::{QofMetrics, QofSummary};
use crate::runner::{MissionOutcome, MissionRunner, TrainedDetectors};

/// Where a campaign's trained detectors come from.
#[derive(Debug, Clone)]
pub enum DetectorSource {
    /// An already-trained bank, shared as-is.
    Shared(Arc<TrainedDetectors>),
    /// Train on demand (or reuse) via the global
    /// [`TrainedDetectorCache`], keyed by the training environment and
    /// configuration.
    Cached {
        /// Environment kind the training missions fly in.
        environment: EnvironmentKind,
        /// Training configuration.
        training: TrainingSpec,
    },
}

/// The detection & recovery setup a campaign evaluates: which trained
/// detectors supervise the D&R(G) and D&R(A) settings, and where they come
/// from.
#[derive(Debug, Clone)]
pub struct SchemeConfig {
    source: DetectorSource,
}

impl SchemeConfig {
    /// Uses an already-trained detector bank.
    pub fn trained(detectors: TrainedDetectors) -> Self {
        Self::shared(Arc::new(detectors))
    }

    /// Uses an already-shared detector bank without cloning it.
    pub fn shared(detectors: Arc<TrainedDetectors>) -> Self {
        Self { source: DetectorSource::Shared(detectors) }
    }

    /// Trains (or reuses) detectors through the global
    /// [`TrainedDetectorCache`] for the given training environment and
    /// configuration.
    pub fn cached(environment: EnvironmentKind, training: TrainingSpec) -> Self {
        Self { source: DetectorSource::Cached { environment, training } }
    }

    /// [`SchemeConfig::cached`] with the paper's randomized training
    /// environments.
    pub fn cached_default(training: TrainingSpec) -> Self {
        Self::cached(EnvironmentKind::Randomized, training)
    }

    /// Resolves the detector bank, training it now if it is cache-sourced
    /// and missing.
    pub fn detectors(&self) -> Arc<TrainedDetectors> {
        match &self.source {
            DetectorSource::Shared(detectors) => Arc::clone(detectors),
            DetectorSource::Cached { environment, training } => {
                TrainedDetectorCache::global().get_or_train(*environment, training)
            }
        }
    }
}

/// An injection-only campaign: golden baseline runs plus a planned list of
/// unprotected fault injections (the shape of the Fig. 3 per-kernel and
/// Fig. 4 per-state sensitivity studies).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionSweep {
    /// Environment under test.
    pub environment: EnvironmentKind,
    /// Base seed; run seeds derive from it and the run index.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
    /// Number of error-free baseline runs.
    pub golden_runs: usize,
    /// Injections per target in `plan` (used to derive each injection's
    /// mission seed from its position, exactly like the sequential loops).
    /// Must divide `plan.len()`; [`CampaignExecutor::run_sweep`] checks
    /// this, since a mismatch would silently skew seeds and per-target
    /// grouping.
    pub runs_per_target: usize,
    /// The planned injections, grouped by target.
    pub plan: CampaignPlan,
}

/// Results of an [`InjectionSweep`]: per-run QoF metrics in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Golden-run metrics, in run order.
    pub golden: Vec<QofMetrics>,
    /// Injection-run metrics, in plan order (grouped by target).
    pub injected: Vec<QofMetrics>,
}

impl SweepOutcome {
    /// QoF summaries of consecutive `group_size` chunks of the injection
    /// runs — one summary per target for a plan built with
    /// `runs_per_target == group_size`.
    pub fn injected_groups(&self, group_size: usize) -> Vec<QofSummary> {
        self.injected.chunks(group_size.max(1)).map(QofSummary::from_runs).collect()
    }
}

/// All mission outcomes derived from one planned fault, keeping the paired
/// injection / Gaussian / autoencoder comparison together per job.
pub(crate) struct FaultSettingOutcomes {
    pub(crate) injected: QofMetrics,
    pub(crate) gaussian: MissionOutcome,
    pub(crate) autoencoder: MissionOutcome,
}

/// One entry of a campaign's unified run list.
pub(crate) enum CampaignJob {
    Golden(u64),
    Fault(usize, FaultSpec),
}

/// What one campaign job produced (trimmed to what aggregation needs).
/// `reports` carries the job's mission telemetry (one report per mission,
/// in mission order) and stays empty on uninstrumented runs.
pub(crate) enum JobOutcome {
    Golden { qof: QofMetrics, ticks: u64, compute_ms: f64, reports: Vec<MissionReport> },
    Fault(Box<FaultSettingOutcomes>, Vec<MissionReport>),
}

/// Streaming aggregate of a campaign; folded in run-index order, so every
/// sum matches the sequential loop bit for bit.
///
/// The state is deliberately *extractable*: it is plain data (serde-
/// serialisable, no handles into the pool or detectors), campaign chunks
/// fold into it strictly in chunk order, and chunks are independent — so
/// folding chunks `[0, k)` into a fresh state, persisting it, and later
/// folding chunks `[k, n)` into the restored state yields exactly the bytes
/// of an uninterrupted `[0, n)` fold.  That property is what the campaign
/// server's checkpoint/resume protocol (`mavfi::serve`) is built on, and
/// what `tests/server_faults.rs` and the checkpoint proptests pin down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignFoldState {
    /// Golden-run metrics folded so far, in run order.
    pub golden_runs: Vec<QofMetrics>,
    /// Total pipeline ticks across the folded golden runs.
    pub golden_ticks: u64,
    /// Total nominal compute time across the folded golden runs (ms).
    pub golden_compute_ms: f64,
    /// Unprotected-injection metrics folded so far, in plan order.
    pub injected_runs: Vec<QofMetrics>,
    /// D&R(G) metrics folded so far, in plan order.
    pub gaussian_runs: Vec<QofMetrics>,
    /// D&R(A) metrics folded so far, in plan order.
    pub autoencoder_runs: Vec<QofMetrics>,
    /// Recomputations requested by the Gaussian scheme, per stage.
    pub gaussian_recomputations: Vec<(Stage, u64)>,
    /// Recomputations requested by the autoencoder scheme, per stage.
    pub autoencoder_recomputations: Vec<(Stage, u64)>,
}

impl CampaignFoldState {
    /// An empty fold state sized for `config`'s run list.
    pub fn new(config: &CampaignConfig) -> Self {
        let faults = config.injections_per_stage * Stage::ALL.len();
        Self {
            golden_runs: Vec::with_capacity(config.golden_runs),
            golden_ticks: 0,
            golden_compute_ms: 0.0,
            injected_runs: Vec::with_capacity(faults),
            gaussian_runs: Vec::with_capacity(faults),
            autoencoder_runs: Vec::with_capacity(faults),
            gaussian_recomputations: Stage::ALL.iter().map(|stage| (*stage, 0)).collect(),
            autoencoder_recomputations: Stage::ALL.iter().map(|stage| (*stage, 0)).collect(),
        }
    }

    /// Number of campaign jobs folded so far (a fault job counts once,
    /// covering its injected/Gaussian/autoencoder triple).
    pub fn jobs_folded(&self) -> usize {
        self.golden_runs.len() + self.injected_runs.len()
    }

    /// Incremental QoF summaries of the four settings in Table I row order
    /// (golden, injected, Gaussian, autoencoder) over the runs folded so
    /// far — the aggregates the campaign server streams to clients while a
    /// job is in flight.
    pub fn partial_summaries(&self) -> [QofSummary; 4] {
        [
            QofSummary::from_runs(&self.golden_runs),
            QofSummary::from_runs(&self.injected_runs),
            QofSummary::from_runs(&self.gaussian_runs),
            QofSummary::from_runs(&self.autoencoder_runs),
        ]
    }

    pub(crate) fn fold(&mut self, outcome: JobOutcome) {
        match outcome {
            JobOutcome::Golden { qof, ticks, compute_ms, .. } => {
                self.golden_ticks += ticks;
                self.golden_compute_ms += compute_ms;
                self.golden_runs.push(qof);
            }
            JobOutcome::Fault(outcomes, _) => {
                self.injected_runs.push(outcomes.injected);
                accumulate_recomputations(&outcomes.gaussian, &mut self.gaussian_recomputations);
                self.gaussian_runs.push(outcomes.gaussian.qof);
                accumulate_recomputations(
                    &outcomes.autoencoder,
                    &mut self.autoencoder_recomputations,
                );
                self.autoencoder_runs.push(outcomes.autoencoder.qof);
            }
        }
    }

    /// Assembles the final campaign result from a fully folded state.
    pub fn finish(self, config: &CampaignConfig) -> EnvironmentCampaign {
        let golden_divisor = config.golden_runs.max(1) as f64;
        EnvironmentCampaign {
            environment: config.environment,
            golden: SettingResult::new("Golden Run", self.golden_runs),
            injected: SettingResult::new("Injection Run", self.injected_runs),
            gaussian: SettingResult::new("Gaussian-based", self.gaussian_runs),
            autoencoder: SettingResult::new("Autoencoder-based", self.autoencoder_runs),
            gaussian_recomputations: self.gaussian_recomputations,
            autoencoder_recomputations: self.autoencoder_recomputations,
            golden_mean_ticks: self.golden_ticks as f64 / golden_divisor,
            golden_mean_compute_ms: self.golden_compute_ms / golden_divisor,
        }
    }
}

fn accumulate_recomputations(outcome: &MissionOutcome, totals: &mut [(Stage, u64)]) {
    if let Some(stats) = &outcome.detector {
        for (stage, total) in totals.iter_mut() {
            *total += stats.recomputations_of(*stage);
        }
    }
}

/// The campaign execution engine: shards a campaign's run list across a
/// worker pool and restores run order on aggregation.
///
/// # Examples
///
/// ```no_run
/// use mavfi::exec::{run_campaign, SchemeConfig};
/// use mavfi::{CampaignConfig, TrainingSpec};
/// use mavfi_sim::env::EnvironmentKind;
///
/// let config = CampaignConfig::quick(EnvironmentKind::Sparse, 7);
/// let scheme = SchemeConfig::cached_default(TrainingSpec::default());
/// let campaign = run_campaign(&config, &scheme, 4).unwrap();
/// println!("{}", campaign.golden.summary.success_rate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignExecutor {
    pool: WorkerPool,
    /// Campaign jobs per lockstep [`MissionBatch`] worker job; `0` means
    /// "auto" (`MAVFI_BATCH`, falling back to
    /// [`CampaignExecutor::DEFAULT_BATCH`]).
    batch: usize,
}

impl CampaignExecutor {
    /// Campaign jobs per batched worker job when neither
    /// [`CampaignExecutor::with_batch_size`] nor `MAVFI_BATCH` pins one.
    pub const DEFAULT_BATCH: usize = 8;

    /// Creates an executor with a fixed worker count; `0` means "auto"
    /// (`MAVFI_WORKERS`, falling back to the available parallelism).
    pub fn new(workers: usize) -> Self {
        if workers == 0 {
            Self::from_env()
        } else {
            Self { pool: WorkerPool::new(workers), batch: 0 }
        }
    }

    /// An executor configured from `MAVFI_WORKERS` / the available cores.
    pub fn from_env() -> Self {
        Self { pool: WorkerPool::from_env(), batch: 0 }
    }

    /// An executor around an existing worker pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        Self { pool, batch: 0 }
    }

    /// Pins the number of campaign jobs flown per lockstep batch; `0`
    /// restores "auto" (`MAVFI_BATCH`, falling back to
    /// [`CampaignExecutor::DEFAULT_BATCH`]).  Campaign results are
    /// bit-identical for every batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// The resolved number of campaign jobs per lockstep batch.
    pub fn batch_size(&self) -> usize {
        if self.batch != 0 {
            return self.batch;
        }
        std::env::var("MAVFI_BATCH")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&batch| batch > 0)
            .unwrap_or(Self::DEFAULT_BATCH)
    }

    /// The underlying worker pool.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// The worker count missions fan out over.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Builds the per-stage fault plan of a campaign by routing through
    /// [`CampaignPlan::per_stage`]; deterministic given the config.
    pub fn plan_faults(config: &CampaignConfig) -> CampaignPlan {
        CampaignPlan::per_stage(config.injections_per_stage, config.base_seed ^ 0x5eed_fa01)
    }

    fn mission_spec(config: &CampaignConfig, run_index: u64) -> MissionSpec {
        MissionSpec::new(config.environment, config.base_seed.wrapping_add(run_index * 31 + 1))
            .with_time_budget(config.mission_time_budget)
    }

    /// One unified run list: golden runs first, then every planned fault —
    /// the same order the sequential loops used, so folding in index order
    /// reproduces their output exactly, while the pool is free to
    /// interleave long and short missions across workers.
    fn campaign_jobs(config: &CampaignConfig) -> Vec<CampaignJob> {
        let mut jobs: Vec<CampaignJob> = Vec::new();
        jobs.extend((0..config.golden_runs as u64).map(CampaignJob::Golden));
        jobs.extend(
            Self::plan_faults(config)
                .into_iter()
                .enumerate()
                .map(|(index, fault)| CampaignJob::Fault(index, fault)),
        );
        jobs
    }

    /// Runs the golden, injection and both D&R settings of one
    /// environment's campaign as a single sharded run list.
    ///
    /// Each worker job is a lockstep [`MissionBatch`] of
    /// [`batch_size`](Self::batch_size) consecutive campaign jobs (a fault
    /// job contributes its injected/Gaussian/autoencoder triple to the same
    /// batch), stepped tick-by-tick together with one matrix-matrix
    /// detector pass per stage.  The assembled campaign is bit-identical to
    /// [`run_campaign_sequential`](Self::run_campaign_sequential) for every
    /// batch size and worker count.
    ///
    /// # Errors
    ///
    /// Propagates runner errors (none are expected with trained detectors);
    /// with several failures the lowest-indexed run's error is returned,
    /// independent of the worker count, and runs above that failure are
    /// skipped rather than flown.
    pub fn run_campaign(
        &self,
        config: &CampaignConfig,
        scheme: &SchemeConfig,
    ) -> Result<EnvironmentCampaign, MavfiError> {
        let mut state = CampaignFoldState::new(config);
        self.run_campaign_chunks(config, scheme, 0..self.campaign_chunk_count(config), &mut state)?;
        Ok(state.finish(config))
    }

    /// Number of lockstep batches (worker jobs) the campaign's run list
    /// splits into at this executor's [`batch_size`](Self::batch_size) —
    /// the unit of [`run_campaign_chunks`](Self::run_campaign_chunks)
    /// ranges and of the campaign server's checkpoint stride.
    pub fn campaign_chunk_count(&self, config: &CampaignConfig) -> usize {
        let jobs = config.golden_runs + config.injections_per_stage * Stage::ALL.len();
        jobs.div_ceil(self.batch_size().max(1))
    }

    /// Runs the chunks `chunk_range` (clamped to the campaign's chunk
    /// count) of the campaign's batched run list, folding their outcomes
    /// into `state` in chunk order.
    ///
    /// Chunks are independent and the fold is strictly ordered, so running
    /// `0..k` into a fresh state and then `k..n` into that same state —
    /// even across a process restart, with the state serialised in between
    /// — produces exactly the bytes of one uninterrupted `0..n` pass.
    /// [`run_campaign`](Self::run_campaign) is precisely that uninterrupted
    /// pass; the campaign server executes bounded ranges between
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// Propagates runner errors exactly like
    /// [`run_campaign`](Self::run_campaign); `state` keeps the outcomes
    /// folded before the lowest-indexed failure.
    pub fn run_campaign_chunks(
        &self,
        config: &CampaignConfig,
        scheme: &SchemeConfig,
        chunk_range: Range<usize>,
        state: &mut CampaignFoldState,
    ) -> Result<(), MavfiError> {
        let detectors = scheme.detectors();
        let jobs = Self::campaign_jobs(config);
        let chunks: Vec<&[CampaignJob]> = jobs.chunks(self.batch_size().max(1)).collect();
        let end = chunk_range.end.min(chunks.len());
        let start = chunk_range.start.min(end);
        self.pool.try_fold_ordered(
            &chunks[start..end],
            |_, chunk| Self::run_chunk(config, detectors.as_ref(), chunk),
            state,
            |state, _, outcomes| {
                for outcome in outcomes {
                    state.fold(outcome);
                }
            },
        )
    }

    /// Flies one chunk of consecutive campaign jobs as a single lockstep
    /// [`MissionBatch`] and maps the batch outcomes back onto the jobs.
    fn run_chunk(
        config: &CampaignConfig,
        detectors: &TrainedDetectors,
        chunk: &[CampaignJob],
    ) -> Result<Vec<JobOutcome>, MavfiError> {
        let mut missions = Vec::new();
        for job in chunk {
            match job {
                CampaignJob::Golden(index) => {
                    missions.push(BatchMission::golden(Self::mission_spec(config, *index)))
                }
                CampaignJob::Fault(index, fault) => {
                    let spec = Self::mission_spec(config, *index as u64);
                    missions.extend(Protection::ALL.map(|protection| BatchMission {
                        spec,
                        fault: Some(*fault),
                        protection,
                    }));
                }
            }
        }
        let outcomes = MissionBatch::new(&missions, Some(detectors))?.run_to_completion();
        let mut outcomes = outcomes.into_iter();
        let mut next = || outcomes.next().expect("one outcome per batched mission");
        Ok(chunk
            .iter()
            .map(|job| match job {
                CampaignJob::Golden(_) => {
                    let outcome = next();
                    JobOutcome::Golden {
                        qof: outcome.qof,
                        ticks: outcome.pipeline.ticks,
                        compute_ms: outcome.pipeline.total_compute_ms(),
                        reports: Vec::new(),
                    }
                }
                CampaignJob::Fault(..) => {
                    let injected = next();
                    let gaussian = next();
                    let autoencoder = next();
                    JobOutcome::Fault(
                        Box::new(FaultSettingOutcomes {
                            injected: injected.qof,
                            gaussian,
                            autoencoder,
                        }),
                        Vec::new(),
                    )
                }
            })
            .collect())
    }

    /// [`run_campaign`](Self::run_campaign) through the original
    /// one-mission-at-a-time path: every worker job flies a single campaign
    /// job sequentially through [`MissionRunner`].  The verification
    /// baseline for the batched engine — results are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates runner errors exactly like
    /// [`run_campaign`](Self::run_campaign).
    pub fn run_campaign_sequential(
        &self,
        config: &CampaignConfig,
        scheme: &SchemeConfig,
    ) -> Result<EnvironmentCampaign, MavfiError> {
        Ok(self.run_campaign_impl(config, scheme, false)?.0)
    }

    /// [`run_campaign`](Self::run_campaign) with mission telemetry: every
    /// mission flies with a [`MissionTelemetry`] sink attached (wall-clock
    /// kernel timing on) and the per-mission reports are merged — in
    /// deterministic run order — into one campaign-wide
    /// [`TelemetryReport`].
    ///
    /// The campaign results are bit-identical to the uninstrumented path
    /// for any worker count: telemetry only reads.  Within the report, the
    /// deterministic half (counters, latencies in ticks, timeline digest)
    /// is reproducible too; only the `wall_clock` section varies between
    /// machines and runs.
    ///
    /// # Errors
    ///
    /// Propagates runner errors exactly like
    /// [`run_campaign`](Self::run_campaign).
    pub fn run_campaign_instrumented(
        &self,
        config: &CampaignConfig,
        scheme: &SchemeConfig,
    ) -> Result<(EnvironmentCampaign, TelemetryReport), MavfiError> {
        let (campaign, report) = self.run_campaign_impl(config, scheme, true)?;
        Ok((campaign, report.unwrap_or_default()))
    }

    fn run_campaign_impl(
        &self,
        config: &CampaignConfig,
        scheme: &SchemeConfig,
        instrument: bool,
    ) -> Result<(EnvironmentCampaign, Option<TelemetryReport>), MavfiError> {
        let detectors = scheme.detectors();
        let jobs = Self::campaign_jobs(config);

        // Instrumented missions: a fresh sink per mission (constructing it
        // preallocates the telemetry buffers; the mission itself then runs
        // allocation-free), reduced to a report as soon as the mission
        // lands.
        let run_golden = |runner: &MissionRunner| -> (MissionOutcome, Option<MissionReport>) {
            if instrument {
                let mut sink = MissionTelemetry::new();
                let outcome = runner.run_golden_instrumented(&mut sink);
                let report = sink.into_report(&outcome.pipeline);
                (outcome, Some(report))
            } else {
                (runner.run_golden(), None)
            }
        };
        let run_setting = |runner: &MissionRunner,
                           fault: FaultSpec,
                           protection: Protection|
         -> Result<(MissionOutcome, Option<MissionReport>), MavfiError> {
            let trained =
                if protection == Protection::None { None } else { Some(detectors.as_ref()) };
            if instrument {
                let mut sink = MissionTelemetry::new();
                let outcome =
                    runner.run_instrumented(Some(fault), protection, trained, &mut sink)?;
                let report = sink.into_report(&outcome.pipeline);
                Ok((outcome, Some(report)))
            } else {
                Ok((runner.run(Some(fault), protection, trained)?, None))
            }
        };

        let mut aggregate = CampaignFoldState::new(config);
        let mut telemetry = if instrument { Some(TelemetryReport::new()) } else { None };
        let mut state = (&mut aggregate, &mut telemetry);
        let pool_stats = self.pool.try_fold_ordered_with_stats(
            &jobs,
            |_, job| -> Result<JobOutcome, MavfiError> {
                match job {
                    CampaignJob::Golden(index) => {
                        let spec = Self::mission_spec(config, *index);
                        let (outcome, report) = run_golden(&MissionRunner::new(spec));
                        Ok(JobOutcome::Golden {
                            qof: outcome.qof,
                            ticks: outcome.pipeline.ticks,
                            compute_ms: outcome.pipeline.total_compute_ms(),
                            reports: report.into_iter().collect(),
                        })
                    }
                    CampaignJob::Fault(index, fault) => {
                        let spec = Self::mission_spec(config, *index as u64);
                        let runner = MissionRunner::new(spec);
                        let (injected, injected_report) =
                            run_setting(&runner, *fault, Protection::None)?;
                        let (gaussian, gaussian_report) =
                            run_setting(&runner, *fault, Protection::Gaussian)?;
                        let (autoencoder, autoencoder_report) =
                            run_setting(&runner, *fault, Protection::Autoencoder)?;
                        Ok(JobOutcome::Fault(
                            Box::new(FaultSettingOutcomes {
                                injected: injected.qof,
                                gaussian,
                                autoencoder,
                            }),
                            [injected_report, gaussian_report, autoencoder_report]
                                .into_iter()
                                .flatten()
                                .collect(),
                        ))
                    }
                }
            },
            &mut state,
            |(aggregate, telemetry), _, outcome| {
                if let Some(rollup) = telemetry.as_mut() {
                    let reports = match &outcome {
                        JobOutcome::Golden { reports, .. } => reports,
                        JobOutcome::Fault(_, reports) => reports,
                    };
                    for report in reports {
                        rollup.merge_mission(report);
                    }
                }
                aggregate.fold(outcome);
            },
        )?;
        if let Some(rollup) = telemetry.as_mut() {
            rollup.wall_clock.worker_jobs = pool_stats.worker_jobs;
            rollup.wall_clock.fold_stalls += pool_stats.fold_stalls;
        }
        Ok((aggregate.finish(config), telemetry))
    }

    /// Runs an injection-only sweep (golden baseline plus unprotected
    /// injections) as a single sharded run list.
    ///
    /// Golden run `i` flies with seed `base_seed + i`; the injection at plan
    /// position `p` flies with seed `base_seed + (p % runs_per_target)`,
    /// mirroring the sequential per-target loops of the Fig. 3/4 drivers.
    ///
    /// # Errors
    ///
    /// Propagates mission-runner errors, lowest run index first.
    ///
    /// # Panics
    ///
    /// Panics if `sweep.runs_per_target` does not divide `sweep.plan.len()`
    /// — that always indicates a plan built for a different target list.
    pub fn run_sweep(&self, sweep: &InjectionSweep) -> Result<SweepOutcome, MavfiError> {
        assert!(
            sweep.plan.len() % sweep.runs_per_target.max(1) == 0,
            "runs_per_target ({}) must divide the plan length ({})",
            sweep.runs_per_target,
            sweep.plan.len()
        );
        let mut jobs: Vec<CampaignJob> = Vec::new();
        jobs.extend((0..sweep.golden_runs as u64).map(CampaignJob::Golden));
        jobs.extend(
            sweep
                .plan
                .specs()
                .iter()
                .enumerate()
                .map(|(position, fault)| CampaignJob::Fault(position, *fault)),
        );

        let spec_for = |seed_offset: u64| {
            MissionSpec::new(sweep.environment, sweep.base_seed + seed_offset)
                .with_time_budget(sweep.mission_time_budget)
        };
        let runs_per_target = sweep.runs_per_target.max(1);

        let mut outcome = SweepOutcome {
            golden: Vec::with_capacity(sweep.golden_runs),
            injected: Vec::with_capacity(sweep.plan.len()),
        };
        self.pool.try_fold_ordered(
            &jobs,
            |_, job| -> Result<(bool, QofMetrics), MavfiError> {
                match job {
                    CampaignJob::Golden(index) => {
                        Ok((true, MissionRunner::new(spec_for(*index)).run_golden().qof))
                    }
                    CampaignJob::Fault(position, fault) => {
                        let spec = spec_for((position % runs_per_target) as u64);
                        MissionRunner::new(spec)
                            .run(Some(*fault), Protection::None, None)
                            .map(|run| (false, run.qof))
                    }
                }
            },
            &mut outcome,
            |outcome, _, (is_golden, qof)| {
                if is_golden {
                    outcome.golden.push(qof);
                } else {
                    outcome.injected.push(qof);
                }
            },
        )?;
        Ok(outcome)
    }
}

/// Runs one environment's full campaign through a [`CampaignExecutor`] —
/// the single entry point the experiment drivers route through.
///
/// `workers == 0` means "auto" (`MAVFI_WORKERS`, falling back to the
/// available parallelism); any other value pins the worker count.  Results
/// are byte-identical for every choice.
///
/// # Errors
///
/// Propagates runner errors, lowest run index first.
pub fn run_campaign(
    config: &CampaignConfig,
    scheme: &SchemeConfig,
    workers: usize,
) -> Result<EnvironmentCampaign, MavfiError> {
    CampaignExecutor::new(workers).run_campaign(config, scheme)
}

/// [`run_campaign`] with mission telemetry: also returns the campaign-wide
/// [`TelemetryReport`] merged in deterministic run order.  The campaign
/// results are bit-identical to [`run_campaign`] for any worker count.
///
/// # Errors
///
/// Propagates runner errors, lowest run index first.
pub fn run_campaign_instrumented(
    config: &CampaignConfig,
    scheme: &SchemeConfig,
    workers: usize,
) -> Result<(EnvironmentCampaign, TelemetryReport), MavfiError> {
    CampaignExecutor::new(workers).run_campaign_instrumented(config, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_detectors;

    fn quick_detectors() -> TrainedDetectors {
        let spec =
            TrainingSpec { missions: 1, base_seed: 77, mission_time_budget: 25.0, epochs: 5 };
        train_detectors(&spec).0
    }

    #[test]
    fn executor_defaults_resolve_to_at_least_one_worker() {
        assert!(CampaignExecutor::new(0).workers() >= 1);
        assert_eq!(CampaignExecutor::new(3).workers(), 3);
        assert_eq!(CampaignExecutor::with_pool(WorkerPool::serial()).workers(), 1);
    }

    #[test]
    fn sweep_groups_split_per_target() {
        let outcome = SweepOutcome {
            golden: Vec::new(),
            injected: vec![
                QofMetrics {
                    status: mavfi_sim::world::MissionStatus::Succeeded,
                    flight_time_s: 10.0,
                    energy_j: 1.0,
                    distance_m: 5.0,
                };
                6
            ],
        };
        assert_eq!(outcome.injected_groups(2).len(), 3);
        assert_eq!(outcome.injected_groups(6).len(), 1);
    }

    #[test]
    fn batched_campaign_matches_sequential_baseline() {
        let detectors = quick_detectors();
        let config = CampaignConfig {
            environment: EnvironmentKind::Farm,
            golden_runs: 2,
            injections_per_stage: 1,
            base_seed: 9,
            mission_time_budget: 60.0,
        };
        let scheme = SchemeConfig::trained(detectors);
        let sequential =
            CampaignExecutor::new(1).run_campaign_sequential(&config, &scheme).unwrap();
        for batch in [1, 3] {
            let batched = CampaignExecutor::new(2)
                .with_batch_size(batch)
                .run_campaign(&config, &scheme)
                .unwrap();
            assert_eq!(batched, sequential, "batch size {batch}");
        }
    }

    #[test]
    fn chunk_ranges_fold_identically_to_the_uninterrupted_pass() {
        let detectors = quick_detectors();
        let config = CampaignConfig {
            environment: EnvironmentKind::Farm,
            golden_runs: 2,
            injections_per_stage: 1,
            base_seed: 9,
            mission_time_budget: 60.0,
        };
        let scheme = SchemeConfig::trained(detectors);
        let executor = CampaignExecutor::new(2).with_batch_size(2);
        let full = executor.run_campaign(&config, &scheme).unwrap();
        let total = executor.campaign_chunk_count(&config);
        assert_eq!(total, 3); // 5 jobs at batch size 2
        for split in 1..total {
            let mut state = CampaignFoldState::new(&config);
            executor.run_campaign_chunks(&config, &scheme, 0..split, &mut state).unwrap();
            // Round-trip the mid-campaign state through serde, as a
            // checkpoint would.
            let json = serde_json::to_string(&state).unwrap();
            let mut state: CampaignFoldState = serde_json::from_str(&json).unwrap();
            executor.run_campaign_chunks(&config, &scheme, split..total, &mut state).unwrap();
            assert_eq!(state.finish(&config), full, "split after chunk {split}");
        }
        // Out-of-range tails are clamped, not flown twice.
        let mut state = CampaignFoldState::new(&config);
        executor.run_campaign_chunks(&config, &scheme, 0..usize::MAX, &mut state).unwrap();
        assert_eq!(state.jobs_folded(), 5);
        assert_eq!(state.finish(&config), full);
    }

    #[test]
    fn campaign_runs_identically_through_the_entry_point() {
        let detectors = quick_detectors();
        let config = CampaignConfig {
            environment: EnvironmentKind::Farm,
            golden_runs: 1,
            injections_per_stage: 1,
            base_seed: 5,
            mission_time_budget: 60.0,
        };
        let scheme = SchemeConfig::trained(detectors);
        let serial = run_campaign(&config, &scheme, 1).unwrap();
        let parallel = run_campaign(&config, &scheme, 4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.golden.runs.len(), 1);
        assert_eq!(serial.injected.runs.len(), 3);
    }
}
