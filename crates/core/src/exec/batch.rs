//! Batched lockstep mission execution: structure-of-arrays state for many
//! missions stepped tick-by-tick together, with one matrix-matrix detector
//! pass per batch and per stage.
//!
//! A [`MissionBatch`] owns N missions sharing trained detectors and steps
//! them in lockstep through the split tick API of
//! [`PpcPipeline`](mavfi_ppc::pipeline::PpcPipeline): every mission runs the
//! same pipeline stage before any mission runs the next one.  Between
//! stages, the autoencoder delta vectors of every batched mission are scored
//! in a single [`AadDetector::score_batch_with`] matrix-matrix pass instead
//! of one matvec per mission, and missions sharing an environment share one
//! broad-phase depth-capture cull (plus the frame itself while their poses
//! coincide — the common case for the injected/Gaussian/autoencoder triple
//! of one campaign fault before the fault fires).
//!
//! Results are **bit-identical** to running each mission alone through
//! [`MissionRunner`](crate::runner::MissionRunner), for every batch
//! composition: per-mission state never crosses mission boundaries, the
//! shared scorer is read-only, per-tap alarm counters are updated through
//! the same `record_score` path the sequential hooks use, and a mission that
//! diverges (replans, recovers, or dies) simply keeps consuming its own
//! columns without perturbing batch-mates.  `tests/batch_equivalence.rs`
//! asserts this across seeds, environments, fault stages, batch sizes and
//! worker counts.

use mavfi_detect::detector_node::DetectorTap;
use mavfi_detect::AadBatchScratch;
use mavfi_fault::injector::{FaultInjector, FaultSpec};
use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline, TickInFlight};
use mavfi_ppc::states::MonitoredStates;
use mavfi_ppc::tap::{StageTap, TapAction};
use mavfi_sim::energy::PowerModel;
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::geometry::Pose;
use mavfi_sim::sensors::{CaptureScratch, DepthCamera, DepthFrame};
use mavfi_sim::vehicle::QuadrotorState;
use mavfi_sim::world::{MissionStatus, World};

use crate::config::{MissionSpec, Protection};
use crate::error::MavfiError;
use crate::qof::QofMetrics;
use crate::runner::{detector_tap, MissionOutcome, MissionTap, TrainedDetectors};

/// One mission of a batch: the specification plus its fault/protection
/// setting (the same inputs [`MissionRunner::run`](crate::runner::MissionRunner::run)
/// takes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMission {
    /// The mission specification.
    pub spec: MissionSpec,
    /// The fault to inject, if any.
    pub fault: Option<FaultSpec>,
    /// The protection scheme supervising the mission.
    pub protection: Protection,
}

impl BatchMission {
    /// An error-free, unprotected mission (a golden run).
    pub fn golden(spec: MissionSpec) -> Self {
        Self { spec, fault: None, protection: Protection::None }
    }
}

/// Per-mission state that is *not* shared across the batch: the simulated
/// world, the PPC pipeline and the stage tap.  Everything iterated over in
/// lockstep lives in the parallel column vectors of [`MissionBatch`] so the
/// borrow of one member never conflicts with its columns.
struct Member {
    world: World,
    pipeline: PpcPipeline,
    tap: MissionTap,
    dt: f64,
}

/// N missions stepped in lockstep with batched detector scoring and shared
/// depth-capture culling.  See the module docs for the execution model.
pub struct MissionBatch {
    camera: DepthCamera,
    /// Read-only clone of the trained AAD network used to score every
    /// batched delta vector; per-tap counters stay on each tap's own
    /// detector via `record_score`, so sharing it is observationally
    /// identical to per-mission scoring.
    scorer: Option<mavfi_detect::AadDetector>,
    members: Vec<Member>,
    // ---- structure-of-arrays columns, indexed like `members` ----
    frames: Vec<DepthFrame>,
    poses: Vec<Pose>,
    states: Vec<QuadrotorState>,
    alive: Vec<bool>,
    ticks: Vec<u64>,
    outcomes: Vec<Option<MissionOutcome>>,
    inflight: Vec<Option<TickInFlight>>,
    /// The injector half of a deferred stage verdict, merged with the
    /// batched detector verdict in the finish pass.
    pending: Vec<TapAction>,
    // ---- shared scratch ----
    /// Members grouped by `(environment kind, seed)`: identical geometry,
    /// so one broad-phase cull serves the whole group.
    groups: Vec<Vec<usize>>,
    group_alive: Vec<usize>,
    group_poses: Vec<Pose>,
    scratch: CaptureScratch,
    deltas: Vec<[f64; MonitoredStates::DIM]>,
    scored: Vec<usize>,
    aad_scratch: AadBatchScratch,
}

impl std::fmt::Debug for MissionBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MissionBatch")
            .field("missions", &self.members.len())
            .field("alive", &self.alive.iter().filter(|&&alive| alive).count())
            .finish()
    }
}

impl MissionBatch {
    /// Builds a batch over `missions`, validating each mission's protection
    /// scheme in order.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::MissingDetectors`] — for the lowest-indexed
    /// offending mission, exactly like running the missions sequentially —
    /// if a protected mission is requested without trained detectors.
    pub fn new(
        missions: &[BatchMission],
        detectors: Option<&TrainedDetectors>,
    ) -> Result<Self, MavfiError> {
        let mut members = Vec::with_capacity(missions.len());
        let mut scorer = None;
        for mission in missions {
            let detector = detector_tap(mission.protection, detectors)?;
            if scorer.is_none() && detector.as_ref().is_some_and(DetectorTap::is_autoencoder) {
                scorer =
                    Some(detectors.expect("autoencoder tap implies trained detectors").aad.clone());
            }
            let spec = mission.spec;
            let environment = spec.environment.build(spec.seed);
            let ppc_config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
            let pipeline = PpcPipeline::new(ppc_config, environment.start(), environment.goal());
            let world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
            members.push(Member {
                world,
                pipeline,
                tap: MissionTap { injector: mission.fault.map(FaultInjector::new), detector },
                dt: spec.control_period,
            });
        }

        let mut keyed: Vec<((EnvironmentKind, u64), Vec<usize>)> = Vec::new();
        for (index, mission) in missions.iter().enumerate() {
            let key = (mission.spec.environment, mission.spec.seed);
            match keyed.iter_mut().find(|(existing, _)| *existing == key) {
                Some((_, group)) => group.push(index),
                None => keyed.push((key, vec![index])),
            }
        }

        let count = missions.len();
        Ok(Self {
            camera: DepthCamera::default(),
            scorer,
            members,
            frames: vec![DepthFrame::default(); count],
            poses: vec![Pose::default(); count],
            states: vec![QuadrotorState::default(); count],
            alive: vec![true; count],
            ticks: vec![0; count],
            outcomes: (0..count).map(|_| None).collect(),
            inflight: vec![None; count],
            pending: vec![TapAction::Continue; count],
            groups: keyed.into_iter().map(|(_, group)| group).collect(),
            group_alive: Vec::new(),
            group_poses: Vec::new(),
            scratch: CaptureScratch::new(),
            deltas: Vec::with_capacity(count),
            scored: Vec::with_capacity(count),
            aad_scratch: AadBatchScratch::new(),
        })
    }

    /// Number of missions in the batch.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of missions still in progress.
    pub fn alive(&self) -> usize {
        self.alive.iter().filter(|&&alive| alive).count()
    }

    /// Ticks flown so far by mission `index`.
    pub fn ticks(&self, index: usize) -> u64 {
        self.ticks[index]
    }

    /// Advances every in-progress mission by one lockstep tick and returns
    /// the number of missions still in progress afterwards.
    ///
    /// The tick walks all missions through each pipeline stage together:
    /// shared-environment depth capture, perception, planning, control,
    /// then world stepping — with one batched autoencoder scoring pass per
    /// stage covering every mission whose detector observes that stage.
    pub fn tick_batch(&mut self) -> usize {
        let count = self.members.len();

        // ---- Refresh the pose/state columns; retire worlds that are
        // already out of progress (a zero-budget spec never ticks, exactly
        // like the sequential loop). ----
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            if self.members[index].world.status() != MissionStatus::InProgress {
                self.finish_member(index);
                continue;
            }
            let vehicle = self.members[index].world.vehicle();
            self.poses[index] = vehicle.pose();
            self.states[index] = vehicle.state();
        }

        // ---- Depth capture: one broad-phase cull per environment group
        // (the union cull is conservative per pose, so the narrow phase is
        // bit-identical), and one narrow phase per *distinct* pose — a
        // member whose pose equals an earlier batch-mate's reuses the
        // frame outright. ----
        for group_index in 0..self.groups.len() {
            self.group_alive.clear();
            self.group_alive.extend(
                self.groups[group_index].iter().copied().filter(|&index| self.alive[index]),
            );
            if self.group_alive.is_empty() {
                continue;
            }
            self.group_poses.clear();
            self.group_poses.extend(self.group_alive.iter().map(|&index| self.poses[index]));
            let env = self.members[self.group_alive[0]].world.environment();
            self.camera.cull_batch_into(env, &self.group_poses, &mut self.scratch);
            for position in 0..self.group_alive.len() {
                let index = self.group_alive[position];
                let duplicate = self.group_alive[..position]
                    .iter()
                    .copied()
                    .find(|&earlier| self.poses[earlier] == self.poses[index]);
                match duplicate {
                    // `earlier < index`: group indices ascend.
                    Some(earlier) => {
                        let (left, right) = self.frames.split_at_mut(index);
                        right[0].clone_from(&left[earlier]);
                    }
                    None => self.camera.capture_culled_into(
                        env,
                        &self.poses[index],
                        &self.scratch,
                        &mut self.frames[index],
                    ),
                }
            }
        }

        // ---- Begin: perception kernels up to the collision estimate. ----
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, tap, .. } = &mut self.members[index];
            self.inflight[index] =
                Some(pipeline.begin_tick(&self.frames[index], &self.states[index], tap));
        }

        self.perception_stage(count);
        self.planning_stage(count);
        self.control_stage(count);

        // ---- Finish: mission bookkeeping, world stepping, retirement. ----
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { world, pipeline, dt, .. } = &mut self.members[index];
            let dt = *dt;
            let tick = self.inflight[index].take().expect("tick in flight");
            let out = pipeline.finish_tick(tick, &self.states[index]);
            world.step(&out.command, dt);
            self.ticks[index] += 1;
            if world.status() != MissionStatus::InProgress {
                self.finish_member(index);
            }
        }

        self.alive()
    }

    /// Runs every mission to completion and returns the outcomes in batch
    /// order, each bit-identical to the corresponding sequential
    /// [`MissionRunner::run`](crate::runner::MissionRunner::run).
    pub fn run_to_completion(mut self) -> Vec<MissionOutcome> {
        while self.tick_batch() > 0 {}
        self.outcomes.into_iter().map(|outcome| outcome.expect("all missions finished")).collect()
    }

    fn finish_member(&mut self, index: usize) {
        self.alive[index] = false;
        let Member { world, pipeline, tap, .. } = &self.members[index];
        self.outcomes[index] = Some(MissionOutcome {
            qof: QofMetrics {
                status: world.status(),
                flight_time_s: world.elapsed(),
                energy_j: world.energy_joules(),
                distance_m: world.distance_travelled(),
            },
            trail: world.trail().to_vec(),
            fault: tap.injector.as_ref().and_then(|injector| injector.record().cloned()),
            detector: tap.detector.as_ref().map(|detector| detector.stats().clone()),
            pipeline: pipeline.stats().clone(),
        });
    }

    fn perception_stage(&mut self, count: usize) {
        self.scored.clear();
        self.deltas.clear();
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, tap, .. } = &mut self.members[index];
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let mut action = TapAction::Continue;
            if let Some(injector) = tap.injector.as_mut() {
                action = action.merge(injector.after_perception(&mut tick.estimate));
            }
            if let Some(detector) = tap.detector.as_mut() {
                if detector.is_autoencoder() {
                    let deltas = detector
                        .begin_perception(&tick.estimate)
                        .expect("the autoencoder observes every perception stage");
                    self.pending[index] = action;
                    self.deltas.push(deltas);
                    self.scored.push(index);
                    continue;
                }
                action = action.merge(detector.after_perception(&mut tick.estimate));
            }
            pipeline.apply_perception_action(tick, &self.states[index], action);
        }
        if self.scored.is_empty() {
            return;
        }
        let scorer = self.scorer.as_ref().expect("scored members imply a shared scorer");
        // One matrix-matrix pass over every collected delta vector.  The
        // scorer is read-only; borrowing it and the scratch field-wise keeps
        // the member mutations below legal.
        let scores = scorer.score_batch_with(&self.deltas, &mut self.aad_scratch);
        for (position, &index) in self.scored.iter().enumerate() {
            let Member { pipeline, tap, .. } = &mut self.members[index];
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let detector = tap.detector.as_mut().expect("scored member has a detector");
            let action = self.pending[index]
                .merge(detector.finish_perception(scores[position], &mut tick.estimate));
            pipeline.apply_perception_action(tick, &self.states[index], action);
        }
    }

    fn planning_stage(&mut self, count: usize) {
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, .. } = &mut self.members[index];
            pipeline.planning_stage(self.inflight[index].as_mut().expect("tick in flight"));
        }
        self.scored.clear();
        self.deltas.clear();
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, tap, .. } = &mut self.members[index];
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let MissionTap { injector, detector } = tap;
            let (action, deltas) = pipeline.with_planning_tap(|trajectory, active_index| {
                let mut action = TapAction::Continue;
                if let Some(injector) = injector.as_mut() {
                    action = action.merge(injector.after_planning(trajectory, active_index));
                }
                let mut deltas = None;
                if let Some(detector) = detector.as_mut() {
                    if detector.is_autoencoder() {
                        // `None` on an empty trajectory: the sequential hook
                        // continues without observing — so does this driver.
                        deltas = detector.begin_planning(trajectory, active_index);
                    } else {
                        action = action.merge(detector.after_planning(trajectory, active_index));
                    }
                }
                (action, deltas)
            });
            match deltas {
                Some(deltas) => {
                    self.pending[index] = action;
                    self.deltas.push(deltas);
                    self.scored.push(index);
                }
                None => pipeline.apply_planning_action(tick, action),
            }
        }
        if self.scored.is_empty() {
            return;
        }
        let scorer = self.scorer.as_ref().expect("scored members imply a shared scorer");
        // One matrix-matrix pass over every collected delta vector.  The
        // scorer is read-only; borrowing it and the scratch field-wise keeps
        // the member mutations below legal.
        let scores = scorer.score_batch_with(&self.deltas, &mut self.aad_scratch);
        for (position, &index) in self.scored.iter().enumerate() {
            let Member { pipeline, tap, .. } = &mut self.members[index];
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let detector = tap.detector.as_mut().expect("scored member has a detector");
            let action = pipeline.with_planning_tap(|trajectory, active_index| {
                detector.finish_planning(scores[position], trajectory, active_index)
            });
            pipeline.apply_planning_action(tick, self.pending[index].merge(action));
        }
    }

    fn control_stage(&mut self, count: usize) {
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, dt, .. } = &mut self.members[index];
            let dt = *dt;
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            pipeline.control_stage(tick, &self.states[index], dt);
        }
        self.scored.clear();
        self.deltas.clear();
        for index in 0..count {
            if !self.alive[index] {
                continue;
            }
            let Member { pipeline, tap, dt, .. } = &mut self.members[index];
            let dt = *dt;
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let mut action = TapAction::Continue;
            if let Some(injector) = tap.injector.as_mut() {
                action = action.merge(injector.after_control(&mut tick.command));
            }
            if let Some(detector) = tap.detector.as_mut() {
                if detector.is_autoencoder() {
                    let deltas = detector
                        .begin_control(&tick.command)
                        .expect("the autoencoder observes every control stage");
                    self.pending[index] = action;
                    self.deltas.push(deltas);
                    self.scored.push(index);
                    continue;
                }
                action = action.merge(detector.after_control(&mut tick.command));
            }
            pipeline.apply_control_action(tick, &self.states[index], dt, action);
        }
        if self.scored.is_empty() {
            return;
        }
        let scorer = self.scorer.as_ref().expect("scored members imply a shared scorer");
        // One matrix-matrix pass over every collected delta vector.  The
        // scorer is read-only; borrowing it and the scratch field-wise keeps
        // the member mutations below legal.
        let scores = scorer.score_batch_with(&self.deltas, &mut self.aad_scratch);
        for (position, &index) in self.scored.iter().enumerate() {
            let Member { pipeline, tap, dt, .. } = &mut self.members[index];
            let dt = *dt;
            let tick = self.inflight[index].as_mut().expect("tick in flight");
            let detector = tap.detector.as_mut().expect("scored member has a detector");
            let action = self.pending[index]
                .merge(detector.finish_control(scores[position], &mut tick.command));
            pipeline.apply_control_action(tick, &self.states[index], dt, action);
        }
    }
}
