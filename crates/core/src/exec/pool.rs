//! Scoped-thread worker pool with deterministic, order-restoring output.
//!
//! A paper-scale campaign is 100 golden + 300 injection runs × 3 protection
//! settings × several environments of embarrassingly parallel missions: every
//! run derives its seed from the campaign base seed and its own index, so no
//! run depends on any other.  [`WorkerPool`] exploits that:
//!
//! * **Deterministic seeding** — jobs are identified by index; seed
//!   derivation stays a pure function of `(base_seed, index)` exactly as in
//!   the serial code, so a run's inputs never depend on scheduling.
//! * **Shared immutable state** — trained detectors (and any other captured
//!   context) are borrowed by the worker closures, not cloned per worker.
//! * **Stable ordering** — results carry their job index and are handed to
//!   the caller in input order, making parallel output byte-identical to
//!   serial output for any worker count.
//!
//! Workers pull the next job index from an atomic counter (work stealing),
//! so long and short missions interleave without static partitioning skew.
//! [`WorkerPool::fold_ordered`] additionally *streams* results through an
//! order-restoring aggregator: completed results are folded in index order
//! while later jobs are still running, so bulky per-run artifacts (full
//! [`MissionOutcome`](crate::runner::MissionOutcome)s with sampled trails)
//! can be reduced to compact statistics without ever materialising the whole
//! campaign in memory.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// How far ahead of the aggregator workers may claim jobs, as a multiple of
/// the worker count (with a floor for small pools).  This caps the
/// out-of-order completion buffer: even when the head-of-line job is the
/// slowest in the campaign, at most this many completed results wait in
/// memory while everything behind the head stalls.
const CLAIM_WINDOW_PER_WORKER: usize = 8;
const CLAIM_WINDOW_MIN: usize = 64;

/// A scoped-thread worker pool running indexed jobs with stable output
/// order.
///
/// # Examples
///
/// ```
/// use mavfi::exec::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.run_ordered(&[1u64, 2, 3, 4, 5], |_, &n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

/// Scheduling statistics of one pool execution: observability data for the
/// campaign telemetry rollup.
///
/// Everything here is **scheduling-dependent** (which worker claims which
/// job, how often the claim window stalls) and therefore nondeterministic —
/// it belongs in the wall-clock section of a telemetry report, never in
/// results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed per worker, indexed by worker id.  A single entry for
    /// serial/inline execution.
    pub worker_jobs: Vec<u64>,
    /// Claim-window backpressure naps taken across all workers (each nap is
    /// one bounded sleep while waiting for the fold position to advance).
    pub fold_stalls: u64,
}

impl PoolStats {
    /// Total jobs executed across workers.
    pub fn total_jobs(&self) -> u64 {
        self.worker_jobs.iter().sum()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Min-heap entry pairing a result with its job index; ordering ignores the
/// payload so results dequeue strictly by index.
struct Pending<R> {
    index: usize,
    result: R,
}

impl<R> PartialEq for Pending<R> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<R> Eq for Pending<R> {}

impl<R> PartialOrd for Pending<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<R> Ord for Pending<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest index.
        other.index.cmp(&self.index)
    }
}

impl WorkerPool {
    /// Creates a pool with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// A single-worker pool: jobs run inline on the calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Reads the worker count from the `MAVFI_WORKERS` environment variable,
    /// falling back to the machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("MAVFI_WORKERS")
            .ok()
            .and_then(|value| value.parse::<usize>().ok())
            .filter(|&workers| workers > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self::new(workers)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` for every element of `jobs`, returning results in input
    /// order.  `job` receives the element's index and a reference to it.
    ///
    /// With one worker (or one job) everything runs inline on the calling
    /// thread; otherwise scoped worker threads pull indices from a shared
    /// counter.  Results are identical either way.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after all workers have stopped.
    pub fn run_ordered<T, R, F>(&self, jobs: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut results = Vec::with_capacity(jobs.len());
        self.fold_ordered(jobs, job, &mut results, |results, _, result| results.push(result));
        results
    }

    /// Like [`run_ordered`](Self::run_ordered) for fallible jobs: returns the
    /// first error by job order (not completion order), so error reporting is
    /// as deterministic as success output.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job; jobs above that
    /// index are skipped (see [`try_fold_ordered`](Self::try_fold_ordered)).
    pub fn try_run_ordered<T, R, E, F>(&self, jobs: &[T], job: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let mut results = Vec::with_capacity(jobs.len());
        self.try_fold_ordered(jobs, job, &mut results, |results, _, result| {
            results.push(result);
        })?;
        Ok(results)
    }

    /// [`fold_ordered`](Self::fold_ordered) for fallible jobs with early
    /// abort: `fold` receives successful results in strict job-index order
    /// until the lowest-indexed failure, whose error is returned.
    ///
    /// After a job fails, jobs with a *higher* index are skipped instead of
    /// run, so a failure early in a long campaign does not cost the whole
    /// campaign's compute.  Jobs below an observed failure always still run
    /// (a failure can only skip indices above itself), which makes the
    /// returned error — and the folded prefix, exactly the results a serial
    /// `?` loop would have folded before stopping — independent of the
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job.
    pub fn try_fold_ordered<T, R, E, S, F, G>(
        &self,
        jobs: &[T],
        job: F,
        state: &mut S,
        fold: G,
    ) -> Result<(), E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
        G: FnMut(&mut S, usize, R),
    {
        self.try_fold_ordered_impl(jobs, job, state, fold, None)
    }

    /// [`try_fold_ordered`](Self::try_fold_ordered) that additionally
    /// reports scheduling statistics ([`PoolStats`]) for telemetry.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job, exactly like
    /// [`try_fold_ordered`](Self::try_fold_ordered).
    pub fn try_fold_ordered_with_stats<T, R, E, S, F, G>(
        &self,
        jobs: &[T],
        job: F,
        state: &mut S,
        fold: G,
    ) -> Result<PoolStats, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
        G: FnMut(&mut S, usize, R),
    {
        let mut stats = PoolStats::default();
        self.try_fold_ordered_impl(jobs, job, state, fold, Some(&mut stats))?;
        Ok(stats)
    }

    fn try_fold_ordered_impl<T, R, E, S, F, G>(
        &self,
        jobs: &[T],
        job: F,
        state: &mut S,
        mut fold: G,
        stats: Option<&mut PoolStats>,
    ) -> Result<(), E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
        G: FnMut(&mut S, usize, R),
    {
        let lowest_failure = AtomicUsize::new(usize::MAX);
        let mut combined = (state, None::<E>);
        self.fold_ordered_impl(
            jobs,
            |index, item| {
                // Skip only indices *above* a recorded failure: a job below
                // it (which could be an even lower failure) always runs, so
                // which error wins never depends on scheduling.
                if index > lowest_failure.load(Ordering::Relaxed) {
                    return None;
                }
                let result = job(index, item);
                if result.is_err() {
                    lowest_failure.fetch_min(index, Ordering::Relaxed);
                }
                Some(result)
            },
            &mut combined,
            |(state, error), index, outcome| match outcome {
                Some(Ok(result)) if error.is_none() => fold(state, index, result),
                Some(Err(e)) if error.is_none() => *error = Some(e),
                _ => {}
            },
            stats,
        );
        match combined.1 {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Streams results through an order-restoring aggregator: `fold` is
    /// called exactly once per job, in strict job-index order, while later
    /// jobs may still be running on other workers.
    ///
    /// This is the memory-friendly sibling of
    /// [`run_ordered`](Self::run_ordered): instead of materialising every
    /// result, only the out-of-order completion window is buffered, and the
    /// caller reduces each result to aggregate state as soon as its turn
    /// comes.  Workers may claim jobs only a fixed window ahead of the
    /// aggregator's fold position, so the buffer stays bounded even under
    /// pathological skew (for example a head-of-line golden run flying its
    /// whole time budget while every later job finishes instantly); workers
    /// that run out of window briefly sleep instead of piling up results.
    /// Because `fold` observes the same results in the same order as a
    /// serial loop, any aggregation — including floating-point sums — is
    /// byte-identical to sequential execution.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after all workers have stopped.
    pub fn fold_ordered<T, R, S, F, G>(&self, jobs: &[T], job: F, state: &mut S, fold: G)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(&mut S, usize, R),
    {
        self.fold_ordered_impl(jobs, job, state, fold, None);
    }

    /// [`fold_ordered`](Self::fold_ordered) that additionally reports
    /// scheduling statistics ([`PoolStats`]) for telemetry.
    pub fn fold_ordered_with_stats<T, R, S, F, G>(
        &self,
        jobs: &[T],
        job: F,
        state: &mut S,
        fold: G,
    ) -> PoolStats
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(&mut S, usize, R),
    {
        let mut stats = PoolStats::default();
        self.fold_ordered_impl(jobs, job, state, fold, Some(&mut stats));
        stats
    }

    fn fold_ordered_impl<T, R, S, F, G>(
        &self,
        jobs: &[T],
        job: F,
        state: &mut S,
        mut fold: G,
        stats: Option<&mut PoolStats>,
    ) where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(&mut S, usize, R),
    {
        let workers = self.workers.min(jobs.len()).max(1);
        if workers == 1 {
            for (index, item) in jobs.iter().enumerate() {
                fold(state, index, job(index, item));
            }
            if let Some(stats) = stats {
                stats.worker_jobs = vec![jobs.len() as u64];
                stats.fold_stalls = 0;
            }
            return;
        }

        let next_job = AtomicUsize::new(0);
        let folded = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let window = (workers * CLAIM_WINDOW_PER_WORKER).max(CLAIM_WINDOW_MIN);
        // Per-worker job tallies and the shared stall counter cost a few
        // relaxed increments per job — cheap enough to collect
        // unconditionally and only read back when stats were requested.
        let job_counts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let stall_count = AtomicU64::new(0);
        let (sender, receiver) = mpsc::channel::<Pending<R>>();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let sender = sender.clone();
                    scope.spawn({
                        let next_job = &next_job;
                        let folded = &folded;
                        let aborted = &aborted;
                        let job = &job;
                        let job_counts = &job_counts;
                        let stall_count = &stall_count;
                        move || {
                            // If this worker unwinds mid-job, its result never
                            // reaches the aggregator and the fold position
                            // stops advancing — workers parked on the claim
                            // window below would otherwise sleep forever.  The
                            // guard flips the abort flag on the way out so
                            // every parked worker exits and the panic can
                            // propagate through `handle.join()`.
                            struct AbortOnPanic<'a>(&'a AtomicBool);
                            impl Drop for AbortOnPanic<'_> {
                                fn drop(&mut self) {
                                    if std::thread::panicking() {
                                        self.0.store(true, Ordering::Release);
                                    }
                                }
                            }
                            let _guard = AbortOnPanic(aborted);
                            loop {
                                if aborted.load(Ordering::Acquire) {
                                    break;
                                }
                                let index = next_job.fetch_add(1, Ordering::Relaxed);
                                let Some(item) = jobs.get(index) else { break };
                                // Claim-window backpressure: never run more than
                                // `window` jobs ahead of the fold position.  The
                                // worker holding the lowest in-flight index is
                                // always inside the window, so the pool as a
                                // whole keeps making progress.
                                while index >= folded.load(Ordering::Acquire) + window {
                                    if aborted.load(Ordering::Acquire) {
                                        return;
                                    }
                                    stall_count.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                job_counts[worker].fetch_add(1, Ordering::Relaxed);
                                // A send only fails when the aggregator side was
                                // torn down early, which scoped lifetimes rule
                                // out short of a panic already in flight.
                                if sender.send(Pending { index, result: job(index, item) }).is_err()
                                {
                                    break;
                                }
                            }
                        }
                    })
                })
                .collect();
            // The workers hold clones; dropping ours lets `recv` end once
            // every worker is done.
            drop(sender);

            let mut pending: BinaryHeap<Pending<R>> = BinaryHeap::new();
            let mut next_expected = 0usize;
            while let Ok(done) = receiver.recv() {
                pending.push(done);
                while pending.peek().is_some_and(|entry| entry.index == next_expected) {
                    let entry = pending.pop().expect("peeked entry");
                    fold(state, entry.index, entry.result);
                    next_expected += 1;
                }
                folded.store(next_expected, Ordering::Release);
            }

            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        if let Some(stats) = stats {
            stats.worker_jobs =
                job_counts.iter().map(|count| count.load(Ordering::Relaxed)).collect();
            stats.fold_stalls = stall_count.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order_for_any_worker_count() {
        let jobs: Vec<usize> = (0..37).collect();
        let serial = WorkerPool::serial().run_ordered(&jobs, |i, &n| i * 1000 + n);
        for workers in [2, 3, 8, 64] {
            let parallel = WorkerPool::new(workers).run_ordered(&jobs, |i, &n| i * 1000 + n);
            assert_eq!(parallel, serial, "worker count {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<u32> = (0..100).collect();
        let results =
            WorkerPool::new(8).run_ordered(&jobs, |_, _| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(results.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let results = WorkerPool::new(4).run_ordered(&[] as &[u8], |_, &b| b);
        assert!(results.is_empty());
    }

    #[test]
    fn try_run_reports_lowest_indexed_error() {
        let jobs: Vec<usize> = (0..50).collect();
        let outcome =
            WorkerPool::new(8)
                .try_run_ordered(&jobs, |i, _| if i % 7 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(outcome.unwrap_err(), 3);
    }

    #[test]
    fn worker_count_is_clamped_and_env_fallback_works() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert!(WorkerPool::from_env().workers() >= 1);
    }

    #[test]
    fn shared_state_is_borrowed_not_cloned() {
        let shared = [1u64, 2, 3];
        let sums = WorkerPool::new(4)
            .run_ordered(&[10u64, 20], |_, &base| base + shared.iter().sum::<u64>());
        assert_eq!(sums, vec![16, 26]);
    }

    #[test]
    fn fold_ordered_observes_strict_index_order() {
        let jobs: Vec<u64> = (0..200).collect();
        for workers in [1, 2, 8] {
            let mut seen = Vec::new();
            WorkerPool::new(workers).fold_ordered(
                &jobs,
                |index, &n| {
                    // Uneven job durations force out-of-order completion.
                    let spin = (n % 13) * 500;
                    let mut acc = 0u64;
                    for i in 0..spin {
                        acc = acc.wrapping_add(std::hint::black_box(i));
                    }
                    (index, n.wrapping_add(acc.wrapping_mul(0)))
                },
                &mut seen,
                |seen, index, (job_index, n)| {
                    assert_eq!(index, job_index);
                    seen.push((index, n));
                },
            );
            let expected: Vec<(usize, u64)> = (0..200).map(|n| (n as usize, n)).collect();
            assert_eq!(seen, expected, "worker count {workers}");
        }
    }

    #[test]
    fn stalled_head_job_bounds_the_completion_buffer() {
        // Job 0 is by far the slowest: every other job would complete while
        // the head of the line is still running.  The claim window must cap
        // how far past the fold position workers run — nothing can fold
        // until job 0 does, so until then no job at or beyond the window
        // (max(4 * 8, 64) = 64 here) may execute — and order restoration
        // must still hold once job 0 lands.
        use std::sync::atomic::AtomicBool;
        let jobs: Vec<u64> = (0..500).collect();
        let head_done = AtomicBool::new(false);
        let max_before_head = AtomicUsize::new(0);
        let mut seen = Vec::new();
        WorkerPool::new(4).fold_ordered(
            &jobs,
            |index, &n| {
                if index == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    head_done.store(true, Ordering::Release);
                } else if !head_done.load(Ordering::Acquire) {
                    max_before_head.fetch_max(index, Ordering::Relaxed);
                }
                n
            },
            &mut seen,
            |seen: &mut Vec<u64>, _, n| seen.push(n),
        );
        assert_eq!(seen, jobs);
        let max_index = max_before_head.load(Ordering::Relaxed);
        assert!(max_index < 64, "job {max_index} ran beyond the claim window while job 0 stalled");
    }

    #[test]
    fn errors_stop_the_pool_from_claiming_the_tail() {
        // Serial pool: execution order is the job order, so everything after
        // the first error must be skipped, deterministically.
        let executed = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..100).collect();
        let outcome = WorkerPool::serial().try_run_ordered(&jobs, |i, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(outcome.unwrap_err(), 3);
        assert_eq!(executed.load(Ordering::Relaxed), 4, "jobs after the error must not run");

        // Parallel pool: the skipped tail depends on timing, but the
        // reported error is still the lowest-indexed one and at least the
        // far tail is never claimed once the failure has been observed.
        let executed = AtomicUsize::new(0);
        let outcome = WorkerPool::new(8).try_run_ordered(&jobs, |i, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i % 7 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(outcome.unwrap_err(), 3);
        assert!(executed.load(Ordering::Relaxed) <= 100);
    }

    #[test]
    #[should_panic(expected = "job 0 exploded")]
    fn panicking_job_propagates_instead_of_hanging() {
        // Job 0 panics while enough jobs exist that other workers park on
        // the claim window (200 > 64); without the abort flag they would
        // sleep forever waiting for a fold position that can never advance.
        let jobs: Vec<u64> = (0..200).collect();
        WorkerPool::new(4).run_ordered(&jobs, |i, &n| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
                panic!("job 0 exploded");
            }
            n
        });
    }

    #[test]
    fn pool_stats_account_for_every_job() {
        let jobs: Vec<u64> = (0..120).collect();
        for workers in [1, 2, 8] {
            let mut sum = 0u64;
            let stats = WorkerPool::new(workers).fold_ordered_with_stats(
                &jobs,
                |_, &n| n,
                &mut sum,
                |sum, _, n| *sum += n,
            );
            assert_eq!(sum, jobs.iter().sum::<u64>(), "worker count {workers}");
            assert_eq!(stats.total_jobs(), jobs.len() as u64, "worker count {workers}");
            assert_eq!(stats.worker_jobs.len(), workers.min(jobs.len()));
        }
    }

    #[test]
    fn try_fold_with_stats_reports_error_and_partial_counts() {
        let jobs: Vec<usize> = (0..50).collect();
        let mut folded = Vec::new();
        let outcome = WorkerPool::new(4).try_fold_ordered_with_stats(
            &jobs,
            |i, _| if i == 10 { Err(i) } else { Ok(i) },
            &mut folded,
            |folded, _, i| folded.push(i),
        );
        assert_eq!(outcome.unwrap_err(), 10);
        assert_eq!(folded, (0..10).collect::<Vec<_>>());

        let mut folded = Vec::new();
        let stats = WorkerPool::serial()
            .try_fold_ordered_with_stats(
                &jobs,
                |i, _| Ok::<usize, ()>(i),
                &mut folded,
                |folded, _, i| folded.push(i),
            )
            .unwrap();
        assert_eq!(stats.total_jobs(), 50);
        assert_eq!(stats.fold_stalls, 0);
    }

    #[test]
    fn fold_ordered_matches_serial_floating_point_sums() {
        // Summation order changes floating-point results; identical sums
        // prove the aggregator restored the serial order bit for bit.
        let jobs: Vec<u64> = (0..500).collect();
        let sum = |pool: WorkerPool| {
            let mut total = 0.0f64;
            pool.fold_ordered(
                &jobs,
                |_, &n| 1.0 / (n as f64 + 1.0),
                &mut total,
                |total, _, term| *total += term,
            );
            total.to_bits()
        };
        let serial = sum(WorkerPool::serial());
        assert_eq!(sum(WorkerPool::new(2)), serial);
        assert_eq!(sum(WorkerPool::new(8)), serial);
    }
}
