//! Cross-experiment cache of trained detector banks.
//!
//! Detector training flies several error-free missions and fits both the
//! Gaussian bank and the autoencoder — seconds of work that the fig3–fig9 /
//! table1–table2 drivers used to repeat even when two experiments asked for
//! the exact same training configuration.  Training is fully deterministic
//! given `(environment, TrainingSpec)`, so the result can be shared: the
//! cache hands out [`Arc`]s to one immutable trained bank per configuration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mavfi_detect::training::TrainingFingerprint;
use mavfi_sim::env::EnvironmentKind;

use crate::config::TrainingSpec;
use crate::runner::TrainedDetectors;
use crate::training::train_detectors_in;

/// Hit/miss counters of a [`TrainedDetectorCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to train from scratch.
    pub misses: usize,
    /// Distinct training configurations currently cached.
    pub entries: usize,
}

/// A cache of trained detectors keyed by `(environment, training config)`.
///
/// Lookups either return a shared handle to an existing bank or train one on
/// the spot (holding the cache lock, so concurrent callers of the same
/// configuration never train twice).  Cached detectors are bit-identical to
/// freshly trained ones, so routing an experiment through the cache cannot
/// change its results — only how often training runs.
///
/// Most callers want the process-wide [`TrainedDetectorCache::global`];
/// dedicated instances are useful in tests and benches that measure cold
/// versus warm behaviour.
///
/// # Examples
///
/// ```no_run
/// use mavfi::exec::TrainedDetectorCache;
/// use mavfi::TrainingSpec;
/// use mavfi_sim::env::EnvironmentKind;
///
/// let cache = TrainedDetectorCache::new();
/// let spec = TrainingSpec { missions: 1, epochs: 5, ..TrainingSpec::default() };
/// let first = cache.get_or_train(EnvironmentKind::Randomized, &spec); // trains
/// let second = cache.get_or_train(EnvironmentKind::Randomized, &spec); // cache hit
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// ```
#[derive(Debug, Default)]
pub struct TrainedDetectorCache {
    // Per-key cells: the map lock is only held to look up or insert a cell,
    // never during training, so different configurations train concurrently
    // while same-configuration callers deduplicate on the cell.
    entries: Mutex<HashMap<u64, Arc<OnceLock<Arc<TrainedDetectors>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TrainedDetectorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache shared by every experiment driver.
    pub fn global() -> &'static TrainedDetectorCache {
        static GLOBAL: OnceLock<TrainedDetectorCache> = OnceLock::new();
        GLOBAL.get_or_init(TrainedDetectorCache::new)
    }

    /// The cache key of a training configuration: a stable fingerprint of
    /// the training environment and every [`TrainingSpec`] field.
    pub fn key(environment: EnvironmentKind, spec: &TrainingSpec) -> u64 {
        // Exhaustive destructuring: adding a field to TrainingSpec without
        // fingerprinting it would silently alias distinct configurations,
        // so make that a compile error instead.
        let TrainingSpec { missions, base_seed, mission_time_budget, epochs } = *spec;
        TrainingFingerprint::new()
            .push_str(environment.label())
            .push(missions as u64)
            .push(base_seed)
            .push_f64(mission_time_budget)
            .push(epochs as u64)
            .finish()
    }

    /// Returns the trained detectors for `(environment, spec)`, training
    /// them first if this configuration has not been seen before.
    ///
    /// The returned handle is shared: campaign workers borrow the same
    /// immutable bank instead of cloning or retraining per experiment.
    pub fn get_or_train(
        &self,
        environment: EnvironmentKind,
        spec: &TrainingSpec,
    ) -> Arc<TrainedDetectors> {
        let cell = self.cell(Self::key(environment, spec));
        // Training happens inside the per-key cell, with the map lock
        // released: a second caller asking for the same configuration
        // blocks on the cell and then reuses the result, while callers of
        // other configurations proceed (and train) independently.
        let mut trained_here = false;
        let bank = Arc::clone(cell.get_or_init(|| {
            trained_here = true;
            Arc::new(train_detectors_in(environment, spec).0)
        }));
        if trained_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        bank
    }

    /// Stores an externally trained bank under `(environment, spec)`,
    /// returning the handle future lookups will see — the passed bank, or
    /// the existing one if this configuration was already cached (cells are
    /// write-once).  Useful when a caller has already paid for training and
    /// wants later experiments to reuse it.
    pub fn insert(
        &self,
        environment: EnvironmentKind,
        spec: &TrainingSpec,
        detectors: TrainedDetectors,
    ) -> Arc<TrainedDetectors> {
        let cell = self.cell(Self::key(environment, spec));
        let bank = Arc::new(detectors);
        Arc::clone(cell.get_or_init(|| Arc::clone(&bank)))
    }

    fn cell(&self, key: u64) -> Arc<OnceLock<Arc<TrainedDetectors>>> {
        let mut entries = self.entries.lock().expect("detector cache poisoned");
        Arc::clone(entries.entry(key).or_default())
    }

    /// Hit/miss/entry counters (for logging and bench banners).  Entries
    /// count trained banks; a configuration mid-training is not included.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().expect("detector cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: entries.values().filter(|cell| cell.get().is_some()).count(),
        }
    }

    /// Drops every cached bank and resets the counters.  A training run
    /// already in flight completes into its detached cell and is dropped
    /// with it.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("detector cache poisoned");
        entries.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TrainingSpec {
        TrainingSpec { missions: 1, base_seed: 808, mission_time_budget: 15.0, epochs: 2 }
    }

    #[test]
    fn keys_separate_environment_and_every_spec_field() {
        let spec = tiny_spec();
        let base = TrainedDetectorCache::key(EnvironmentKind::Randomized, &spec);
        assert_eq!(base, TrainedDetectorCache::key(EnvironmentKind::Randomized, &spec));
        assert_ne!(base, TrainedDetectorCache::key(EnvironmentKind::Sparse, &spec));
        assert_ne!(
            base,
            TrainedDetectorCache::key(
                EnvironmentKind::Randomized,
                &TrainingSpec { missions: 2, ..spec }
            )
        );
        assert_ne!(
            base,
            TrainedDetectorCache::key(
                EnvironmentKind::Randomized,
                &TrainingSpec { base_seed: 809, ..spec }
            )
        );
        assert_ne!(
            base,
            TrainedDetectorCache::key(
                EnvironmentKind::Randomized,
                &TrainingSpec { mission_time_budget: 16.0, ..spec }
            )
        );
        assert_ne!(
            base,
            TrainedDetectorCache::key(
                EnvironmentKind::Randomized,
                &TrainingSpec { epochs: 3, ..spec }
            )
        );
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_bank() {
        let cache = TrainedDetectorCache::new();
        let spec = tiny_spec();
        let first = cache.get_or_train(EnvironmentKind::Randomized, &spec);
        let second = cache.get_or_train(EnvironmentKind::Randomized, &spec);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn insert_preseeds_a_configuration() {
        let cache = TrainedDetectorCache::new();
        let spec = tiny_spec();
        let trained = crate::training::train_detectors(&spec).0;
        let handle = cache.insert(EnvironmentKind::Randomized, &spec, trained);
        let looked_up = cache.get_or_train(EnvironmentKind::Randomized, &spec);
        assert!(Arc::ptr_eq(&handle, &looked_up));
        assert_eq!(cache.stats().misses, 0);
    }
}
