//! Parallel campaign execution: worker pool, trained-detector cache and the
//! campaign engine.
//!
//! The paper's evaluation protocol (§VI) is 100 golden + 300 injection
//! missions per environment, repeated across ten figures and tables — all
//! embarrassingly parallel, and all sharing a handful of trained detector
//! banks.  This module turns that structure into wall-clock savings without
//! giving up reproducibility:
//!
//! * [`WorkerPool`] — scoped-thread fan-out with work stealing and an
//!   order-restoring streaming aggregator ([`WorkerPool::fold_ordered`]);
//!   results are byte-identical for any worker count.
//! * [`TrainedDetectorCache`] — one trained GAD/AAD bank per
//!   `(environment, training config)`, shared across experiments instead of
//!   retrained per driver.
//! * [`CampaignExecutor`] / [`run_campaign`] — the engine the experiment
//!   drivers route through: it builds a campaign's full run list (golden +
//!   per-stage injections), derives every run's seed from
//!   `(base_seed, run_index)` exactly as the sequential path does, and folds
//!   outcomes in run order.
//! * [`MissionBatch`] — batched lockstep execution: each worker job steps a
//!   structure-of-arrays batch of missions tick-by-tick together, scoring
//!   every batched autoencoder observation in one matrix-matrix pass per
//!   stage and sharing depth-capture culling across missions flying the
//!   same environment.  Outcomes are bit-identical to per-mission runs.
//!
//! Worker counts come from the `MAVFI_WORKERS` environment variable by
//! default (falling back to the machine's available parallelism), and can be
//! pinned per executor; batch sizes likewise come from `MAVFI_BATCH` and can
//! be pinned via [`CampaignExecutor::with_batch_size`].

mod batch;
mod cache;
mod engine;
mod pool;

pub use batch::{BatchMission, MissionBatch};
pub use cache::{CacheStats, TrainedDetectorCache};
pub use engine::{
    run_campaign, run_campaign_instrumented, CampaignExecutor, CampaignFoldState, DetectorSource,
    InjectionSweep, SchemeConfig, SweepOutcome,
};
pub use pool::{PoolStats, WorkerPool};
