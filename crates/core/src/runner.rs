//! The mission runner: one closed-loop flight of the PPC pipeline in the
//! simulated world, optionally with a fault injected and a detection and
//! recovery scheme supervising the inter-kernel states.

use mavfi_detect::detector_node::{DetectionScheme, DetectorStats, DetectorTap};
use mavfi_detect::training::TelemetrySet;
use mavfi_detect::{AadDetector, GadBank};
use mavfi_fault::injector::{FaultInjector, FaultRecord, FaultSpec};
use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::pipeline::{PipelineStats, PpcConfig, PpcPipeline};
use mavfi_ppc::states::{CollisionEstimate, PointCloud, Trajectory};
use mavfi_ppc::tap::{StageTap, TapAction};
use mavfi_sim::energy::PowerModel;
use mavfi_sim::geometry::Vec3;
use mavfi_sim::sensors::{CaptureScratch, DepthCamera, DepthFrame, RayHits};
use mavfi_sim::vehicle::FlightCommand;
use mavfi_sim::world::{MissionStatus, World};
use mavfi_telemetry::MissionTelemetry;
use serde::{Deserialize, Serialize};

use crate::config::{MissionSpec, Protection};
use crate::error::MavfiError;
use crate::qof::QofMetrics;
use crate::trace::{DetectorProvenance, MissionTrace, TraceCapture, TraceMeta};

/// Detectors trained on error-free telemetry, shared across campaign runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedDetectors {
    /// The Gaussian detector bank (primed baselines).
    pub gad: GadBank,
    /// The trained autoencoder detector.
    pub aad: AadDetector,
}

/// Everything produced by one mission run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionOutcome {
    /// Quality-of-flight metrics.
    pub qof: QofMetrics,
    /// Sampled flight trajectory.
    pub trail: Vec<Vec3>,
    /// Record of the injected fault, if one fired.
    pub fault: Option<FaultRecord>,
    /// Detector activity, when a protection scheme was active.
    pub detector: Option<DetectorStats>,
    /// Pipeline kernel/recomputation statistics.
    pub pipeline: PipelineStats,
}

impl MissionOutcome {
    /// Returns `true` when the mission reached its goal.
    pub fn is_success(&self) -> bool {
        self.qof.is_success()
    }
}

/// Composite tap: fault injector first (corrupting states in flight), then
/// the detector (observing exactly what the downstream kernels would see).
/// Shared with the replay harness, which rebuilds the identical tap from a
/// trace's metadata.
pub(crate) struct MissionTap {
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) detector: Option<DetectorTap>,
}

/// Builds the detector tap for a protection scheme — the one place the
/// scheme→detector wiring lives, shared by the runner and the replay
/// harness so both construct identical taps.
pub(crate) fn detector_tap(
    protection: Protection,
    detectors: Option<&TrainedDetectors>,
) -> Result<Option<DetectorTap>, MavfiError> {
    match protection {
        Protection::None => Ok(None),
        Protection::Gaussian => {
            let detectors = detectors.ok_or_else(|| MavfiError::MissingDetectors {
                scheme: protection.label().to_owned(),
            })?;
            Ok(Some(DetectorTap::new(DetectionScheme::Gaussian(detectors.gad.clone()))))
        }
        Protection::Autoencoder => {
            let detectors = detectors.ok_or_else(|| MavfiError::MissingDetectors {
                scheme: protection.label().to_owned(),
            })?;
            Ok(Some(DetectorTap::new(DetectionScheme::Autoencoder(detectors.aad.clone()))))
        }
    }
}

impl StageTap for MissionTap {
    fn after_point_cloud(&mut self, cloud: &mut PointCloud) {
        if let Some(injector) = &mut self.injector {
            injector.after_point_cloud(cloud);
        }
        if let Some(detector) = &mut self.detector {
            detector.after_point_cloud(cloud);
        }
    }

    fn after_occupancy(&mut self, grid: &mut OccupancyGrid) {
        if let Some(injector) = &mut self.injector {
            injector.after_occupancy(grid);
        }
        if let Some(detector) = &mut self.detector {
            detector.after_occupancy(grid);
        }
    }

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_perception(estimate));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_perception(estimate));
        }
        action
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_planning(trajectory, active_index));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_planning(trajectory, active_index));
        }
        action
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        let mut action = TapAction::Continue;
        if let Some(injector) = &mut self.injector {
            action = action.merge(injector.after_control(command));
        }
        if let Some(detector) = &mut self.detector {
            action = action.merge(detector.after_control(command));
        }
        action
    }
}

/// Runs missions described by a [`MissionSpec`].
///
/// # Examples
///
/// ```no_run
/// use mavfi::prelude::*;
///
/// let spec = MissionSpec::new(EnvironmentKind::Sparse, 42);
/// let outcome = MissionRunner::new(spec).run_golden();
/// println!("flight time: {:.1} s", outcome.qof.flight_time_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionRunner {
    spec: MissionSpec,
}

impl MissionRunner {
    /// Creates a runner for one mission specification.
    pub fn new(spec: MissionSpec) -> Self {
        Self { spec }
    }

    /// The mission specification.
    pub fn spec(&self) -> MissionSpec {
        self.spec
    }

    /// Runs an error-free mission with no protection (a "golden run").
    pub fn run_golden(&self) -> MissionOutcome {
        self.run_internal(None, None, None, None, None)
    }

    /// Runs a golden run while feeding the telemetry sink each tick:
    /// wall-clock kernel timing is enabled on the pipeline and every tick
    /// is observed.  Results are bit-identical to [`Self::run_golden`] —
    /// the sink only reads.
    pub fn run_golden_instrumented(&self, sink: &mut MissionTelemetry) -> MissionOutcome {
        self.run_internal(None, None, None, Some(sink), None)
    }

    /// Runs an error-free mission while recording preprocessed telemetry
    /// into `telemetry` (used to train the detectors).
    pub fn run_collecting_telemetry(&self, telemetry: &mut TelemetrySet) -> MissionOutcome {
        let outcome = self.run_internal(None, None, Some(telemetry), None, None);
        telemetry.end_mission();
        outcome
    }

    /// Runs a mission with an optional fault and protection scheme.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::MissingDetectors`] if a protection scheme other
    /// than [`Protection::None`] is requested without trained detectors.
    pub fn run(
        &self,
        fault: Option<FaultSpec>,
        protection: Protection,
        detectors: Option<&TrainedDetectors>,
    ) -> Result<MissionOutcome, MavfiError> {
        self.run_with_sink(fault, protection, detectors, None)
    }

    /// Like [`Self::run`], but feeds the telemetry sink each tick.  The
    /// sink is purely observational: qof/trail are bit-identical with and
    /// without it.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::MissingDetectors`] under the same conditions
    /// as [`Self::run`].
    pub fn run_instrumented(
        &self,
        fault: Option<FaultSpec>,
        protection: Protection,
        detectors: Option<&TrainedDetectors>,
        sink: &mut MissionTelemetry,
    ) -> Result<MissionOutcome, MavfiError> {
        self.run_with_sink(fault, protection, detectors, Some(sink))
    }

    fn run_with_sink(
        &self,
        fault: Option<FaultSpec>,
        protection: Protection,
        detectors: Option<&TrainedDetectors>,
        sink: Option<&mut MissionTelemetry>,
    ) -> Result<MissionOutcome, MavfiError> {
        let detector = detector_tap(protection, detectors)?;
        Ok(self.run_internal(fault.map(FaultInjector::new), detector, None, sink, None))
    }

    /// Runs an error-free, unprotected mission while recording its full
    /// closed-loop topic traffic into a [`MissionTrace`].
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Serialization`] if the trace metadata cannot
    /// be encoded (never expected for well-formed specs).
    pub fn run_golden_recorded(&self) -> Result<(MissionOutcome, MissionTrace), MavfiError> {
        self.run_recorded(None, Protection::None, None, None)
    }

    /// Runs a mission — optionally fault-injected and protected — while
    /// recording its closed-loop topic traffic into a [`MissionTrace`]:
    /// per-tick vehicle states and depth rays (inputs), commands, monitored
    /// states, tick flags, planned paths, detector verdicts and the fault
    /// record (outputs).  The outcome is bit-identical to [`Self::run`]'s.
    ///
    /// Pass `provenance` when the trace should be self-contained: the
    /// replay harness then retrains bit-identical detectors via the global
    /// [`TrainedDetectorCache`](crate::exec::TrainedDetectorCache) instead
    /// of requiring them to be supplied at replay time.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::MissingDetectors`] under the same conditions
    /// as [`Self::run`].
    pub fn run_recorded(
        &self,
        fault: Option<FaultSpec>,
        protection: Protection,
        detectors: Option<&TrainedDetectors>,
        provenance: Option<DetectorProvenance>,
    ) -> Result<(MissionOutcome, MissionTrace), MavfiError> {
        let detector = detector_tap(protection, detectors)?;
        let meta = TraceMeta {
            spec: self.spec,
            protection,
            fault,
            camera: DepthCamera::default(),
            detectors: provenance,
        };
        let mut capture = TraceCapture::new(&meta)?;
        let outcome = self.run_internal(
            fault.map(FaultInjector::new),
            detector,
            None,
            None,
            Some(&mut capture),
        );
        let trace = capture.finish(&outcome.qof, outcome.pipeline.ticks);
        Ok((outcome, trace))
    }

    fn run_internal(
        &self,
        injector: Option<FaultInjector>,
        detector: Option<DetectorTap>,
        mut telemetry: Option<&mut TelemetrySet>,
        mut sink: Option<&mut MissionTelemetry>,
        mut capture: Option<&mut TraceCapture>,
    ) -> MissionOutcome {
        let spec = self.spec;
        let environment = spec.environment.build(spec.seed);
        let ppc_config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
        let mut pipeline = PpcPipeline::new(ppc_config, environment.start(), environment.goal());
        let camera = DepthCamera::default();
        let mut world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);
        let mut tap = MissionTap { injector, detector };
        if sink.is_some() {
            pipeline.set_timing_enabled(true);
        }

        let dt = spec.control_period;
        // One frame and one cull scratch reused for the whole mission: the
        // closed loop performs zero steady-state heap allocations (see
        // docs/PERFORMANCE.md) — telemetry included, its buffers are
        // preallocated at sink construction.
        let mut frame = DepthFrame::default();
        let mut capture_scratch = CaptureScratch::new();
        let mut ray_hits = RayHits::default();
        let mut tick_index: u64 = 0;
        while world.status() == MissionStatus::InProgress {
            let sim_time = world.elapsed();
            let pose = world.vehicle().pose();
            let state = world.vehicle().state();
            if capture.is_some() {
                // Record the frame in (ray, t) form and resolve it back:
                // the pipeline consumes exactly the point cloud a replay
                // will reconstruct from the trace, so both sides are
                // bit-identical by construction (`resolve_rays` is itself
                // bit-identical to `capture_into`).
                camera.capture_rays_into(
                    world.environment(),
                    &pose,
                    &mut capture_scratch,
                    &mut ray_hits,
                );
                camera.resolve_rays(&pose, &ray_hits, &mut frame);
            } else {
                camera.capture_into(world.environment(), &pose, &mut capture_scratch, &mut frame);
            }
            if let Some(capture) = capture.as_deref_mut() {
                capture.record_inputs(tick_index, sim_time, &state, &ray_hits);
            }
            let tick = pipeline.tick(&frame, &state, dt, &mut tap);
            if let Some(telemetry) = telemetry.as_deref_mut() {
                telemetry.record(&tick.monitored);
            }
            if let Some(capture) = capture.as_deref_mut() {
                capture.record_outputs(
                    tick_index,
                    sim_time,
                    &tick,
                    pipeline.trajectory(),
                    pipeline.trajectory_revision(),
                    tap.detector.as_ref().map(|detector| detector.stats()),
                    tap.injector.as_ref().and_then(|injector| injector.record()),
                );
            }
            world.step(&tick.command, dt);
            if let Some(sink) = sink.as_deref_mut() {
                sink.observe_tick(
                    tick_index,
                    world.elapsed(),
                    &tick,
                    &pipeline,
                    tap.detector.as_ref().map(|detector| detector.stats()),
                    tap.injector.as_ref().and_then(|injector| injector.record()),
                );
            }
            tick_index += 1;
        }

        MissionOutcome {
            qof: QofMetrics {
                status: world.status(),
                flight_time_s: world.elapsed(),
                energy_j: world.energy_joules(),
                distance_m: world.distance_travelled(),
            },
            trail: world.trail().to_vec(),
            fault: tap.injector.as_ref().and_then(|injector| injector.record().cloned()),
            detector: tap.detector.as_ref().map(|detector| detector.stats().clone()),
            pipeline: pipeline.stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_fault::target::InjectionTarget;
    use mavfi_ppc::states::Stage;
    use mavfi_sim::env::EnvironmentKind;

    fn quick_spec(kind: EnvironmentKind, seed: u64) -> MissionSpec {
        MissionSpec::new(kind, seed).with_time_budget(200.0)
    }

    #[test]
    fn golden_run_in_sparse_environment_succeeds() {
        let outcome = MissionRunner::new(quick_spec(EnvironmentKind::Sparse, 3)).run_golden();
        assert!(outcome.is_success(), "golden run should succeed: {:?}", outcome.qof.status);
        assert!(outcome.qof.flight_time_s > 5.0);
        assert!(outcome.qof.energy_j > 0.0);
        assert!(outcome.trail.len() > 3);
        assert!(outcome.fault.is_none());
        assert!(outcome.detector.is_none());
        assert!(outcome.pipeline.ticks > 10);
    }

    #[test]
    fn golden_runs_are_deterministic() {
        let spec = quick_spec(EnvironmentKind::Sparse, 8);
        let a = MissionRunner::new(spec).run_golden();
        let b = MissionRunner::new(spec).run_golden();
        assert_eq!(a.qof, b.qof);
        assert_eq!(a.trail, b.trail);
    }

    #[test]
    fn recorded_golden_run_is_bit_identical_and_replays() {
        let spec = quick_spec(EnvironmentKind::Sparse, 3);
        let (outcome, trace) = MissionRunner::new(spec).run_golden_recorded().unwrap();
        // Recording is observational: same outcome as the unrecorded run.
        let baseline = MissionRunner::new(spec).run_golden();
        assert_eq!(outcome.qof, baseline.qof);
        assert_eq!(outcome.trail, baseline.trail);
        // And the trace replays bit-identically without the sim.
        let report = crate::replay::ReplayHarness::new(&trace).replay().unwrap();
        assert!(report.is_match(), "diverged: {:?}", report.divergence);
        assert_eq!(report.ticks, outcome.pipeline.ticks);
        assert_eq!(report.status, Some(MissionStatus::Succeeded));
        assert_eq!(report.qof.map(|qof| qof.flight_time_s), Some(outcome.qof.flight_time_s));
    }

    #[test]
    fn recorded_fault_run_replays_bit_identically() {
        let spec = quick_spec(EnvironmentKind::Sparse, 5);
        let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 20, 123);
        let (outcome, trace) = MissionRunner::new(spec)
            .run_recorded(Some(fault), Protection::None, None, None)
            .unwrap();
        assert!(outcome.fault.is_some());
        let report = crate::replay::ReplayHarness::new(&trace).replay().unwrap();
        assert!(report.is_match(), "diverged: {:?}", report.divergence);
    }

    #[test]
    fn fault_injection_fires_and_is_recorded() {
        let spec = quick_spec(EnvironmentKind::Sparse, 5);
        let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 20, 123);
        let outcome = MissionRunner::new(spec).run(Some(fault), Protection::None, None).unwrap();
        let record = outcome.fault.expect("fault should have fired");
        assert_eq!(record.field.unwrap().stage(), Stage::Planning);
    }

    #[test]
    fn protection_without_detectors_is_an_error() {
        let spec = quick_spec(EnvironmentKind::Farm, 1);
        let err = MissionRunner::new(spec).run(None, Protection::Gaussian, None).unwrap_err();
        assert!(matches!(err, MavfiError::MissingDetectors { .. }));
    }

    #[test]
    fn telemetry_collection_accumulates_samples() {
        let mut telemetry = TelemetrySet::new();
        let spec = MissionSpec::new(EnvironmentKind::Farm, 2).with_time_budget(30.0);
        let outcome = MissionRunner::new(spec).run_collecting_telemetry(&mut telemetry);
        assert!(telemetry.len() as u64 >= outcome.pipeline.ticks);
        assert!(!telemetry.is_empty());
    }
}
