//! Error type of the top-level MAVFI framework.

use std::error::Error;
use std::fmt;

/// Errors raised by the MAVFI mission runner, campaigns and experiments.
#[derive(Debug)]
#[non_exhaustive]
pub enum MavfiError {
    /// A configuration value is invalid or inconsistent.
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A protection scheme requiring trained detectors was requested but no
    /// trained detectors were supplied.
    MissingDetectors {
        /// Which scheme was requested.
        scheme: String,
    },
    /// Persisting or loading an artefact (report, trained model) failed.
    Io(std::io::Error),
    /// Serialising a report failed.
    Serialization(serde_json::Error),
    /// A mission trace failed to parse, verify or decompress.
    Trace(mavfi_middleware::trace::TraceError),
}

impl fmt::Display for MavfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::MissingDetectors { scheme } => {
                write!(f, "protection scheme `{scheme}` requires trained detectors")
            }
            Self::Io(err) => write!(f, "i/o failure: {err}"),
            Self::Serialization(err) => write!(f, "report serialization failed: {err}"),
            Self::Trace(err) => write!(f, "mission trace error: {err}"),
        }
    }
}

impl Error for MavfiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Serialization(err) => Some(err),
            Self::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MavfiError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<serde_json::Error> for MavfiError {
    fn from(err: serde_json::Error) -> Self {
        Self::Serialization(err)
    }
}

impl From<mavfi_middleware::trace::TraceError> for MavfiError {
    fn from(err: mavfi_middleware::trace::TraceError) -> Self {
        Self::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = MavfiError::InvalidConfig { reason: "zero runs".into() };
        assert!(err.to_string().contains("zero runs"));
        let err = MavfiError::MissingDetectors { scheme: "Gaussian".into() };
        assert!(err.to_string().contains("Gaussian"));
    }

    #[test]
    fn conversions_from_underlying_errors() {
        let io: MavfiError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, MavfiError::Io(_)));
        assert!(io.source().is_some());
    }
}
