//! Detector training on error-free missions in randomized environments
//! (paper §V, "Training Environments").

use mavfi_detect::aad::AadConfig;
use mavfi_detect::gad::CgadConfig;
use mavfi_detect::training::TelemetrySet;
use mavfi_nn::train::TrainConfig;
use mavfi_sim::env::EnvironmentKind;

use crate::config::{MissionSpec, TrainingSpec};
use crate::runner::{MissionRunner, TrainedDetectors};

/// Trains both detection schemes on telemetry collected from error-free
/// missions flown in randomized environments.
///
/// Returns the trained detectors and the telemetry set they were trained on
/// (useful for threshold inspection and further experiments).
///
/// # Panics
///
/// Panics if `spec.missions` is zero.
///
/// # Examples
///
/// ```no_run
/// use mavfi::prelude::*;
///
/// let (detectors, telemetry) = train_detectors(&TrainingSpec::default());
/// assert!(telemetry.len() > 0);
/// assert!(detectors.aad.threshold() > 0.0);
/// ```
pub fn train_detectors(spec: &TrainingSpec) -> (TrainedDetectors, TelemetrySet) {
    train_detectors_in(EnvironmentKind::Randomized, spec)
}

/// Like [`train_detectors`], but flies the error-free training missions in
/// the given environment kind instead of the paper's default randomized
/// training environments.
///
/// Training is fully deterministic given `(environment, spec)`, which is
/// what lets [`TrainedDetectorCache`](crate::exec::TrainedDetectorCache)
/// share one trained bank across experiments.
///
/// # Panics
///
/// Panics if `spec.missions` is zero.
pub fn train_detectors_in(
    environment: EnvironmentKind,
    spec: &TrainingSpec,
) -> (TrainedDetectors, TelemetrySet) {
    assert!(spec.missions > 0, "training requires at least one mission");
    let mut telemetry = TelemetrySet::new();
    for index in 0..spec.missions {
        let mission = MissionSpec::new(environment, spec.base_seed + index as u64)
            .with_time_budget(spec.mission_time_budget);
        let _ = MissionRunner::new(mission).run_collecting_telemetry(&mut telemetry);
    }

    let gad = telemetry.build_gad(CgadConfig::default());
    let train_config = TrainConfig { epochs: spec.epochs, ..TrainConfig::default() };
    let (aad, _report) = telemetry.train_aad(AadConfig::default(), &train_config);
    (TrainedDetectors { gad, aad }, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_usable_detectors() {
        let spec =
            TrainingSpec { missions: 1, base_seed: 500, mission_time_budget: 20.0, epochs: 5 };
        let (detectors, telemetry) = train_detectors(&spec);
        assert!(!telemetry.is_empty());
        assert!(detectors.aad.threshold() > 0.0);
        assert!(detectors.gad.detectors()[0].samples() > 10);
    }

    #[test]
    #[should_panic(expected = "at least one mission")]
    fn zero_missions_panics() {
        let spec = TrainingSpec { missions: 0, ..TrainingSpec::default() };
        let _ = train_detectors(&spec);
    }
}
