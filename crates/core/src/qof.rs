//! Quality-of-flight (QoF) metrics: the system-level yardstick MAVFI uses
//! to measure fault impact (flight time, success rate, mission energy).

use mavfi_sim::world::MissionStatus;
use serde::{Deserialize, Serialize};

/// QoF metrics of a single mission run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QofMetrics {
    /// Terminal mission status.
    pub status: MissionStatus,
    /// Flight time until the terminal status (s).
    pub flight_time_s: f64,
    /// Mission energy (J).
    pub energy_j: f64,
    /// Total distance flown (m).
    pub distance_m: f64,
}

impl QofMetrics {
    /// Returns `true` when the mission reached its goal.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

/// Aggregate QoF statistics over a set of runs (one experiment setting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QofSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Fraction of runs that reached the goal.
    pub success_rate: f64,
    /// Mean flight time of successful runs (s).
    pub mean_flight_time_s: f64,
    /// Worst-case (maximum) flight time of successful runs (s).
    pub max_flight_time_s: f64,
    /// Minimum flight time of successful runs (s).
    pub min_flight_time_s: f64,
    /// Mean mission energy of successful runs (J).
    pub mean_energy_j: f64,
    /// Maximum mission energy of successful runs (J).
    pub max_energy_j: f64,
}

impl QofSummary {
    /// Aggregates a slice of per-run metrics.  Flight-time and energy
    /// statistics follow the paper's convention of considering successful
    /// runs only (Fig. 6 plots "flight time of all successful cases").
    pub fn from_runs(runs: &[QofMetrics]) -> Self {
        let total = runs.len();
        let successes: Vec<&QofMetrics> = runs.iter().filter(|run| run.is_success()).collect();
        let success_rate = if total == 0 { 0.0 } else { successes.len() as f64 / total as f64 };
        let mean = |extract: fn(&QofMetrics) -> f64| {
            if successes.is_empty() {
                0.0
            } else {
                successes.iter().map(|run| extract(run)).sum::<f64>() / successes.len() as f64
            }
        };
        let fold = |extract: fn(&QofMetrics) -> f64, init: f64, pick: fn(f64, f64) -> f64| {
            successes.iter().map(|run| extract(run)).fold(init, pick)
        };
        Self {
            runs: total,
            success_rate,
            mean_flight_time_s: mean(|run| run.flight_time_s),
            max_flight_time_s: if successes.is_empty() {
                0.0
            } else {
                fold(|run| run.flight_time_s, f64::MIN, f64::max)
            },
            min_flight_time_s: if successes.is_empty() {
                0.0
            } else {
                fold(|run| run.flight_time_s, f64::MAX, f64::min)
            },
            mean_energy_j: mean(|run| run.energy_j),
            max_energy_j: if successes.is_empty() {
                0.0
            } else {
                fold(|run| run.energy_j, f64::MIN, f64::max)
            },
        }
    }

    /// Worst-case flight-time inflation of this summary relative to a
    /// baseline (golden) summary, as a fraction (0.25 = 25 % longer).
    pub fn worst_case_inflation_vs(&self, golden: &Self) -> f64 {
        if golden.max_flight_time_s <= 0.0 {
            0.0
        } else {
            (self.max_flight_time_s - golden.max_flight_time_s) / golden.max_flight_time_s
        }
    }

    /// Fraction of the worst-case flight-time degradation (relative to
    /// `golden`) that `self` recovers compared to the unprotected
    /// `injected` summary — the paper's "worst-case flight time recovered by
    /// X %" metric.
    pub fn recovery_vs(&self, golden: &Self, injected: &Self) -> f64 {
        let degraded = injected.max_flight_time_s - golden.max_flight_time_s;
        if degraded <= 0.0 {
            return if self.max_flight_time_s <= injected.max_flight_time_s { 1.0 } else { 0.0 };
        }
        ((injected.max_flight_time_s - self.max_flight_time_s) / degraded).clamp(0.0, 1.0)
    }

    /// Fraction of failure cases (relative to `golden`) recovered compared
    /// to the unprotected `injected` summary — the paper's "recovers X % of
    /// failure cases".
    pub fn failure_recovery_vs(&self, golden: &Self, injected: &Self) -> f64 {
        let failures_injected = golden.success_rate - injected.success_rate;
        if failures_injected <= 0.0 {
            return 1.0;
        }
        ((self.success_rate - injected.success_rate) / failures_injected).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(status: MissionStatus, time: f64, energy: f64) -> QofMetrics {
        QofMetrics { status, flight_time_s: time, energy_j: energy, distance_m: time * 3.0 }
    }

    #[test]
    fn summary_aggregates_successful_runs_only() {
        let runs = vec![
            metric(MissionStatus::Succeeded, 100.0, 5_000.0),
            metric(MissionStatus::Succeeded, 140.0, 7_000.0),
            metric(MissionStatus::Collided, 20.0, 900.0),
            metric(MissionStatus::TimedOut, 400.0, 20_000.0),
        ];
        let summary = QofSummary::from_runs(&runs);
        assert_eq!(summary.runs, 4);
        assert!((summary.success_rate - 0.5).abs() < 1e-12);
        assert!((summary.mean_flight_time_s - 120.0).abs() < 1e-12);
        assert_eq!(summary.max_flight_time_s, 140.0);
        assert_eq!(summary.min_flight_time_s, 100.0);
        assert_eq!(summary.max_energy_j, 7_000.0);
    }

    #[test]
    fn empty_and_all_failed_sets_are_well_defined() {
        let empty = QofSummary::from_runs(&[]);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.success_rate, 0.0);
        let failed = QofSummary::from_runs(&[metric(MissionStatus::Collided, 10.0, 100.0)]);
        assert_eq!(failed.success_rate, 0.0);
        assert_eq!(failed.max_flight_time_s, 0.0);
    }

    #[test]
    fn inflation_and_recovery_metrics() {
        let golden = QofSummary::from_runs(&[metric(MissionStatus::Succeeded, 100.0, 1_000.0)]);
        let injected = QofSummary::from_runs(&[metric(MissionStatus::Succeeded, 180.0, 2_000.0)]);
        let recovered = QofSummary::from_runs(&[metric(MissionStatus::Succeeded, 120.0, 1_200.0)]);
        assert!((injected.worst_case_inflation_vs(&golden) - 0.8).abs() < 1e-12);
        assert!((recovered.recovery_vs(&golden, &injected) - 0.75).abs() < 1e-12);
        // Fully recovered or better clamps to 1.
        assert_eq!(golden.recovery_vs(&golden, &injected), 1.0);
    }

    #[test]
    fn failure_recovery_metric() {
        let golden = QofSummary {
            runs: 100,
            success_rate: 0.95,
            mean_flight_time_s: 0.0,
            max_flight_time_s: 0.0,
            min_flight_time_s: 0.0,
            mean_energy_j: 0.0,
            max_energy_j: 0.0,
        };
        let mut injected = golden.clone();
        injected.success_rate = 0.85;
        let mut dr = golden.clone();
        dr.success_rate = 0.93;
        assert!((dr.failure_recovery_vs(&golden, &injected) - 0.8).abs() < 1e-12);
        assert_eq!(golden.failure_recovery_vs(&golden, &injected), 1.0);
    }
}
