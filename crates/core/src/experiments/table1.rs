//! Table I: flight success rate across the four evaluation environments for
//! golden runs, injection runs and both detection & recovery schemes.

use std::sync::Arc;

use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignConfig, EnvironmentCampaign};
use crate::config::TrainingSpec;
use crate::error::MavfiError;
use crate::exec::{CampaignExecutor, SchemeConfig, TrainedDetectorCache};
use crate::report;
use crate::runner::TrainedDetectors;

/// Configuration of the Table I (and Fig. 6) campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Config {
    /// Golden runs per environment (the paper uses 100).
    pub golden_runs: usize,
    /// Injection runs per PPC stage per environment (the paper uses 100).
    pub injections_per_stage: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
    /// Detector training specification.
    pub training: TrainingSpec,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            golden_runs: 100,
            injections_per_stage: 100,
            base_seed: 60,
            mission_time_budget: 400.0,
            training: TrainingSpec::default(),
        }
    }
}

impl Table1Config {
    /// A reduced configuration for tests and quick benches.
    pub fn quick() -> Self {
        Self {
            golden_runs: 2,
            injections_per_stage: 1,
            mission_time_budget: 240.0,
            training: TrainingSpec {
                missions: 1,
                base_seed: 9_100,
                mission_time_budget: 30.0,
                epochs: 8,
            },
            ..Self::default()
        }
    }
}

/// Full Table I result: one campaign per evaluation environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Per-environment campaigns in paper order (Factory, Farm, Sparse,
    /// Dense).
    pub campaigns: Vec<EnvironmentCampaign>,
}

impl Table1Result {
    /// Renders the success-rate table exactly as Table I lays it out.
    pub fn to_table(&self) -> String {
        report::table1_success_rates(&self.campaigns)
    }

    /// The campaign for one environment, if it was run.
    pub fn campaign(&self, environment: EnvironmentKind) -> Option<&EnvironmentCampaign> {
        self.campaigns.iter().find(|campaign| campaign.environment == environment)
    }
}

/// Runs the Table I campaign over the given environments (pass
/// [`EnvironmentKind::EVALUATION`] for the paper's full set).
///
/// # Errors
///
/// Propagates campaign errors.
pub fn run_environments(
    config: &Table1Config,
    environments: &[EnvironmentKind],
    detectors: Option<TrainedDetectors>,
) -> Result<(Table1Result, Arc<TrainedDetectors>), MavfiError> {
    // Explicit detectors are used as-is; otherwise the shared cache trains
    // this configuration once and every later experiment in the process
    // (fig6, fig9, benches, ...) reuses the same bank.  The trained bank is
    // returned as a shared handle — for cache-sourced detectors the cache
    // keeps its own reference, so handing out an `Arc` (rather than an
    // owned bank) is what avoids deep-cloning the autoencoder weights and
    // Gaussian statistics on every call.
    let detectors: Arc<TrainedDetectors> = match detectors {
        Some(detectors) => Arc::new(detectors),
        None => TrainedDetectorCache::global()
            .get_or_train(EnvironmentKind::Randomized, &config.training),
    };
    let scheme = SchemeConfig::shared(Arc::clone(&detectors));
    let executor = CampaignExecutor::from_env();
    let mut campaigns = Vec::with_capacity(environments.len());
    for (index, &environment) in environments.iter().enumerate() {
        let campaign_config = CampaignConfig {
            environment,
            golden_runs: config.golden_runs,
            injections_per_stage: config.injections_per_stage,
            base_seed: config.base_seed + index as u64 * 1_000,
            mission_time_budget: config.mission_time_budget,
        };
        campaigns.push(executor.run_campaign(&campaign_config, &scheme)?);
    }
    Ok((Table1Result { campaigns }, detectors))
}

/// Runs the full four-environment Table I campaign.
///
/// # Errors
///
/// Propagates campaign errors.
pub fn run(config: &Table1Config) -> Result<(Table1Result, Arc<TrainedDetectors>), MavfiError> {
    run_environments(config, &EnvironmentKind::EVALUATION, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_reduced() {
        let config = Table1Config::quick();
        assert!(config.golden_runs <= 5);
        assert!(config.injections_per_stage <= 2);
        assert!(config.training.missions <= 2);
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let config = Table1Config::default();
        assert_eq!(config.golden_runs, 100);
        assert_eq!(config.injections_per_stage, 100);
    }
}
