//! Table II: compute-time overhead of detection and recovery, per stage and
//! per environment, for the Gaussian and autoencoder schemes.

use mavfi_ppc::kernel::KernelId;
use mavfi_ppc::states::{Stage, StateField};
use serde::{Deserialize, Serialize};

use crate::campaign::EnvironmentCampaign;
use crate::report::TextTable;

/// Modelled cost of one Gaussian range check (per monitored state, per
/// tick), in milliseconds.  A handful of compares and two multiply-adds.
pub const GAD_CHECK_MS: f64 = 0.000_5;
/// Modelled cost of one autoencoder forward pass (13-6-3-13 network), in
/// milliseconds, matching the paper's measured 0.0042–0.0062 % detection
/// overhead.
pub const AAD_FORWARD_MS: f64 = 0.012;

/// Recovery (recomputation) cost of one stage, in milliseconds on the i9,
/// derived from the kernel latency model (§VI-C: ~289 ms occupancy-map
/// rebuild, ~83 ms re-plan, ~0.46 ms control recompute).
pub fn stage_recompute_ms(stage: Stage) -> f64 {
    match stage {
        Stage::Perception => {
            KernelId::OctoMap.nominal_latency_ms() + KernelId::CollisionCheck.nominal_latency_ms()
        }
        Stage::Planning => KernelId::RrtStar.nominal_latency_ms(),
        Stage::Control => {
            KernelId::PathTracking.nominal_latency_ms() + KernelId::Pid.nominal_latency_ms()
        }
    }
}

/// One per-stage overhead entry for one environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageOverhead {
    /// The stage.
    pub stage: Stage,
    /// Detection overhead as a fraction of the mission's compute time.
    pub detection: f64,
    /// Recovery (recomputation) overhead as a fraction of the mission's
    /// compute time.
    pub recovery: f64,
}

/// Overheads of both schemes for one environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentOverhead {
    /// Environment label.
    pub environment: String,
    /// Per-stage overheads of the Gaussian scheme.
    pub gaussian_stages: Vec<StageOverhead>,
    /// Total Gaussian overhead (detection + recovery, all stages).
    pub gaussian_total: f64,
    /// Autoencoder detection overhead (whole-pipeline single detector).
    pub autoencoder_detection: f64,
    /// Autoencoder recovery overhead (control recomputation only).
    pub autoencoder_recovery: f64,
    /// Total autoencoder overhead.
    pub autoencoder_total: f64,
}

/// Full Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// One entry per environment, in campaign order.
    pub environments: Vec<EnvironmentOverhead>,
}

impl Table2Result {
    /// Renders the overhead table (percentages, like the paper).
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "Environment",
            "Stage",
            "DET",
            "RECOV",
            "sum (Gaussian)",
            "PPC DET (AutoE)",
            "sum (AutoE)",
        ]);
        for env in &self.environments {
            for (index, stage) in env.gaussian_stages.iter().enumerate() {
                table.push_row([
                    if index == 0 { env.environment.clone() } else { String::new() },
                    stage.stage.label().to_owned(),
                    format_overhead(stage.detection),
                    format_overhead(stage.recovery),
                    if index == 0 { format_overhead(env.gaussian_total) } else { String::new() },
                    if index == 0 {
                        format_overhead(env.autoencoder_detection)
                    } else {
                        String::new()
                    },
                    if index == 0 { format_overhead(env.autoencoder_total) } else { String::new() },
                ]);
            }
        }
        table.render()
    }

    /// Returns `true` when the autoencoder's total overhead is lower than
    /// the Gaussian scheme's in every environment (the paper's conclusion).
    pub fn autoencoder_is_cheaper_everywhere(&self) -> bool {
        self.environments.iter().all(|env| env.autoencoder_total < env.gaussian_total)
    }
}

/// Formats an overhead fraction the way the paper prints Table II.
fn format_overhead(fraction: f64) -> String {
    if fraction < 1.0e-6 {
        "<0.0001%".to_owned()
    } else {
        format!("{:.4}%", fraction * 100.0)
    }
}

/// Derives the Table II overheads from already-run campaigns.
pub fn from_campaigns(campaigns: &[EnvironmentCampaign]) -> Table2Result {
    let environments = campaigns
        .iter()
        .map(|campaign| {
            let compute_ms = campaign.golden_mean_compute_ms.max(1.0);
            let ticks = campaign.golden_mean_ticks.max(1.0);
            let faulty_runs = campaign.gaussian.runs.len().max(1) as f64;

            // --- Gaussian scheme -------------------------------------------------
            let mut gaussian_stages = Vec::new();
            let mut gaussian_total = 0.0;
            for stage in Stage::ALL {
                let fields = StateField::ALL.iter().filter(|f| f.stage() == stage).count() as f64;
                let detection_ms = fields * GAD_CHECK_MS * ticks;
                let recomputes = campaign
                    .gaussian_recomputations
                    .iter()
                    .find(|(s, _)| *s == stage)
                    .map_or(0.0, |(_, count)| *count as f64)
                    / faulty_runs;
                let recovery_ms = recomputes * stage_recompute_ms(stage);
                let detection = detection_ms / compute_ms;
                let recovery = recovery_ms / compute_ms;
                gaussian_total += detection + recovery;
                gaussian_stages.push(StageOverhead { stage, detection, recovery });
            }

            // --- Autoencoder scheme ----------------------------------------------
            // One forward pass per stage hook per tick (three evaluations).
            let aad_detection_ms = 3.0 * AAD_FORWARD_MS * ticks;
            let aad_recomputes = campaign
                .autoencoder_recomputations
                .iter()
                .find(|(s, _)| *s == Stage::Control)
                .map_or(0.0, |(_, count)| *count as f64)
                / faulty_runs;
            let aad_recovery_ms = aad_recomputes * stage_recompute_ms(Stage::Control);
            let autoencoder_detection = aad_detection_ms / compute_ms;
            let autoencoder_recovery = aad_recovery_ms / compute_ms;

            EnvironmentOverhead {
                environment: campaign.environment.label().to_owned(),
                gaussian_stages,
                gaussian_total,
                autoencoder_detection,
                autoencoder_recovery,
                autoencoder_total: autoencoder_detection + autoencoder_recovery,
            }
        })
        .collect();
    Table2Result { environments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SettingResult;
    use crate::qof::{QofMetrics, QofSummary};
    use mavfi_sim::env::EnvironmentKind;
    use mavfi_sim::world::MissionStatus;

    fn setting(label: &str, runs: usize) -> SettingResult {
        let metrics = vec![
            QofMetrics {
                status: MissionStatus::Succeeded,
                flight_time_s: 100.0,
                energy_j: 1000.0,
                distance_m: 300.0,
            };
            runs
        ];
        SettingResult {
            label: label.into(),
            summary: QofSummary::from_runs(&metrics),
            runs: metrics,
        }
    }

    fn campaign_with(gaussian_recomputes: u64, aad_recomputes: u64) -> EnvironmentCampaign {
        EnvironmentCampaign {
            environment: EnvironmentKind::Sparse,
            golden: setting("Golden Run", 4),
            injected: setting("Injection Run", 12),
            gaussian: setting("Gaussian-based", 12),
            autoencoder: setting("Autoencoder-based", 12),
            gaussian_recomputations: Stage::ALL.iter().map(|s| (*s, gaussian_recomputes)).collect(),
            autoencoder_recomputations: vec![
                (Stage::Perception, 0),
                (Stage::Planning, 0),
                (Stage::Control, aad_recomputes),
            ],
            golden_mean_ticks: 1_000.0,
            golden_mean_compute_ms: 400_000.0,
        }
    }

    #[test]
    fn stage_recompute_costs_match_paper_anchors() {
        assert!((stage_recompute_ms(Stage::Perception) - 298.0).abs() < 1.0);
        assert_eq!(stage_recompute_ms(Stage::Planning), 83.0);
        assert!((stage_recompute_ms(Stage::Control) - 0.46).abs() < 1e-9);
    }

    #[test]
    fn autoencoder_overhead_is_lower_than_gaussian() {
        let result = from_campaigns(&[campaign_with(12, 12)]);
        assert_eq!(result.environments.len(), 1);
        let env = &result.environments[0];
        assert!(env.autoencoder_total < env.gaussian_total);
        assert!(result.autoencoder_is_cheaper_everywhere());
        // The Gaussian recovery term is dominated by perception/planning
        // recomputation, as in the paper.
        let perception = &env.gaussian_stages[0];
        let control = &env.gaussian_stages[2];
        assert!(perception.recovery > control.recovery);
    }

    #[test]
    fn table_renders_every_environment_and_uses_paper_style_floor() {
        let result = from_campaigns(&[campaign_with(1, 1)]);
        let table = result.to_table();
        assert!(table.contains("Sparse"));
        assert!(table.contains("<0.0001%") || table.contains('%'));
    }
}
